"""Straggler analysis: why heterogeneous models shorten FL rounds.

The paper's introduction argues that forcing one model architecture on all
clients (FedAvg-style) makes the strongest hardware wait for the weakest.
This example quantifies that with the timing substrate: a mixed fleet
(IoT / mobile / laptop / edge devices) runs

1. FedAvg — everyone trains the same mid-size model and ships weights;
2. FedPKD — each device trains a model sized to its compute and ships
   logits + prototypes on the public set.

and we compare simulated round times, straggler gaps, and traffic.

Run:  python examples/straggler_analysis.py
"""

import argparse

import numpy as np

from repro.data import synthetic_cifar10
from repro.experiments import format_table
from repro.fl.timing import DEVICE_CLASSES, TimingModel, estimate_training_steps
from repro.nn import build_model
from repro.nn.serialize import WIRE_DTYPE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples-per-client", type=int, default=500)
    parser.add_argument("--public-size", type=int, default=5000)
    parser.add_argument("--local-epochs", type=int, default=10)
    args = parser.parse_args()

    profiles = [DEVICE_CLASSES[n] for n in ("iot", "mobile", "laptop", "edge")]
    image_shape, num_classes, feature_dim = (3, 8, 8), 10, 32
    bytes_per_float = WIRE_DTYPE().itemsize

    model_sizes = {
        name: build_model(name, num_classes, image_shape, feature_dim, rng=0).num_parameters()
        for name in ("resnet11", "resnet20", "resnet29", "resnet56")
    }
    steps = estimate_training_steps(args.samples_per_client, args.local_epochs, 32)

    # --- FedAvg: everyone runs resnet20 and ships its weights ------------
    fedavg = TimingModel(profiles)
    weight_bytes = model_sizes["resnet20"] * bytes_per_float
    for cid in range(4):
        fedavg.record_training(cid, model_sizes["resnet20"] * steps)
        fedavg.record_download(cid, weight_bytes)
        fedavg.record_upload(cid, weight_bytes)
    fedavg_round = fedavg.close_round()

    # --- FedPKD: model sized to the device; logits+prototypes on the wire -
    assignment = ["resnet11", "resnet20", "resnet29", "resnet29"]
    logit_bytes = args.public_size * num_classes * bytes_per_float
    proto_bytes = num_classes * feature_dim * bytes_per_float
    fedpkd = TimingModel(profiles)
    for cid, model_name in enumerate(assignment):
        fedpkd.record_training(cid, model_sizes[model_name] * steps)
        fedpkd.record_upload(cid, logit_bytes + proto_bytes)
        # downlink: filtered server logits (θ=70%) + global prototypes
        fedpkd.record_download(cid, int(0.7 * logit_bytes) + proto_bytes)
    fedpkd_round = fedpkd.close_round()

    rows = []
    for cid in range(4):
        rows.append(
            [
                f"{profiles[cid].name} (client {cid})",
                "resnet20",
                fedavg_round.client_total(cid),
                assignment[cid],
                fedpkd_round.client_total(cid),
            ]
        )
    print(
        format_table(
            ["device", "FedAvg model", "FedAvg s/round", "FedPKD model", "FedPKD s/round"],
            rows,
            title="Per-device round time (compute + transfer, simulated seconds)",
        )
    )
    print()
    print(f"FedAvg  round duration: {fedavg_round.round_duration:8.1f} s   "
          f"straggler gap: {fedavg.straggler_gap():.1f}x")
    print(f"FedPKD  round duration: {fedpkd_round.round_duration:8.1f} s   "
          f"straggler gap: {fedpkd.straggler_gap():.1f}x")
    speedup = fedavg_round.round_duration / fedpkd_round.round_duration
    print(f"\nmatching models to devices cuts the synchronous round time "
          f"by {speedup:.1f}x in this fleet")


if __name__ == "__main__":
    main()
