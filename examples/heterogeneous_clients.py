"""Heterogeneous-device scenario: the paper's motivating IoT setting.

A fleet of devices with unequal compute runs three different model
architectures (small / medium / large — the ResNet-11/20/29 roles).  Weight
averaging (FedAvg) is impossible here; we compare the KD-based methods that
tolerate heterogeneity: FedPKD, FedMD, DS-FL, and FedET, on the same
non-IID federation.

Run:  python examples/heterogeneous_clients.py [--rounds N]
"""

import argparse

from repro.algorithms import algorithm_supports, build_algorithm
from repro.data import synthetic_cifar10
from repro.experiments import format_table
from repro.fl import FederationConfig, build_federation

ALGORITHMS = ("fedpkd", "fedmd", "dsfl", "fedet")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--alpha", type=float, default=0.2)
    parser.add_argument("--epoch-scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    bundle = synthetic_cifar10(n_train=1600, n_test=500, n_public=400, seed=args.seed)

    rows = []
    for name in ALGORITHMS:
        server_model = "mlp_xlarge" if algorithm_supports(name, "server_model") else None
        config = FederationConfig(
            num_clients=6,
            partition=("dirichlet", {"alpha": args.alpha}),
            client_models=["mlp_small", "mlp_medium", "mlp_large"],
            server_model=server_model,
            seed=args.seed,
        )
        federation = build_federation(bundle, config)
        sizes = sorted({c.model.num_parameters() for c in federation.clients})
        algo = build_algorithm(
            name, federation, seed=args.seed, epoch_scale=args.epoch_scale
        )
        history = algo.run(rounds=args.rounds)
        rows.append(
            [
                name,
                "/".join(str(s) for s in sizes),
                history.best_server_acc if server_model else None,
                history.best_client_acc,
                history.records[-1].comm_total_mb,
            ]
        )
        print(f"[{name}] done")

    print()
    print(
        format_table(
            ["algorithm", "client params", "S_acc", "C_acc", "comm MB"],
            rows,
            title=f"Heterogeneous clients, Dirichlet(alpha={args.alpha}), "
            f"{args.rounds} rounds",
        )
    )


if __name__ == "__main__":
    main()
