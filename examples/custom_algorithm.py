"""Extending the framework: write your own FL algorithm in ~40 lines.

Demonstrates the public extension surface: subclass
``repro.fl.FederatedAlgorithm``, implement ``run_round``, meter every
transfer through ``self.channel``, and the engine handles evaluation,
failure injection, and history recording.

The toy algorithm here — "FedTopK" — is a FedMD variant where each client
only uploads logits for the public samples it is most confident about
(top-k by logit variance), cutting uplink traffic.

Run:  python examples/custom_algorithm.py
"""

import argparse

import numpy as np

from repro.core import equal_average_aggregate
from repro.data import synthetic_cifar10
from repro.fl import (
    FederationConfig,
    FederatedAlgorithm,
    TrainingConfig,
    build_federation,
)


class FedTopK(FederatedAlgorithm):
    """FedMD-style logit consensus, uploading only confident samples."""

    name = "fedtopk"

    def __init__(self, federation, top_fraction=0.5, seed=0):
        super().__init__(federation, seed=seed)
        self.top_fraction = top_fraction
        self.local_cfg = TrainingConfig(epochs=2, batch_size=32)
        self.digest_cfg = TrainingConfig(epochs=2, batch_size=32)

    def run_round(self, participants):
        n_public = len(self.public_x)
        k = max(1, int(self.top_fraction * n_public))
        votes = np.zeros((n_public, self.bundle.num_classes))
        counts = np.zeros(n_public)
        for client in participants:
            client.train_local(self.local_cfg)
            logits = client.logits_on(self.public_x)
            confident = np.argsort(logits.var(axis=1))[-k:]
            # upload only the confident subset (plus its indices)
            self.channel.upload(
                client.client_id,
                {"logits": logits[confident],
                 "indices": confident.astype(np.float32)},
            )
            votes[confident] += logits[confident]
            counts[confident] += 1
        covered = counts > 0
        consensus = np.zeros_like(votes)
        consensus[covered] = votes[covered] / counts[covered, None]
        x_cov = self.public_x[covered]
        for client in participants:
            self.channel.download(
                client.client_id, {"consensus": consensus[covered]}
            )
            client.train_public_distill(
                x_cov, consensus[covered], self.digest_cfg, kd_weight=1.0
            )
        return {"covered_fraction": float(covered.mean())}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--top-fraction", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    bundle = synthetic_cifar10(n_train=1500, n_test=500, n_public=400, seed=args.seed)
    config = FederationConfig(
        num_clients=6,
        partition=("dirichlet", {"alpha": 0.3}),
        client_models="mlp_medium",
        server_model=None,
        seed=args.seed,
    )
    federation = build_federation(bundle, config)
    algo = FedTopK(federation, top_fraction=args.top_fraction, seed=args.seed)
    history = algo.run(rounds=args.rounds, verbose=True)
    print()
    print(f"best client accuracy : {history.best_client_acc:.3f}")
    print(f"total communication  : {history.records[-1].comm_total_mb:.2f} MB")
    print(
        "coverage of public set per round:",
        [round(r.extras["covered_fraction"], 2) for r in history.records],
    )


if __name__ == "__main__":
    main()
