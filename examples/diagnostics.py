"""Deployment diagnostics: inspect *why* FedPKD's mechanisms work.

Runs a short FedPKD training, then uses ``repro.analysis`` to report:

1. prototype separation in the server's feature space (is Algorithm 1's
   distance signal meaningful?),
2. per-round global-prototype drift (is the dual-knowledge loop converging?),
3. client similarity communities from label distributions (who holds
   similar data?),
4. a Fig.-2-style logit quality report comparing each client's per-class
   accuracy with the variance-weighted aggregate.

Run:  python examples/diagnostics.py
"""

import argparse

import numpy as np

from repro.analysis import (
    client_communities,
    label_distribution_similarity,
    logit_quality_report,
    prototype_drift,
    prototype_separation,
)
from repro.core import FedPKD, FedPKDConfig, variance_weighted_aggregate
from repro.data import synthetic_cifar10
from repro.fl import FederationConfig, TrainingConfig, build_federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--alpha", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    bundle = synthetic_cifar10(n_train=1600, n_test=500, n_public=400, seed=args.seed)
    config = FederationConfig(
        num_clients=6,
        partition=("dirichlet", {"alpha": args.alpha}),
        client_models="mlp_medium",
        server_model="mlp_large",
        seed=args.seed,
    )
    federation = build_federation(bundle, config)
    fast = TrainingConfig(epochs=3, batch_size=32)
    algo = FedPKD(
        federation,
        config=FedPKDConfig(
            local=fast, public=TrainingConfig(epochs=2), server=TrainingConfig(epochs=8)
        ),
        seed=args.seed,
    )

    proto_history = []
    for _ in range(args.rounds):
        algo.run(rounds=1)
        proto_history.append(algo.global_prototypes.copy())

    # 1. prototype separation in the server feature space
    feats = federation.server.model.extract_features(bundle.test.x)
    report = prototype_separation(feats, bundle.test.y, algo.global_prototypes)
    print("-- prototype geometry (server feature space) --")
    print(f"intra-class distance : {report.intra_class_distance:.3f}")
    print(f"inter-class distance : {report.inter_class_distance:.3f}")
    print(f"separation ratio     : {report.separation_ratio:.2f} "
          f"({'good' if report.separation_ratio > 1 else 'weak'} filtering signal)")

    # 2. prototype drift
    drift = prototype_drift(proto_history)
    print("\n-- global prototype drift per round --")
    print(np.round(drift, 4))

    # 3. client communities
    sim = label_distribution_similarity([c.class_counts() for c in federation.clients])
    communities = client_communities(sim, threshold=0.4)
    print("\n-- client communities (label-distribution similarity > 0.4) --")
    for i, community in enumerate(communities):
        print(f"community {i}: clients {sorted(community)}")

    # 4. logit quality
    client_logits = [c.logits_on(bundle.public) for c in federation.clients]
    aggregate = variance_weighted_aggregate(client_logits)
    quality = logit_quality_report(
        client_logits, aggregate, bundle.public_true_labels, bundle.num_classes
    )
    print("\n-- logit quality on the public set --")
    print("per-client overall acc :", np.round(quality.overall_client_acc, 3))
    print("per-client confidence  :", np.round(quality.mean_confidence, 3))
    print(f"aggregated overall acc : {quality.overall_aggregated_acc:.3f}")


if __name__ == "__main__":
    main()
