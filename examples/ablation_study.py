"""Ablation study: what each FedPKD mechanism contributes.

Runs the full method and four ablated variants on one highly non-IID
federation (Fig. 8 of the paper plus the extended arms in DESIGN.md):

- w/o prototypes      : no prototype loss in the server objective
- w/o data filtering  : the server trains on the full public set
- equal aggregation   : variance weighting replaced by plain averaging
- random filtering    : prototype-distance ranking replaced by coin flips

Run:  python examples/ablation_study.py [--rounds N]
"""

import argparse

from repro.algorithms import build_algorithm
from repro.data import synthetic_cifar10
from repro.experiments import format_table
from repro.fl import FederationConfig, build_federation

ARMS = {
    "full FedPKD": {},
    "w/o prototypes": {"server_prototype_loss": False, "client_prototype_loss": False},
    "w/o data filtering": {"use_filtering": False},
    "equal aggregation": {"aggregation": "equal"},
    "random filtering": {"filter_mode": "random"},
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--alpha", type=float, default=0.1)
    parser.add_argument("--epoch-scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    bundle = synthetic_cifar10(n_train=2000, n_test=600, n_public=500, seed=args.seed)

    rows = []
    for arm, overrides in ARMS.items():
        config = FederationConfig(
            num_clients=6,
            partition=("dirichlet", {"alpha": args.alpha}),
            client_models="mlp_medium",
            server_model="mlp_large",
            seed=args.seed,
        )
        federation = build_federation(bundle, config)
        algo = build_algorithm(
            "fedpkd", federation, seed=args.seed,
            epoch_scale=args.epoch_scale, **overrides,
        )
        history = algo.run(rounds=args.rounds)
        rows.append(
            [
                arm,
                history.best_server_acc,
                history.best_client_acc,
                history.records[-1].comm_total_mb,
            ]
        )
        print(f"[{arm}] done")

    print()
    print(
        format_table(
            ["variant", "S_acc", "C_acc", "comm MB"],
            rows,
            title=f"FedPKD ablation, Dirichlet(alpha={args.alpha}), "
            f"{args.rounds} rounds",
        )
    )


if __name__ == "__main__":
    main()
