"""Communication-budget study: MB needed to reach a target accuracy.

Reproduces the Table-I methodology interactively: run FedPKD against the
weight-exchanging baselines on the same federation and report how many MB
each needs before the server (and clients) reach a target accuracy —
showing why shipping filtered logits beats shipping model updates.

Run:  python examples/communication_budget.py [--target 0.4]
"""

import argparse

from repro.algorithms import algorithm_supports, build_algorithm
from repro.data import synthetic_cifar10
from repro.experiments import format_table
from repro.fl import FederationConfig, build_federation

ALGORITHMS = ("fedavg", "fedprox", "feddf", "fedmd", "fedpkd")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", type=float, default=0.4,
                        help="accuracy level to reach")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--epoch-scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    bundle = synthetic_cifar10(n_train=2000, n_test=600, n_public=400, seed=args.seed)

    rows = []
    for name in ALGORITHMS:
        if name in ("fedavg", "fedprox", "feddf"):
            client_models = server_model = "mlp_medium"
        else:
            client_models = "mlp_medium"
            server_model = (
                "mlp_large" if algorithm_supports(name, "server_model") else None
            )
        config = FederationConfig(
            num_clients=6,
            partition=("dirichlet", {"alpha": 0.5}),
            client_models=client_models,
            server_model=server_model,
            seed=args.seed,
        )
        federation = build_federation(bundle, config)
        algo = build_algorithm(
            name, federation, seed=args.seed, epoch_scale=args.epoch_scale
        )
        history = algo.run(rounds=args.rounds)
        rows.append(
            [
                name,
                history.comm_to_reach(args.target, metric="client")
                if algorithm_supports(name, "client_metric")
                else None,
                history.comm_to_reach(args.target, metric="server")
                if algorithm_supports(name, "server_model")
                else None,
                history.best_client_acc,
                history.best_server_acc
                if algorithm_supports(name, "server_model")
                else None,
            ]
        )
        print(f"[{name}] done")

    print()
    print(
        format_table(
            ["algorithm", "MB to C_acc", "MB to S_acc", "best C_acc", "best S_acc"],
            rows,
            title=f"Communication to reach {args.target:.0%} accuracy "
            f"(N/A = unsupported metric or never reached)",
        )
    )


if __name__ == "__main__":
    main()
