"""Quickstart: run FedPKD on a synthetic CIFAR-10-like federation.

Builds an 8-client non-IID federation, trains FedPKD for a few rounds, and
prints per-round server/client accuracy plus communication cost.

Run:  python examples/quickstart.py [--rounds N] [--alpha A] [--scale s]
"""

import argparse

from repro.algorithms import build_algorithm
from repro.data import synthetic_cifar10
from repro.fl import FederationConfig, build_federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--alpha", type=float, default=0.3,
                        help="Dirichlet non-IID concentration (smaller = more skew)")
    parser.add_argument("--epoch-scale", type=float, default=0.2,
                        help="multiplier on the paper's per-phase epoch counts")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Generating synthetic CIFAR-10-like data ...")
    bundle = synthetic_cifar10(
        n_train=2000, n_test=600, n_public=500, seed=args.seed
    )

    config = FederationConfig(
        num_clients=args.clients,
        partition=("dirichlet", {"alpha": args.alpha}),
        client_models="mlp_medium",   # swap for "resnet20" for the paper's models
        server_model="mlp_large",     # the server trains a larger model
        seed=args.seed,
    )
    federation = build_federation(bundle, config)

    print(
        f"Federation: {config.num_clients} clients, "
        f"client model {config.client_models} "
        f"({federation.clients[0].model.num_parameters()} params), "
        f"server model {config.server_model} "
        f"({federation.server.model.num_parameters()} params)"
    )

    algo = build_algorithm(
        "fedpkd", federation, seed=args.seed, epoch_scale=args.epoch_scale
    )
    history = algo.run(rounds=args.rounds, verbose=True)

    print()
    print(f"final server accuracy : {history.final_server_acc:.3f}")
    print(f"final client accuracy : {history.final_client_acc:.3f}")
    print(f"total communication   : {history.records[-1].comm_total_mb:.2f} MB")


if __name__ == "__main__":
    main()
