#!/usr/bin/env python
"""Validate a trace (and optionally a metrics export) against the obs schema.

Thin wrapper over :func:`repro.lint.traces.validate_traces` — the same
logic CI runs through ``repro lint --traces``.  Kept for muscle memory:

    PYTHONPATH=src python scripts/validate_trace.py run.trace.jsonl \
        --metrics run.metrics.jsonl \
        --expect-scopes run,round,stage,client \
        --expect-events fedpkd/filter,fedpkd/aggregate

Exit 0 when every file validates and all expectations hold, 1 otherwise.
"""

import argparse
import sys

from repro.lint.traces import validate_traces


def _csv(value):
    return [item for item in value.split(",") if item]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSONL file to validate")
    parser.add_argument(
        "--metrics", help="also validate this metrics export (.jsonl or .json)"
    )
    parser.add_argument(
        "--expect-scopes",
        type=_csv,
        default=[],
        metavar="S1,S2",
        help="fail unless every listed scope appears in the trace",
    )
    parser.add_argument(
        "--expect-events",
        type=_csv,
        default=[],
        metavar="N1,N2",
        help="fail unless every listed span/event name appears in the trace",
    )
    args = parser.parse_args(argv)

    result = validate_traces(
        args.trace,
        metrics_path=args.metrics,
        expect_scopes=args.expect_scopes,
        expect_events=args.expect_events,
    )
    for line in result.messages:
        print(line)
    for line in result.errors:
        print(line, file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
