#!/usr/bin/env python
"""Validate a trace (and optionally a metrics export) against the obs schema.

Exit 0 when every file validates and all expectations hold, 1 otherwise.

    PYTHONPATH=src python scripts/validate_trace.py run.trace.jsonl \
        --metrics run.metrics.jsonl \
        --expect-scopes run,round,stage,client \
        --expect-events fedpkd/filter,fedpkd/aggregate
"""

import argparse
import json
import sys

from repro.obs import SchemaError, validate_metrics_file, validate_trace_file


def _csv(value):
    return [item for item in value.split(",") if item]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSONL file to validate")
    parser.add_argument(
        "--metrics", help="also validate this metrics export (.jsonl or .json)"
    )
    parser.add_argument(
        "--expect-scopes",
        type=_csv,
        default=[],
        metavar="S1,S2",
        help="fail unless every listed scope appears in the trace",
    )
    parser.add_argument(
        "--expect-events",
        type=_csv,
        default=[],
        metavar="N1,N2",
        help="fail unless every listed span/event name appears in the trace",
    )
    args = parser.parse_args(argv)

    try:
        count = validate_trace_file(args.trace)
    except (SchemaError, OSError) as exc:
        print(f"INVALID {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(f"ok {args.trace}: {count} records")

    if args.expect_scopes or args.expect_events:
        with open(args.trace) as f:
            records = [json.loads(line) for line in f]
        scopes = {r.get("scope") for r in records} - {None}
        names = {r["name"] for r in records}
        missing_scopes = sorted(set(args.expect_scopes) - scopes)
        missing_events = sorted(set(args.expect_events) - names)
        if missing_scopes or missing_events:
            if missing_scopes:
                print(f"missing scopes: {missing_scopes}", file=sys.stderr)
            if missing_events:
                print(f"missing events: {missing_events}", file=sys.stderr)
            return 1
        print(f"ok expectations: scopes={sorted(scopes)}")

    if args.metrics:
        try:
            count = validate_metrics_file(args.metrics)
        except (SchemaError, OSError) as exc:
            print(f"INVALID {args.metrics}: {exc}", file=sys.stderr)
            return 1
        print(f"ok {args.metrics}: {count} metrics")

    return 0


if __name__ == "__main__":
    sys.exit(main())
