#!/usr/bin/env python
"""Throughput trajectory benchmark: substrate ops/sec plus one FL round.

Measures three levels of the stack with ``time.perf_counter``:

- ``conv2d``        — one forward conv over a NCHW batch (the autograd
  engine's hottest kernel);
- ``matmul``        — a square Tensor matmul (the dense-layer primitive);
- ``fedpkd_round``  — one full FedPKD round at the ``tiny`` scale
  (local training, logit exchange, filtering, aggregation, distillation).

Writes the numbers as ``BENCH_6.json`` so successive PRs can compare the
end-to-end trajectory, not just micro-kernels:

    PYTHONPATH=src python scripts/bench_trajectory.py --out BENCH_6.json

The per-suite pytest-benchmark file (benchmarks/test_substrate_perf.py)
stays the fine-grained regression gate; this script is the coarse
snapshot committed alongside the PR.
"""

import argparse
import json
import platform
import time

import numpy as np

import repro
from repro.algorithms import build_algorithm
from repro.experiments.harness import ExperimentSetting, federation_for
from repro.nn import Tensor
from repro.nn import functional as F


def bench(fn, min_seconds=0.5, min_reps=3):
    """Repeat ``fn`` until both floors are met; return timing stats."""
    fn()  # warm-up (first conv pays the einsum-path planning cost)
    reps = 0
    start = time.perf_counter()
    elapsed = 0.0
    while reps < min_reps or elapsed < min_seconds:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
    return {
        "reps": reps,
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(reps / elapsed, 4),
    }


def bench_conv2d():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(16, 3, 16, 16)))
    weight = Tensor(rng.normal(size=(16, 3, 3, 3)))
    return bench(lambda: F.conv2d(x, weight, stride=1, padding=1))


def bench_matmul():
    rng = np.random.default_rng(1)
    a = Tensor(rng.normal(size=(256, 256)))
    b = Tensor(rng.normal(size=(256, 256)))
    return bench(lambda: a @ b)


def bench_fedpkd_round():
    setting = ExperimentSetting(scale="tiny", seed=0)
    federation = federation_for(setting, "fedpkd")
    try:
        algo = build_algorithm(
            "fedpkd",
            federation,
            seed=setting.seed,
            epoch_scale=setting.scale_config().epoch_scale,
        )
        # each rep advances training one round; throughput is what matters
        return bench(lambda: algo.run(1), min_seconds=1.0, min_reps=3)
    finally:
        federation.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_6.json", metavar="PATH")
    args = parser.parse_args(argv)

    results = {
        "bench": "trajectory",
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ops": {
            "conv2d": bench_conv2d(),
            "matmul": bench_matmul(),
            "fedpkd_round": bench_fedpkd_round(),
        },
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    for name, stats in results["ops"].items():
        print(f"{name:13} {stats['ops_per_sec']:10.3f} ops/s ({stats['reps']} reps)")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
