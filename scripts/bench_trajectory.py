#!/usr/bin/env python
"""Throughput trajectory benchmark: substrate ops/sec plus one FL round.

Measures three levels of the stack with ``time.perf_counter``:

- ``conv2d``        — one forward conv over a NCHW batch (the autograd
  engine's hottest kernel);
- ``matmul``        — a square Tensor matmul (the dense-layer primitive);
- ``fedpkd_round``  — one full FedPKD round at the ``tiny`` scale
  (local training, logit exchange, filtering, aggregation, distillation).

plus two robustness scenarios:

- ``straggler``     — one FedPKD round with one client injected to run
  10x slower than its peers, under the synchronous barrier engine vs the
  asynchronous buffered engine (``--scenario straggler``).  The barrier
  waits for the straggler; the async engine aggregates the fast clients
  and — because arrival-time compute is lazy — never even computes the
  straggler's work.  The acceptance bar is async < 0.5x the sync
  wall-clock.
- ``cohort``        — a 100k-client FedProto federation on the lazy
  client registry (``--scenario cohort``): 16 sampled participants per
  round, a 32-client live cap with spill-to-disk, sampled evaluation.
  The acceptance bar is that every round's peak traced allocation stays
  under a fixed ceiling — O(cohort) memory, not O(N) — asserted here
  and enforced by the ``cohort-smoke`` CI job.

plus a ``profile`` section: one *separately federated* FedPKD round run
under the op-level profiler (``repro.obs.profile``), recording where the
round's time actually goes (top ops per stage).  The timing reps above
stay unprofiled so the ops/sec trajectory is never perturbed by hook
overhead.

Writes the numbers as ``BENCH_9.json`` so successive PRs can compare the
end-to-end trajectory, not just micro-kernels:

    PYTHONPATH=src python scripts/bench_trajectory.py --out BENCH_9.json

Compare two snapshots (CI's perf gate) with::

    PYTHONPATH=src python -m repro trace compare BENCH_9.json \
        --baseline BENCH_8.json --threshold 0.5

The per-suite pytest-benchmark file (benchmarks/test_substrate_perf.py)
stays the fine-grained regression gate; this script is the coarse
snapshot committed alongside the PR.
"""

import argparse
import json
import platform
import time

import numpy as np

import repro
from repro.algorithms import build_algorithm
from repro.experiments.harness import ExperimentSetting, federation_for
from repro.nn import Tensor
from repro.nn import functional as F


def bench(fn, min_seconds=0.5, min_reps=3):
    """Repeat ``fn`` until both floors are met; return timing stats."""
    fn()  # warm-up (first conv pays the einsum-path planning cost)
    reps = 0
    start = time.perf_counter()
    elapsed = 0.0
    while reps < min_reps or elapsed < min_seconds:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
    return {
        "reps": reps,
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(reps / elapsed, 4),
    }


def bench_conv2d():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(16, 3, 16, 16)))
    weight = Tensor(rng.normal(size=(16, 3, 3, 3)))
    return bench(lambda: F.conv2d(x, weight, stride=1, padding=1))


def bench_matmul():
    rng = np.random.default_rng(1)
    a = Tensor(rng.normal(size=(256, 256)))
    b = Tensor(rng.normal(size=(256, 256)))
    return bench(lambda: a @ b)


def bench_fedpkd_round():
    setting = ExperimentSetting(scale="tiny", seed=0)
    federation = federation_for(setting, "fedpkd")
    try:
        algo = build_algorithm(
            "fedpkd",
            federation,
            seed=setting.seed,
            epoch_scale=setting.scale_config().epoch_scale,
        )
        # each rep advances training one round; throughput is what matters
        return bench(lambda: algo.run(1), min_seconds=1.0, min_reps=3)
    finally:
        federation.close()


SLOW_FACTOR = 10.0


def _timed_round(runner):
    start = time.perf_counter()
    runner.run(1)
    return time.perf_counter() - start


def _make_algo(setting):
    federation = federation_for(setting, "fedpkd")
    algo = build_algorithm(
        "fedpkd",
        federation,
        seed=setting.seed,
        epoch_scale=setting.scale_config().epoch_scale,
    )
    return federation, algo


def _inject_straggler(algo, client_id, sleep_s):
    """Make one client's local training take ``sleep_s`` extra seconds."""
    client = algo.clients[client_id]
    original = client.train_local

    def slow_train_local(*args, **kwargs):
        time.sleep(sleep_s)
        return original(*args, **kwargs)

    client.train_local = slow_train_local


def bench_straggler_scenario():
    """Sync-barrier vs async-engine wall-clock under one 10x straggler."""
    from repro.fl import AsyncRoundEngine

    setting = ExperimentSetting(scale="tiny", seed=0)

    # calibration: one clean synchronous round sets the nominal duration a
    # healthy client federation needs, and hence the straggler's slowdown
    federation, algo = _make_algo(setting)
    try:
        num_clients = federation.num_clients
        straggler_id = num_clients - 1
        t_nominal = _timed_round(algo)
    finally:
        federation.close()
    sleep_s = (SLOW_FACTOR - 1.0) * t_nominal

    # synchronous barrier: the round cannot finish before the straggler
    federation, algo = _make_algo(setting)
    try:
        _inject_straggler(algo, straggler_id, sleep_s)
        t_sync = _timed_round(algo)
    finally:
        federation.close()

    # async engine: buffer of n-1 aggregates the fast clients; the
    # straggler's dispatch stays in flight and (compute being lazy at
    # arrival) its training never runs, so the sleep is never paid
    federation, algo = _make_algo(setting)
    try:
        _inject_straggler(algo, straggler_id, sleep_s)
        engine = AsyncRoundEngine(
            algo,
            max_staleness=2,
            buffer_size=num_clients - 1,
            fault_plan={
                "faults": [
                    {
                        "kind": "straggler",
                        "client_id": straggler_id,
                        "factor": SLOW_FACTOR,
                    }
                ]
            },
        )
        t_async = _timed_round(engine)
    finally:
        federation.close()

    ratio = t_async / t_sync
    return {
        "num_clients": num_clients,
        "straggler_client": straggler_id,
        "slow_factor": SLOW_FACTOR,
        "injected_sleep_s": round(sleep_s, 4),
        "sync_round_s": round(t_sync, 4),
        "async_round_s": round(t_async, 4),
        "async_vs_sync_ratio": round(ratio, 4),
        "meets_half_sync_bar": ratio < 0.5,
    }


def bench_profiled_round():
    """One profiled FedPKD round: where does the round's time go?

    Runs on its own federation with the profiler active, so hook
    overhead never contaminates the unprofiled ops/sec reps.  Returns
    per-stage totals and the top ops of the heaviest stage.
    """
    setting = ExperimentSetting(scale="tiny", seed=0, profile=True)
    federation, algo = _make_algo(setting)
    try:
        algo.run(1)
        profiler = federation.obs.profiler
    finally:
        federation.close()
    stage_seconds = {
        stage: round(seconds, 4)
        for stage, seconds in sorted(
            profiler.stage_seconds().items(), key=lambda kv: -kv[1]
        )
    }
    top_stage = next(iter(stage_seconds), None)
    top_ops = [
        {
            "stage": row["stage"],
            "model": row["model"],
            "op": row["op"],
            "calls": row["calls"],
            "seconds": round(row["seconds"], 4),
            "flops": row["flops"],
        }
        for row in profiler.rows()
        if row["stage"] == top_stage
    ][:8]
    return {"stage_seconds": stage_seconds, "top_ops": top_ops}


# --------------------------------------------------------------------------
# cohort scenario: 100k registered clients, O(cohort) memory
# --------------------------------------------------------------------------

COHORT_NUM_CLIENTS = 100_000
COHORT_TRAIN_SAMPLES = 120_000
COHORT_CLIENTS_PER_ROUND = 16
COHORT_MAX_LIVE = 32
COHORT_EVAL_CLIENTS = 64
COHORT_ROUNDS = 3
#: per-round peak traced allocation ceiling.  The live set is bounded at
#: max_live carried clients + one round's touches (participants + eval
#: sample) over a tiny model, so rounds allocate a few MB; 64 MiB is an
#: order of magnitude of headroom while still catching any O(N)
#: materialisation regression (100k live clients would blow far past it).
COHORT_PEAK_CEILING_BYTES = 64 * 1024 * 1024


def bench_cohort_scenario():
    """100k-client smoke run on the lazy registry with bounded memory."""
    import tracemalloc

    from repro.data import SyntheticImageTask
    from repro.fl import FederationConfig, build_federation

    task = SyntheticImageTask(
        num_classes=4,
        image_shape=(1, 4, 4),
        latent_dim=4,
        class_separation=2.0,
        seed=0,
        name="cohort-smoke",
    )
    bundle = task.make_bundle(
        n_train=COHORT_TRAIN_SAMPLES, n_test=400, n_public=100, seed=1
    )
    config = FederationConfig(
        num_clients=COHORT_NUM_CLIENTS,
        partition=("iid", {}),
        client_models="mlp_small",
        server_model=None,
        feature_dim=8,
        seed=0,
        clients_per_round=COHORT_CLIENTS_PER_ROUND,
        max_live_clients=COHORT_MAX_LIVE,
        eval_clients=COHORT_EVAL_CLIENTS,
    )
    build_start = time.perf_counter()
    federation = build_federation(bundle, config)
    try:
        algo = build_algorithm("fedproto", federation, seed=0, epoch_scale=0.1)
        build_s = time.perf_counter() - build_start

        # trace only round-time allocations: the bounded-registry guarantee
        # is about what a *round* touches, not the one-off bundle build
        per_round_peak = []
        per_round_s = []
        tracemalloc.start()
        try:
            for _ in range(COHORT_ROUNDS):
                tracemalloc.reset_peak()
                start = time.perf_counter()
                algo.run(1, eval_every=1)
                per_round_s.append(round(time.perf_counter() - start, 4))
                per_round_peak.append(tracemalloc.get_traced_memory()[1])
        finally:
            tracemalloc.stop()
        stats = federation.registry.stats()
    finally:
        federation.close()

    peak = max(per_round_peak)
    return {
        "num_clients": COHORT_NUM_CLIENTS,
        "train_samples": COHORT_TRAIN_SAMPLES,
        "clients_per_round": COHORT_CLIENTS_PER_ROUND,
        "max_live_clients": COHORT_MAX_LIVE,
        "eval_clients": COHORT_EVAL_CLIENTS,
        "rounds": COHORT_ROUNDS,
        "build_s": round(build_s, 4),
        "round_s": per_round_s,
        "per_round_peak_bytes": per_round_peak,
        "peak_bytes": peak,
        "peak_ceiling_bytes": COHORT_PEAK_CEILING_BYTES,
        "meets_ceiling": peak < COHORT_PEAK_CEILING_BYTES,
        "registry": stats,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_9.json", metavar="PATH")
    parser.add_argument(
        "--scenario",
        choices=("all", "trajectory", "profile", "straggler", "cohort"),
        default="all",
        help="which benchmarks to run (default: all)",
    )
    args = parser.parse_args(argv)

    results = {
        "bench": "trajectory",
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ops": {},
    }
    if args.scenario in ("all", "trajectory"):
        results["ops"].update(
            {
                "conv2d": bench_conv2d(),
                "matmul": bench_matmul(),
                "fedpkd_round": bench_fedpkd_round(),
            }
        )
    if args.scenario in ("all", "profile"):
        results["profile"] = bench_profiled_round()
    scenarios = {}
    if args.scenario in ("all", "straggler"):
        scenarios["straggler"] = bench_straggler_scenario()
    if args.scenario in ("all", "cohort"):
        scenarios["cohort"] = bench_cohort_scenario()
    if scenarios:
        results["scenarios"] = scenarios
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    for name, stats in results["ops"].items():
        print(f"{name:13} {stats['ops_per_sec']:10.3f} ops/s ({stats['reps']} reps)")
    if "profile" in results:
        hot = results["profile"]["top_ops"]
        if hot:
            named = ", ".join(f"{r['op']}={r['seconds']}s" for r in hot[:3])
            print(f"{'profile':13} hottest {hot[0]['stage']}: {named}")
    if "straggler" in scenarios:
        stats = scenarios["straggler"]
        print(
            f"{'straggler':13} sync={stats['sync_round_s']:.3f}s "
            f"async={stats['async_round_s']:.3f}s "
            f"ratio={stats['async_vs_sync_ratio']:.3f} "
            f"(bar: <0.5 {'met' if stats['meets_half_sync_bar'] else 'MISSED'})"
        )
    failed = False
    if "cohort" in scenarios:
        stats = scenarios["cohort"]
        print(
            f"{'cohort':13} {stats['num_clients']} clients, "
            f"peak={stats['peak_bytes'] / 1e6:.1f}MB per round "
            f"(ceiling {stats['peak_ceiling_bytes'] / 1e6:.1f}MB "
            f"{'met' if stats['meets_ceiling'] else 'EXCEEDED'}), "
            f"rounds={stats['round_s']}"
        )
        # the memory ceiling is an acceptance bar, not a report: fail loudly
        failed = failed or not stats["meets_ceiling"]
    print(f"written to {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
