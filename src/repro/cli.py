"""Command-line interface.

Five subcommands::

    python -m repro run --algorithm fedpkd --dataset cifar10 \
        --partition dir0.1 --scale tiny --rounds 5 --out history.json \
        --trace trace.jsonl --metrics-out metrics.jsonl

    python -m repro sweep grid.json --out-root results

    python -m repro experiment fig5 --scale small --out-dir results/fig5

    python -m repro results history1.json history2.json --target 0.5
    python -m repro results --registry results/registry --where algorithm=fedpkd

    python -m repro lint src --baseline .reprolint-baseline.json

``run`` executes one algorithm and writes its RunHistory as JSON (with
optional observability outputs; see docs/OBSERVABILITY.md); ``sweep``
expands a grid spec into a deduplicated run queue and executes it through
the result cache and run registry (docs/SWEEP.md); ``experiment``
regenerates one paper figure/table and prints its rows; ``results``
tabulates saved history JSON files or queries a sweep registry; ``lint``
runs the repo's static analysis rules (or, with ``--traces``, validates
observability output; see docs/LINT.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .algorithms import ALGORITHMS
from .experiments import (
    PARTITIONS,
    SCALES,
    ExperimentSetting,
    fig1_motivation,
    fig2_logit_quality,
    fig3_comm_vs_publicsize,
    fig5_homogeneous,
    fig6_curves,
    fig7_heterogeneous,
    fig8_ablation,
    fig9_theta,
    fig10_delta,
    run_algorithm,
    table1_comm,
)

EXPERIMENTS = {
    "fig1": fig1_motivation,
    "fig2": fig2_logit_quality,
    "fig3": fig3_comm_vs_publicsize,
    "fig5": fig5_homogeneous,
    "fig6": fig6_curves,
    "fig7": fig7_heterogeneous,
    "fig8": fig8_ablation,
    "fig9": fig9_theta,
    "fig10": fig10_delta,
    "table1": table1_comm,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FedPKD reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one FL algorithm and save its history")
    run_p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="fedpkd")
    run_p.add_argument("--dataset", choices=("cifar10", "cifar100"), default="cifar10")
    run_p.add_argument("--partition", choices=sorted(PARTITIONS), default="dir0.5")
    run_p.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    run_p.add_argument("--heterogeneous", action="store_true")
    run_p.add_argument("--rounds", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--clients-per-round",
        type=int,
        default=None,
        metavar="K",
        help="sample a K-client cohort per round instead of full "
        "participation (cross-device shape; docs/SCALE.md)",
    )
    run_p.add_argument(
        "--max-live-clients",
        type=int,
        default=None,
        metavar="M",
        help="carry at most M materialised clients across rounds; the rest "
        "are lazy registry entries with mutated state spilled to disk "
        "(default: no eviction — the eager-equivalent mode)",
    )
    run_p.add_argument(
        "--eval-clients",
        type=int,
        default=None,
        metavar="E",
        help="evaluate C_acc on a seeded per-round sample of E clients "
        "instead of the whole population",
    )
    run_p.add_argument(
        "--executor",
        choices=("serial", "parallel"),
        default="serial",
        help="client-execution runtime (parallel fans clients out to workers)",
    )
    run_p.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker processes for --executor parallel (default: min(clients, cores))",
    )
    run_p.add_argument(
        "--task-timeout-s",
        type=float,
        default=None,
        help="per-client task timeout; a timed-out client drops out of the round",
    )
    run_p.add_argument(
        "--retry-backoff-s",
        type=float,
        default=0.0,
        help="base seconds of the capped exponential backoff (seeded jitter) "
        "slept between parallel-executor retry attempts (default 0: retry "
        "immediately)",
    )
    run_p.add_argument(
        "--engine",
        choices=("sync", "async"),
        default="sync",
        help="round engine: 'sync' (barrier, the reference) or 'async' "
        "(event-driven buffered aggregation with staleness discounts; "
        "docs/ASYNC.md)",
    )
    run_p.add_argument(
        "--max-staleness",
        type=int,
        default=0,
        metavar="S",
        help="async: discard contributions more than S server versions old "
        "(default 0)",
    )
    run_p.add_argument(
        "--staleness-alpha",
        type=float,
        default=0.5,
        metavar="A",
        help="async: staleness discount base — an s-versions-old "
        "contribution weighs alpha**s (default 0.5)",
    )
    run_p.add_argument(
        "--buffer-size",
        type=int,
        default=None,
        metavar="K",
        help="async: aggregate once K contributions arrive (default: wait "
        "for the whole pipeline — the sync-equivalent degenerate mode)",
    )
    run_p.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="async: JSON fault plan injecting deterministic chaos "
        "(stragglers, crashes, flaky clients, churn; docs/ASYNC.md)",
    )
    run_p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="autosave exact-resume checkpoints to this file",
    )
    run_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="autosave cadence in rounds (with --checkpoint; default 1)",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists; the finished run is "
        "bit-identical to one that never stopped",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured JSONL event trace of the run "
        "(docs/OBSERVABILITY.md documents the schema)",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="export the metrics registry to this .jsonl/.json/.csv file",
    )
    run_p.add_argument("--out", default=None, help="path for the history JSON")
    run_p.add_argument("--verbose", action="store_true")

    exp_p = sub.add_parser("experiment", help="regenerate one paper figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    exp_p.add_argument("--seed", type=int, default=0)
    exp_p.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="also write the experiment's raw result dict as <DIR>/<name>.json",
    )

    from .lint.cli import add_lint_parser

    add_lint_parser(sub)

    from .sweep.cli import add_sweep_parser

    add_sweep_parser(sub)

    res_p = sub.add_parser(
        "results", help="tabulate saved RunHistory JSON files or registry runs"
    )
    res_p.add_argument(
        "files", nargs="*", help="history JSON files from `repro run --out`"
    )
    res_p.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="also tabulate runs from a sweep registry directory "
        "(e.g. results/registry; see docs/SWEEP.md)",
    )
    res_p.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="filter registry runs (repeatable), e.g. --where algorithm=fedpkd "
        "--where partition=dir0.5 --where status=completed",
    )
    res_p.add_argument(
        "--target",
        type=float,
        default=None,
        help="also report cumulative MB until this accuracy is reached",
    )
    res_p.add_argument(
        "--metric",
        choices=("server", "client"),
        default="server",
        help="accuracy metric used for --target (default: server)",
    )
    res_p.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="export the per-round records of a single history as CSV",
    )

    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="configure the repro logger on stderr",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    setting = ExperimentSetting(
        dataset=args.dataset,
        partition=args.partition,
        heterogeneous=args.heterogeneous,
        scale=args.scale,
        seed=args.seed,
        clients_per_round=args.clients_per_round,
        max_live_clients=args.max_live_clients,
        eval_clients=args.eval_clients,
        executor=args.executor,
        max_workers=args.max_workers,
        task_timeout_s=args.task_timeout_s,
        retry_backoff_s=args.retry_backoff_s,
        engine=args.engine,
        max_staleness=args.max_staleness,
        staleness_alpha=args.staleness_alpha,
        buffer_size=args.buffer_size,
        fault_plan=args.fault_plan,
        checkpoint_every=args.checkpoint_every if args.checkpoint else 0,
        checkpoint_path=args.checkpoint,
        trace_path=args.trace,
        metrics_path=args.metrics_out,
    )
    history = run_algorithm(
        setting, args.algorithm, rounds=args.rounds, resume=args.resume
    )
    last = history.records[-1]
    print(
        f"{args.algorithm} on {args.dataset}/{args.partition}: "
        f"S_acc={history.final_server_acc:.3f} "
        f"C_acc={history.final_client_acc:.3f} "
        f"comm={last.comm_total_mb:.2f}MB over {len(history)} rounds"
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(history.to_dict(), f, indent=2)
        print(f"history written to {args.out}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENTS[args.name]
    module.main(scale=args.scale, seed=args.seed, out_dir=args.out_dir)
    if args.out_dir:
        print(f"results written to {args.out_dir}/{args.name}.json")
    return 0


def _cmd_registry_results(args: argparse.Namespace) -> int:
    from .experiments.harness import format_table
    from .sweep import RegistryError, RunRegistry, parse_where

    registry = RunRegistry(args.registry)
    try:
        records = registry.query(parse_where(args.where))
    except RegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2
    records.sort(key=lambda r: (r.get("label", ""), r["run_key"]))
    headers = [
        "run_key",
        "sweep",
        "status",
        "label",
        "rounds",
        "final_S_acc",
        "best_S_acc",
        "final_C_acc",
        "comm_MB",
    ]
    rows = [
        [
            record["run_key"][:12],
            record.get("sweep", "?"),
            record["status"],
            record.get("label", "?"),
            record.get("rounds"),
            record.get("final_server_acc"),
            record.get("best_server_acc"),
            record.get("final_client_acc"),
            record.get("comm_mb"),
        ]
        for record in records
    ]
    print(format_table(headers, rows, title=f"registry: {args.registry}"))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from .experiments.harness import format_table
    from .fl.metrics import RunHistory

    if args.registry is not None:
        if args.files or args.csv:
            print(
                "--registry does not combine with history files or --csv",
                file=sys.stderr,
            )
            return 2
        return _cmd_registry_results(args)
    if args.where:
        print("--where requires --registry", file=sys.stderr)
        return 2
    if not args.files:
        print("results: no history files given", file=sys.stderr)
        return 2

    histories = []
    for path in args.files:
        try:
            with open(path) as f:
                histories.append((path, RunHistory.from_dict(json.load(f))))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"cannot read history '{path}': {exc}", file=sys.stderr)
            return 2

    if args.csv:
        if len(histories) != 1:
            print("--csv exports a single history file", file=sys.stderr)
            return 2
        with open(args.csv, "w") as f:
            f.write(histories[0][1].to_csv())
        print(f"per-round CSV written to {args.csv}")

    headers = [
        "file",
        "algorithm",
        "dataset",
        "rounds",
        "final_S_acc",
        "best_S_acc",
        "final_C_acc",
        "best_C_acc",
        "comm_MB",
    ]
    if args.target is not None:
        headers.append(f"MB_to_{args.target:g}")
    rows = []
    for path, history in histories:
        last_mb = history.records[-1].comm_total_mb if history.records else float("nan")
        row = [
            path,
            history.algorithm,
            history.dataset or "?",
            len(history),
            history.final_server_acc,
            history.best_server_acc,
            history.final_client_acc,
            history.best_client_acc,
            last_mb,
        ]
        if args.target is not None:
            row.append(history.comm_to_reach(args.target, metric=args.metric))
        rows.append(row)
    print(format_table(headers, rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "log_level", None):
        from .obs import configure_logging

        configure_logging(args.log_level)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "results":
        return _cmd_results(args)
    if args.command == "lint":
        from .lint.cli import cmd_lint

        return cmd_lint(args)
    if args.command == "sweep":
        from .sweep.cli import cmd_sweep

        return cmd_sweep(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
