"""Command-line interface.

Six subcommands::

    python -m repro run --algorithm fedpkd --dataset cifar10 \
        --partition dir0.1 --scale tiny --rounds 5 --out history.json \
        --trace trace.jsonl --metrics-out metrics.jsonl

    python -m repro sweep grid.json --out-root results

    python -m repro experiment fig5 --scale small --out-dir results/fig5

    python -m repro results history1.json history2.json --target 0.5
    python -m repro results --registry results/registry --where algorithm=fedpkd

    python -m repro lint src --baseline .reprolint-baseline.json

    python -m repro trace summarize trace.jsonl --metrics metrics.jsonl
    python -m repro trace compare bench.json --baseline BENCH_8.json

``run`` executes one algorithm and writes its RunHistory as JSON (with
optional observability outputs; see docs/OBSERVABILITY.md); ``sweep``
expands a grid spec into a deduplicated run queue and executes it through
the result cache and run registry (docs/SWEEP.md); ``experiment``
regenerates one paper figure/table and prints its rows; ``results``
tabulates saved history JSON files or queries a sweep registry (with
``--aggregate seed`` collapsing same-config runs into mean±std rows);
``lint`` runs the repo's static analysis rules (or, with ``--traces``,
validates observability output; see docs/LINT.md); ``trace``
post-processes a run's JSONL trace into stage-time tables, hot-op
rankings, async critical paths, and perf-regression diffs
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .algorithms import ALGORITHMS
from .experiments import (
    PARTITIONS,
    SCALES,
    ExperimentSetting,
    fig1_motivation,
    fig2_logit_quality,
    fig3_comm_vs_publicsize,
    fig5_homogeneous,
    fig6_curves,
    fig7_heterogeneous,
    fig8_ablation,
    fig9_theta,
    fig10_delta,
    run_algorithm,
    table1_comm,
)

EXPERIMENTS = {
    "fig1": fig1_motivation,
    "fig2": fig2_logit_quality,
    "fig3": fig3_comm_vs_publicsize,
    "fig5": fig5_homogeneous,
    "fig6": fig6_curves,
    "fig7": fig7_heterogeneous,
    "fig8": fig8_ablation,
    "fig9": fig9_theta,
    "fig10": fig10_delta,
    "table1": table1_comm,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FedPKD reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one FL algorithm and save its history")
    run_p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="fedpkd")
    run_p.add_argument("--dataset", choices=("cifar10", "cifar100"), default="cifar10")
    run_p.add_argument("--partition", choices=sorted(PARTITIONS), default="dir0.5")
    run_p.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    run_p.add_argument("--heterogeneous", action="store_true")
    run_p.add_argument("--rounds", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--clients-per-round",
        type=int,
        default=None,
        metavar="K",
        help="sample a K-client cohort per round instead of full "
        "participation (cross-device shape; docs/SCALE.md)",
    )
    run_p.add_argument(
        "--max-live-clients",
        type=int,
        default=None,
        metavar="M",
        help="carry at most M materialised clients across rounds; the rest "
        "are lazy registry entries with mutated state spilled to disk "
        "(default: no eviction — the eager-equivalent mode)",
    )
    run_p.add_argument(
        "--eval-clients",
        type=int,
        default=None,
        metavar="E",
        help="evaluate C_acc on a seeded per-round sample of E clients "
        "instead of the whole population",
    )
    run_p.add_argument(
        "--executor",
        choices=("serial", "parallel"),
        default="serial",
        help="client-execution runtime (parallel fans clients out to workers)",
    )
    run_p.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker processes for --executor parallel (default: min(clients, cores))",
    )
    run_p.add_argument(
        "--task-timeout-s",
        type=float,
        default=None,
        help="per-client task timeout; a timed-out client drops out of the round",
    )
    run_p.add_argument(
        "--retry-backoff-s",
        type=float,
        default=0.0,
        help="base seconds of the capped exponential backoff (seeded jitter) "
        "slept between parallel-executor retry attempts (default 0: retry "
        "immediately)",
    )
    run_p.add_argument(
        "--engine",
        choices=("sync", "async"),
        default="sync",
        help="round engine: 'sync' (barrier, the reference) or 'async' "
        "(event-driven buffered aggregation with staleness discounts; "
        "docs/ASYNC.md)",
    )
    run_p.add_argument(
        "--max-staleness",
        type=int,
        default=0,
        metavar="S",
        help="async: discard contributions more than S server versions old "
        "(default 0)",
    )
    run_p.add_argument(
        "--staleness-alpha",
        type=float,
        default=0.5,
        metavar="A",
        help="async: staleness discount base — an s-versions-old "
        "contribution weighs alpha**s (default 0.5)",
    )
    run_p.add_argument(
        "--buffer-size",
        type=int,
        default=None,
        metavar="K",
        help="async: aggregate once K contributions arrive (default: wait "
        "for the whole pipeline — the sync-equivalent degenerate mode)",
    )
    run_p.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="async: JSON fault plan injecting deterministic chaos "
        "(stragglers, crashes, flaky clients, churn; docs/ASYNC.md)",
    )
    run_p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="autosave exact-resume checkpoints to this file",
    )
    run_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="autosave cadence in rounds (with --checkpoint; default 1)",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists; the finished run is "
        "bit-identical to one that never stopped",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured JSONL event trace of the run "
        "(docs/OBSERVABILITY.md documents the schema)",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="export the metrics registry to this .jsonl/.json/.csv file",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="enable the op-level profiler (repro.obs.profile); aggregates "
        "land in the metrics export and the trace's 'profile' scope — "
        "analyse them with `repro trace summarize`",
    )
    run_p.add_argument("--out", default=None, help="path for the history JSON")
    run_p.add_argument("--verbose", action="store_true")

    exp_p = sub.add_parser("experiment", help="regenerate one paper figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    exp_p.add_argument("--seed", type=int, default=0)
    exp_p.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="also write the experiment's raw result dict as <DIR>/<name>.json",
    )

    from .lint.cli import add_lint_parser

    add_lint_parser(sub)

    from .sweep.cli import add_sweep_parser

    add_sweep_parser(sub)

    trace_p = sub.add_parser(
        "trace", help="analyse a JSONL trace (timings, hot ops, critical path)"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    sum_p = trace_sub.add_parser(
        "summarize",
        help="stage-time table plus top-K hot ops from profile events",
    )
    sum_p.add_argument("trace", help="JSONL trace from `repro run --trace`")
    sum_p.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="also summarise registry/* gauges from this metrics export",
    )
    sum_p.add_argument(
        "--stage",
        default=None,
        help="restrict the hot-op table to one stage (e.g. local_train)",
    )
    sum_p.add_argument(
        "--top-k", type=int, default=10, help="hot ops to show (default 10)"
    )

    cp_p = trace_sub.add_parser(
        "critical-path",
        help="async-engine dispatch/arrival timelines and staleness",
    )
    cp_p.add_argument("trace", help="JSONL trace of an --engine async run")

    cmp_p = trace_sub.add_parser(
        "compare",
        help="diff a bench trajectory against a baseline; exit 1 on regression",
    )
    cmp_p.add_argument(
        "current", help="bench JSON from scripts/bench_trajectory.py"
    )
    cmp_p.add_argument(
        "--baseline", required=True, metavar="BENCH_N.json",
        help="checked-in trajectory file to compare against",
    )
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="fractional ops/sec drop that counts as a regression "
        "(default 0.2 = 20%%)",
    )

    res_p = sub.add_parser(
        "results", help="tabulate saved RunHistory JSON files or registry runs"
    )
    res_p.add_argument(
        "files", nargs="*", help="history JSON files from `repro run --out`"
    )
    res_p.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="also tabulate runs from a sweep registry directory "
        "(e.g. results/registry; see docs/SWEEP.md)",
    )
    res_p.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="filter registry runs (repeatable), e.g. --where algorithm=fedpkd "
        "--where partition=dir0.5 --where status=completed",
    )
    res_p.add_argument(
        "--aggregate",
        choices=("seed",),
        default=None,
        help="with --registry: collapse runs identical up to this field "
        "into mean±std rows (n_seeds column shows group size)",
    )
    res_p.add_argument(
        "--target",
        type=float,
        default=None,
        help="also report cumulative MB until this accuracy is reached",
    )
    res_p.add_argument(
        "--metric",
        choices=("server", "client"),
        default="server",
        help="accuracy metric used for --target (default: server)",
    )
    res_p.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="export the per-round records of a single history as CSV",
    )

    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="configure the repro logger on stderr",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    setting = ExperimentSetting(
        dataset=args.dataset,
        partition=args.partition,
        heterogeneous=args.heterogeneous,
        scale=args.scale,
        seed=args.seed,
        clients_per_round=args.clients_per_round,
        max_live_clients=args.max_live_clients,
        eval_clients=args.eval_clients,
        executor=args.executor,
        max_workers=args.max_workers,
        task_timeout_s=args.task_timeout_s,
        retry_backoff_s=args.retry_backoff_s,
        engine=args.engine,
        max_staleness=args.max_staleness,
        staleness_alpha=args.staleness_alpha,
        buffer_size=args.buffer_size,
        fault_plan=args.fault_plan,
        checkpoint_every=args.checkpoint_every if args.checkpoint else 0,
        checkpoint_path=args.checkpoint,
        trace_path=args.trace,
        metrics_path=args.metrics_out,
        profile=args.profile,
    )
    history = run_algorithm(
        setting, args.algorithm, rounds=args.rounds, resume=args.resume
    )
    last = history.records[-1]
    print(
        f"{args.algorithm} on {args.dataset}/{args.partition}: "
        f"S_acc={history.final_server_acc:.3f} "
        f"C_acc={history.final_client_acc:.3f} "
        f"comm={last.comm_total_mb:.2f}MB over {len(history)} rounds"
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(history.to_dict(), f, indent=2)
        print(f"history written to {args.out}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENTS[args.name]
    module.main(scale=args.scale, seed=args.seed, out_dir=args.out_dir)
    if args.out_dir:
        print(f"results written to {args.out_dir}/{args.name}.json")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .experiments.harness import format_table
    from .obs import trace_analysis as ta

    if args.trace_command == "compare":
        try:
            with open(args.current) as f:
                current = json.load(f)
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"cannot read bench file: {exc}", file=sys.stderr)
            return 2
        try:
            result = ta.compare_benchmarks(
                current, baseline, threshold=args.threshold
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        rows = [
            [
                r["op"],
                r["baseline_ops_per_sec"],
                r["current_ops_per_sec"],
                "N/A" if r["delta_frac"] is None else f"{100 * r['delta_frac']:+.1f}%",
                "REGRESSED" if r["regressed"] else "ok",
            ]
            for r in result["rows"]
        ]
        print(
            format_table(
                ["op", "baseline_ops/s", "current_ops/s", "delta", "status"],
                rows,
                title=f"bench compare (threshold {100 * args.threshold:.0f}%)",
            )
        )
        if result["regressed"]:
            print("perf regression detected", file=sys.stderr)
            return 1
        return 0

    try:
        events = ta.load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace '{args.trace}': {exc}", file=sys.stderr)
        return 2

    if args.trace_command == "critical-path":
        summary = ta.critical_path(events)
        if not summary:
            print("no engine events in trace (sync run?)", file=sys.stderr)
            return 2
        rows = [
            [
                c["client_id"],
                c["dispatches"],
                c["mean_delay"],
                c["max_delay"],
                c["total_delay"],
                c["last_arrival"],
                "*" if c["client_id"] in summary["critical_clients"] else "",
            ]
            for c in summary["clients"]
        ]
        print(
            format_table(
                [
                    "client", "dispatches", "mean_delay", "max_delay",
                    "total_delay", "last_arrival", "critical",
                ],
                rows,
                title="async dispatch/arrival timelines (virtual clock)",
            )
        )
        print(f"\nstale drops: {summary['stale_drops']}")
        if "staleness" in summary:
            s = summary["staleness"]
            print(
                f"staleness of drops: mean={s['mean']:.2f} "
                f"p95={s['p95']:.2f} max={s['max']}"
            )
        if summary["faults"]:
            causes = ", ".join(
                f"{k}={v}" for k, v in sorted(summary["faults"].items())
            )
            print(f"injected faults: {causes}")
        return 0

    # summarize
    stage_rows = ta.stage_summary(events)
    if stage_rows:
        print(
            format_table(
                ["stage", "count", "total_s", "mean_s", "p50_s", "p95_s"],
                [
                    [r["stage"], r["count"], r["total_s"], r["mean_s"],
                     r["p50_s"], r["p95_s"]]
                    for r in stage_rows
                ],
                title="stage times (across rounds)",
            )
        )
    hot = ta.hot_ops(events, stage=args.stage, top_k=args.top_k)
    if hot:
        scope = args.stage or "all stages"
        print(
            "\n"
            + format_table(
                ["stage", "model", "op", "calls", "seconds", "gflops/s", "cum%"],
                [
                    [r["stage"], r["model"], r["op"], r["calls"], r["seconds"],
                     r["gflops_per_s"], f"{100 * r['cum_frac']:.0f}%"]
                    for r in hot
                ],
                title=f"top-{args.top_k} hot ops ({scope})",
            )
        )
        cov = ta.stage_coverage(events)
        if cov:
            print(
                "\n"
                + format_table(
                    ["stage", "wall_s", "ops_s", "coverage"],
                    [
                        [r["stage"], r["wall_s"], r["ops_s"],
                         f"{100 * r['coverage']:.1f}%"]
                        for r in cov
                    ],
                    title="profiled-op coverage of stage wall time",
                )
            )
    else:
        print("\nno profile events (re-run with --profile to get hot ops)")
    if args.metrics:
        try:
            reg = ta.registry_summary(ta.load_metrics(args.metrics))
        except (OSError, ValueError) as exc:
            print(f"cannot read metrics '{args.metrics}': {exc}", file=sys.stderr)
            return 2
        if reg:
            print(
                "\n"
                + format_table(
                    ["metric", "value"],
                    sorted(reg.items()),
                    title="cohort registry (spill/hydration) summary",
                )
            )
    return 0


def _aggregate_by_seed(records: List[dict]) -> List[dict]:
    """Collapse registry records identical up to ``setting.seed``.

    Returns synthetic rows carrying ``mean±std`` strings for the result
    fields and an ``n_seeds`` count; groups of one pass through as-is.
    """
    import re
    import statistics

    groups: dict = {}
    for record in records:
        config = record.get("config") or {}
        setting = dict(config.get("setting") or {})
        setting.pop("seed", None)
        key = json.dumps(
            {**config, "setting": setting}, sort_keys=True, default=str
        )
        groups.setdefault(key, []).append(record)

    def agg(values: List[float]) -> str:
        values = [v for v in values if v is not None]
        if not values:
            return "N/A"
        mean = statistics.fmean(values)
        std = statistics.stdev(values) if len(values) > 1 else 0.0
        return f"{mean:.3f}±{std:.3f}"

    rows = []
    for members in groups.values():
        members.sort(key=lambda r: r["run_key"])
        first = members[0]
        label = re.sub(r"/s\d+", "", first.get("label", "?"))
        statuses = {m["status"] for m in members}
        rows.append(
            {
                "label": label,
                "sweep": first.get("sweep", "?"),
                "status": next(iter(statuses)) if len(statuses) == 1 else "mixed",
                "n_seeds": len(members),
                "rounds": first.get("rounds"),
                "final_server_acc": agg([m.get("final_server_acc") for m in members]),
                "best_server_acc": agg([m.get("best_server_acc") for m in members]),
                "final_client_acc": agg([m.get("final_client_acc") for m in members]),
                "comm_mb": agg([m.get("comm_mb") for m in members]),
            }
        )
    rows.sort(key=lambda r: r["label"])
    return rows


def _cmd_registry_results(args: argparse.Namespace) -> int:
    from .experiments.harness import format_table
    from .sweep import RegistryError, RunRegistry, parse_where

    registry = RunRegistry(args.registry)
    try:
        records = registry.query(parse_where(args.where))
    except RegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "aggregate", None) == "seed":
        rows = _aggregate_by_seed(records)
        print(
            format_table(
                [
                    "label", "sweep", "status", "n_seeds", "rounds",
                    "final_S_acc", "best_S_acc", "final_C_acc", "comm_MB",
                ],
                [
                    [
                        r["label"], r["sweep"], r["status"], r["n_seeds"],
                        r["rounds"], r["final_server_acc"], r["best_server_acc"],
                        r["final_client_acc"], r["comm_mb"],
                    ]
                    for r in rows
                ],
                title=f"registry: {args.registry} (aggregated over seeds)",
            )
        )
        return 0
    records.sort(key=lambda r: (r.get("label", ""), r["run_key"]))
    headers = [
        "run_key",
        "sweep",
        "status",
        "label",
        "rounds",
        "final_S_acc",
        "best_S_acc",
        "final_C_acc",
        "comm_MB",
    ]
    rows = [
        [
            record["run_key"][:12],
            record.get("sweep", "?"),
            record["status"],
            record.get("label", "?"),
            record.get("rounds"),
            record.get("final_server_acc"),
            record.get("best_server_acc"),
            record.get("final_client_acc"),
            record.get("comm_mb"),
        ]
        for record in records
    ]
    print(format_table(headers, rows, title=f"registry: {args.registry}"))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from .experiments.harness import format_table
    from .fl.metrics import RunHistory

    if args.registry is not None:
        if args.files or args.csv:
            print(
                "--registry does not combine with history files or --csv",
                file=sys.stderr,
            )
            return 2
        return _cmd_registry_results(args)
    if args.where or args.aggregate:
        print("--where/--aggregate requires --registry", file=sys.stderr)
        return 2
    if not args.files:
        print("results: no history files given", file=sys.stderr)
        return 2

    histories = []
    for path in args.files:
        try:
            with open(path) as f:
                histories.append((path, RunHistory.from_dict(json.load(f))))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"cannot read history '{path}': {exc}", file=sys.stderr)
            return 2

    if args.csv:
        if len(histories) != 1:
            print("--csv exports a single history file", file=sys.stderr)
            return 2
        with open(args.csv, "w") as f:
            f.write(histories[0][1].to_csv())
        print(f"per-round CSV written to {args.csv}")

    headers = [
        "file",
        "algorithm",
        "dataset",
        "rounds",
        "final_S_acc",
        "best_S_acc",
        "final_C_acc",
        "best_C_acc",
        "comm_MB",
    ]
    if args.target is not None:
        headers.append(f"MB_to_{args.target:g}")
    rows = []
    for path, history in histories:
        last_mb = history.records[-1].comm_total_mb if history.records else float("nan")
        row = [
            path,
            history.algorithm,
            history.dataset or "?",
            len(history),
            history.final_server_acc,
            history.best_server_acc,
            history.final_client_acc,
            history.best_client_acc,
            last_mb,
        ]
        if args.target is not None:
            row.append(history.comm_to_reach(args.target, metric=args.metric))
        rows.append(row)
    print(format_table(headers, rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "log_level", None):
        from .obs import configure_logging

        configure_logging(args.log_level)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "results":
        return _cmd_results(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        from .lint.cli import cmd_lint

        return cmd_lint(args)
    if args.command == "sweep":
        from .sweep.cli import cmd_sweep

        return cmd_sweep(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
