"""Prototype-geometry diagnostics.

FedPKD's mechanisms all assume prototypes carve the feature space into
well-separated class regions.  These utilities quantify that assumption on
a trained model so users can debug *why* filtering or the prototype loss is
(or isn't) helping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial.distance import cdist

from ..core.prototypes import prototype_coverage

__all__ = ["SeparationReport", "prototype_separation", "prototype_drift"]


@dataclass
class SeparationReport:
    """Summary of prototype geometry for one feature space.

    ``separation_ratio`` is mean inter-class prototype distance divided by
    mean intra-class feature-to-prototype distance: > 1 means classes are
    more spread apart than they are internally diffuse (good for Alg. 1).
    """

    intra_class_distance: float
    inter_class_distance: float
    per_class_intra: np.ndarray

    @property
    def separation_ratio(self) -> float:
        if self.intra_class_distance == 0:
            return float("inf")
        return self.inter_class_distance / self.intra_class_distance


def prototype_separation(
    features: np.ndarray, labels: np.ndarray, prototypes: Optional[np.ndarray] = None
) -> SeparationReport:
    """Measure intra- vs inter-class distances in a feature space.

    Parameters
    ----------
    features:
        ``(N, D)`` feature vectors.
    labels:
        ``(N,)`` integer labels.
    prototypes:
        Optional ``(C, D)`` prototypes; computed as class means if omitted.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if len(features) != len(labels):
        raise ValueError("features and labels must align")
    classes = np.unique(labels)
    num_classes = int(labels.max()) + 1 if len(labels) else 0
    if prototypes is None:
        dim = features.shape[1]
        prototypes = np.full((num_classes, dim), np.nan)
        for cls in classes:
            prototypes[cls] = features[labels == cls].mean(axis=0)

    per_class = np.full(prototypes.shape[0], np.nan)
    for cls in classes:
        if np.isnan(prototypes[cls]).any():
            continue
        members = features[labels == cls]
        per_class[cls] = np.linalg.norm(members - prototypes[cls], axis=1).mean()
    intra = float(np.nanmean(per_class)) if np.isfinite(per_class).any() else 0.0

    covered = np.flatnonzero(prototype_coverage(prototypes))
    if len(covered) >= 2:
        pairwise = cdist(prototypes[covered], prototypes[covered])
        upper = pairwise[np.triu_indices(len(covered), k=1)]
        inter = float(upper.mean())
    else:
        inter = 0.0
    return SeparationReport(
        intra_class_distance=intra,
        inter_class_distance=inter,
        per_class_intra=per_class,
    )


def prototype_drift(
    prototypes_by_round: list, aggregate: str = "mean"
) -> np.ndarray:
    """Per-round L2 drift of global prototypes across a run.

    Returns an array of length ``len(prototypes_by_round) - 1`` with the
    mean (or max) per-class prototype movement between consecutive rounds —
    a convergence diagnostic for the dual knowledge loop.
    """
    if len(prototypes_by_round) < 2:
        return np.zeros(0)
    drifts = []
    for prev, curr in zip(prototypes_by_round[:-1], prototypes_by_round[1:]):
        both = prototype_coverage(prev) & prototype_coverage(curr)
        if not both.any():
            drifts.append(np.nan)
            continue
        step = np.linalg.norm(curr[both] - prev[both], axis=1)
        drifts.append(float(step.max() if aggregate == "max" else step.mean()))
    return np.asarray(drifts)
