"""Diagnostics for FedPKD deployments: prototype geometry, client
similarity/communities, and logit-quality reports."""

from .classification import (
    confusion_matrix,
    per_class_recall_precision,
    top_k_accuracy,
)
from .clients import (
    build_client_graph,
    client_communities,
    label_distribution_similarity,
    prototype_similarity,
)
from .fairness import FairnessReport, fairness_report, history_fairness
from .logits import LogitQualityReport, logit_quality_report, per_class_accuracy
from .prototypes import SeparationReport, prototype_drift, prototype_separation

__all__ = [
    "prototype_separation",
    "prototype_drift",
    "SeparationReport",
    "label_distribution_similarity",
    "prototype_similarity",
    "build_client_graph",
    "client_communities",
    "per_class_accuracy",
    "logit_quality_report",
    "LogitQualityReport",
    "confusion_matrix",
    "top_k_accuracy",
    "per_class_recall_precision",
    "FairnessReport",
    "fairness_report",
    "history_fairness",
]
