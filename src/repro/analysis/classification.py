"""Classification metrics beyond top-1 accuracy."""

from __future__ import annotations


import numpy as np

__all__ = ["confusion_matrix", "top_k_accuracy", "per_class_recall_precision"]


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Row = true class, column = predicted class, counts."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is in the top-k logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or len(logits) != len(labels):
        raise ValueError("logits must be (N, C) aligned with labels")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    if len(labels) == 0:
        return 0.0
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())


def per_class_recall_precision(
    matrix: np.ndarray,
) -> tuple:
    """Return ``(recall, precision)`` arrays from a confusion matrix.

    Classes with no true (resp. predicted) samples get NaN recall
    (resp. precision).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("confusion matrix must be square")
    diag = np.diag(matrix)
    row_sums = matrix.sum(axis=1)
    col_sums = matrix.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        recall = np.where(row_sums > 0, diag / row_sums, np.nan)
        precision = np.where(col_sums > 0, diag / col_sums, np.nan)
    return recall, precision
