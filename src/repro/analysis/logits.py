"""Logit-quality diagnostics, generalising the paper's Fig. 2 analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["per_class_accuracy", "LogitQualityReport", "logit_quality_report"]


def per_class_accuracy(
    logits: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Accuracy of ``argmax(logits)`` per true class; NaN for absent classes."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(logits) != len(labels):
        raise ValueError("logits and labels must align")
    predictions = logits.argmax(axis=1)
    accs = np.full(num_classes, np.nan)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            accs[cls] = float((predictions[mask] == cls).mean())
    return accs


@dataclass
class LogitQualityReport:
    """Comparison of per-client and aggregated logit quality.

    ``client_acc[c, j]`` is client ``c``'s accuracy on true class ``j``;
    ``aggregated_acc[j]`` is the aggregate's.  ``mean_confidence[c]`` is
    each client's mean max-softmax probability (a calibration proxy).
    """

    client_acc: np.ndarray
    aggregated_acc: np.ndarray
    mean_confidence: np.ndarray

    @property
    def overall_client_acc(self) -> np.ndarray:
        return np.nanmean(self.client_acc, axis=1)

    @property
    def overall_aggregated_acc(self) -> float:
        return float(np.nanmean(self.aggregated_acc))


def logit_quality_report(
    client_logits: Sequence[np.ndarray],
    aggregated_logits: np.ndarray,
    true_labels: np.ndarray,
    num_classes: int,
) -> LogitQualityReport:
    """Build a quality report for a set of client logits and their aggregate."""
    client_acc = np.stack(
        [per_class_accuracy(l, true_labels, num_classes) for l in client_logits]
    )
    confidences = []
    for logits in client_logits:
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        confidences.append(float(probs.max(axis=1).mean()))
    return LogitQualityReport(
        client_acc=client_acc,
        aggregated_acc=per_class_accuracy(aggregated_logits, true_labels, num_classes),
        mean_confidence=np.asarray(confidences),
    )
