"""Client-population diagnostics: similarity graphs and clustering.

In heterogeneous FL deployments it is useful to know *which clients hold
similar data* — e.g. to explain why some clients' knowledge dominates the
aggregate, or to group clients for staged rollouts.  These tools build a
client similarity graph (from label distributions or prototypes) with
networkx and find communities.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "label_distribution_similarity",
    "prototype_similarity",
    "build_client_graph",
    "client_communities",
]


def label_distribution_similarity(class_counts: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise client similarity from label histograms.

    Uses the Bhattacharyya coefficient of the normalised label
    distributions: 1 means identical class mixes, 0 means disjoint classes.
    """
    dists = []
    for counts in class_counts:
        counts = np.asarray(counts, dtype=np.float64)
        total = counts.sum()
        if total == 0:
            raise ValueError("a client has zero samples")
        dists.append(counts / total)
    n = len(dists)
    sim = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            coeff = float(np.sqrt(dists[i] * dists[j]).sum())
            sim[i, j] = sim[j, i] = coeff
    return sim


def prototype_similarity(client_prototypes: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise client similarity from their local prototypes.

    Mean cosine similarity over the classes both clients cover; NaN-safe.
    Clients sharing no classes get similarity 0.
    """
    n = len(client_prototypes)
    sim = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = client_prototypes[i], client_prototypes[j]
            both = ~(np.isnan(a).any(axis=1) | np.isnan(b).any(axis=1))
            if not both.any():
                sim[i, j] = sim[j, i] = 0.0
                continue
            va, vb = a[both], b[both]
            norms = np.linalg.norm(va, axis=1) * np.linalg.norm(vb, axis=1)
            with np.errstate(invalid="ignore", divide="ignore"):
                cos = np.where(norms > 0, (va * vb).sum(axis=1) / norms, 0.0)
            sim[i, j] = sim[j, i] = float(cos.mean())
    return sim


def build_client_graph(
    similarity: np.ndarray, threshold: float = 0.5
) -> nx.Graph:
    """Build a weighted client graph keeping edges above ``threshold``."""
    similarity = np.asarray(similarity)
    if similarity.ndim != 2 or similarity.shape[0] != similarity.shape[1]:
        raise ValueError("similarity must be a square matrix")
    graph = nx.Graph()
    n = similarity.shape[0]
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if similarity[i, j] >= threshold:
                graph.add_edge(i, j, weight=float(similarity[i, j]))
    return graph


def client_communities(
    similarity: np.ndarray, threshold: float = 0.5
) -> List[set]:
    """Cluster clients by greedy modularity over the similarity graph.

    Isolated clients come back as singleton communities.
    """
    graph = build_client_graph(similarity, threshold=threshold)
    if graph.number_of_edges() == 0:
        return [{node} for node in graph.nodes]
    communities = nx.community.greedy_modularity_communities(graph, weight="weight")
    return [set(c) for c in communities]
