"""Fairness diagnostics across the client population.

FL methods can raise the *mean* client accuracy while leaving some clients
far behind; these summaries quantify the spread.  The literature commonly
reports the accuracy variance/std across clients (e.g. q-FFL) — we add the
worst-decile accuracy and a Jain fairness index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..fl.metrics import RunHistory

__all__ = ["FairnessReport", "fairness_report"]


@dataclass
class FairnessReport:
    """Distributional summary of per-client accuracies."""

    mean: float
    std: float
    min: float
    max: float
    worst_decile_mean: float
    jain_index: float

    @property
    def spread(self) -> float:
        return self.max - self.min


def fairness_report(accuracies: Sequence[float]) -> FairnessReport:
    """Summarise per-client accuracies into a :class:`FairnessReport`.

    The Jain index ``(Σx)² / (n·Σx²)`` is 1.0 when all clients are equally
    served and approaches ``1/n`` under maximal inequality.
    """
    acc = np.asarray(list(accuracies), dtype=np.float64)
    if acc.size == 0:
        raise ValueError("no client accuracies given")
    if (acc < 0).any():
        raise ValueError("accuracies must be non-negative")
    n_decile = max(1, int(np.ceil(acc.size / 10)))
    worst = np.sort(acc)[:n_decile]
    sum_sq = float((acc**2).sum())
    jain = float(acc.sum() ** 2 / (acc.size * sum_sq)) if sum_sq > 0 else 1.0
    return FairnessReport(
        mean=float(acc.mean()),
        std=float(acc.std()),
        min=float(acc.min()),
        max=float(acc.max()),
        worst_decile_mean=float(worst.mean()),
        jain_index=jain,
    )


def history_fairness(history: RunHistory, round_index: int = -1) -> FairnessReport:
    """Fairness report for one recorded round (default: the last)."""
    if not history.records:
        raise ValueError("history has no records")
    record = history.records[round_index]
    return fairness_report(record.client_accs)


__all__.append("history_fairness")
