"""DS-FL (Itahara et al., 2020): distillation FL with entropy reduction.

Same skeleton as FedMD (no server model, logit exchange on an unlabelled
public set), but the server sharpens the averaged client predictions with
Entropy Reduction Aggregation (ERA) before broadcasting, which counteracts
the flat, low-confidence consensus that non-IID clients produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.aggregation import entropy_reduction_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm

__all__ = ["DSFLConfig", "DSFL"]


@dataclass
class DSFLConfig:
    """Paper defaults: 10 local epochs, 20 distillation epochs, ERA T=0.1."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    digest: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=20, batch_size=32, lr=1e-3)
    )
    era_temperature: float = 0.1
    kd_weight: float = 1.0


class DSFL(FederatedAlgorithm):
    name = "dsfl"

    def __init__(
        self, federation: Federation, config: Optional[DSFLConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        self.config = config or DSFLConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        logits_list = []
        for client in participants:
            client.train_local(cfg.local)
            logits = client.logits_on(self.public_x)
            self.channel.upload(client.client_id, {"logits": logits})
            logits_list.append(logits)
        consensus = entropy_reduction_aggregate(
            logits_list, temperature=cfg.era_temperature
        )
        for client in participants:
            self.channel.download(client.client_id, {"consensus": consensus})
            client.train_public_distill(
                self.public_x,
                consensus,
                cfg.digest,
                kd_weight=cfg.kd_weight,
            )
        return {"participants": float(len(participants))}
