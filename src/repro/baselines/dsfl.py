"""DS-FL (Itahara et al., 2020): distillation FL with entropy reduction.

Same skeleton as FedMD (no server model, logit exchange on an unlabelled
public set), but the server sharpens the averaged client predictions with
Entropy Reduction Aggregation (ERA) before broadcasting, which counteracts
the flat, low-confidence consensus that non-IID clients produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.aggregation import entropy_reduction_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm
from ..runtime import PUBLIC_X

__all__ = ["DSFLConfig", "DSFL"]


@dataclass
class DSFLConfig:
    """Paper defaults: 10 local epochs, 20 distillation epochs, ERA T=0.1."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    digest: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=20, batch_size=32, lr=1e-3)
    )
    era_temperature: float = 0.1
    kd_weight: float = 1.0


class DSFL(FederatedAlgorithm):
    name = "dsfl"

    def __init__(
        self, federation: Federation, config: Optional[DSFLConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        self.config = config or DSFLConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        self.map_clients(
            participants, "train_local", {"config": cfg.local}, stage="local_train"
        )
        logits_list = self.map_clients(
            participants, "logits_on", {"x": PUBLIC_X}, stage="public_logits"
        )
        for client, logits in zip(participants, logits_list):
            self.channel.upload(client.client_id, {"logits": logits})
        consensus = entropy_reduction_aggregate(
            logits_list, temperature=cfg.era_temperature
        )
        for client in participants:
            self.channel.download(client.client_id, {"consensus": consensus})
        self.map_clients(
            participants,
            "train_public_distill",
            {
                "x_public": PUBLIC_X,
                "teacher_logits": consensus,
                "config": cfg.digest,
                "kd_weight": cfg.kd_weight,
            },
            stage="digest",
        )
        return {"participants": float(len(participants))}
