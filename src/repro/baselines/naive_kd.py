"""The plain KD-based FL method from the paper's motivation (Sec. II-B).

Clients train locally, upload logits on the public set, the server equal-
averages them (Eq. 3) and distils the average into the server model with no
prototypes, filtering, or quality weighting.  This is the "KD-based method"
of Fig. 1 and the reference point FedPKD improves on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.aggregation import equal_average_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm
from ..runtime import PUBLIC_X

__all__ = ["NaiveKDConfig", "NaiveKD"]


@dataclass
class NaiveKDConfig:
    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    server: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=20, batch_size=32, lr=1e-3)
    )
    public: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=5, batch_size=32, lr=1e-3)
    )
    kd_weight: float = 1.0
    distill_to_clients: bool = True


class NaiveKD(FederatedAlgorithm):
    name = "naive_kd"

    def __init__(
        self, federation: Federation, config: Optional[NaiveKDConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        if not federation.server.has_model:
            raise ValueError("NaiveKD distils into a server model; none was built")
        self.config = config or NaiveKDConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        self.map_clients(
            participants, "train_local", {"config": cfg.local}, stage="local_train"
        )
        logits_list = self.map_clients(
            participants, "logits_on", {"x": PUBLIC_X}, stage="public_logits"
        )
        for client, logits in zip(participants, logits_list):
            self.channel.upload(client.client_id, {"logits": logits})
        aggregated = equal_average_aggregate(logits_list)
        loss = self.server.train_distill(
            self.public_x, aggregated, cfg.server, kd_weight=cfg.kd_weight
        )
        if cfg.distill_to_clients:
            server_logits = self.server.logits_on(self.public_x)
            for client in participants:
                self.channel.download(
                    client.client_id, {"server_logits": server_logits}
                )
            self.map_clients(
                participants,
                "train_public_distill",
                {
                    "x_public": PUBLIC_X,
                    "teacher_logits": server_logits,
                    "config": cfg.public,
                    "kd_weight": cfg.kd_weight,
                },
                stage="public_train",
            )
        return {"participants": float(len(participants)), "server_loss": loss}
