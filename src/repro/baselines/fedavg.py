"""FedAvg (McMahan et al., 2017) — the classic parameter-averaging baseline.

Each round the server broadcasts the global weights, clients run local SGD
on private data, upload their weights, and the server replaces the global
model with the dataset-size-weighted average (Eq. 1).  Requires homogeneous
client/server architectures; the paper runs it with ResNet-20 everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm
from .model_averaging import weighted_average_states

__all__ = ["FedAvgConfig", "FedAvg"]


@dataclass
class FedAvgConfig:
    """Paper defaults: 10 local epochs, Adam, lr=1e-3, B=32."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )


class FedAvg(FederatedAlgorithm):
    name = "fedavg"

    def __init__(
        self, federation: Federation, config: Optional[FedAvgConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        if not federation.server.has_model:
            raise ValueError("FedAvg needs a server model to hold the global weights")
        self.config = config or FedAvgConfig()
        self._check_homogeneous()

    def _check_homogeneous(self) -> None:
        global_keys = set(self.server.model.state_dict())
        for client in self.clients:
            # lint: disable=comm-unmetered-exchange — construction-time
            # validation comparing key sets; no payload leaves the client.
            if set(client.model.state_dict()) != global_keys:
                raise ValueError(
                    "FedAvg requires identical architectures on every client "
                    "and the server"
                )

    def _local_training_kwargs(self, reference: Dict) -> Dict:
        """Hook overridden by FedProx to add the proximal term."""
        return {"config": self.config.local}

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        global_state = self.server.model.state_dict()
        for client in participants:
            self.channel.download(client.client_id, global_state)
            client.model.load_state_dict(global_state)
        self.map_clients(
            participants,
            "train_local",
            self._local_training_kwargs(global_state),
            stage="local_train",
        )
        states, sizes = [], []
        for client in participants:
            state = client.model.state_dict()
            self.channel.upload(client.client_id, state)
            states.append(state)
            sizes.append(client.num_samples)
        if states:
            averaged = weighted_average_states(states, sizes)
            self.server.model.load_state_dict(averaged)
        return {"participants": float(len(participants))}
