"""Weighted model-state averaging used by FedAvg/FedProx/FedDF (Eq. 1)."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["weighted_average_states"]


def weighted_average_states(
    states: Sequence[Dict[str, np.ndarray]], weights: Sequence[float]
) -> Dict[str, np.ndarray]:
    """Average state-dicts entry-wise with the given non-negative weights.

    Implements Eq. 1 when weights are the client dataset sizes.  All state
    dicts must share keys and shapes (homogeneous models).
    """
    if len(states) == 0:
        raise ValueError("no states to average")
    if len(states) != len(weights):
        raise ValueError("states and weights must align")
    weights = np.asarray(weights, dtype=np.float64)
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights sum to zero")
    normalized = weights / total

    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise KeyError("state dicts have mismatched keys; models not homogeneous")

    averaged: Dict[str, np.ndarray] = {}
    for key in keys:
        averaged[key] = sum(
            w * np.asarray(state[key], dtype=np.float64)
            for w, state in zip(normalized, states)
        )
    return averaged
