"""FedMD (Li & Wang, 2019): heterogeneous FL via logit consensus.

There is no server model.  Each round clients train locally, send their
logits on the public set, the server averages them into a consensus, and
every client *digests* the consensus by distilling toward it on the public
set before the next round's local (*revisit*) training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.aggregation import equal_average_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm

__all__ = ["FedMDConfig", "FedMD"]


@dataclass
class FedMDConfig:
    """Paper defaults: 10 local epochs, 20 digest epochs."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    digest: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=20, batch_size=32, lr=1e-3)
    )
    kd_weight: float = 1.0  # pure distillation toward the consensus
    temperature: float = 1.0


class FedMD(FederatedAlgorithm):
    name = "fedmd"

    def __init__(
        self, federation: Federation, config: Optional[FedMDConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        self.config = config or FedMDConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        logits_list = []
        for client in participants:
            client.train_local(cfg.local)
            logits = client.logits_on(self.public_x)
            self.channel.upload(client.client_id, {"logits": logits})
            logits_list.append(logits)
        consensus = equal_average_aggregate(logits_list)
        for client in participants:
            self.channel.download(client.client_id, {"consensus": consensus})
            client.train_public_distill(
                self.public_x,
                consensus,
                cfg.digest,
                kd_weight=cfg.kd_weight,
                temperature=cfg.temperature,
            )
        return {"participants": float(len(participants))}
