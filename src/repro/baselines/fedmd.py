"""FedMD (Li & Wang, 2019): heterogeneous FL via logit consensus.

There is no server model.  Each round clients train locally, send their
logits on the public set, the server averages them into a consensus, and
every client *digests* the consensus by distilling toward it on the public
set before the next round's local (*revisit*) training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


from ..core.aggregation import equal_average_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm
from ..runtime import PUBLIC_X

__all__ = ["FedMDConfig", "FedMD"]


@dataclass
class FedMDConfig:
    """Paper defaults: 10 local epochs, 20 digest epochs."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    digest: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=20, batch_size=32, lr=1e-3)
    )
    kd_weight: float = 1.0  # pure distillation toward the consensus
    temperature: float = 1.0


class FedMD(FederatedAlgorithm):
    name = "fedmd"

    def __init__(
        self, federation: Federation, config: Optional[FedMDConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        self.config = config or FedMDConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        self.map_clients(
            participants, "train_local", {"config": cfg.local}, stage="local_train"
        )
        logits_list = self.map_clients(
            participants, "logits_on", {"x": PUBLIC_X}, stage="public_logits"
        )
        for client, logits in zip(participants, logits_list):
            self.channel.upload(client.client_id, {"logits": logits})
        consensus = equal_average_aggregate(logits_list)
        for client in participants:
            self.channel.download(client.client_id, {"consensus": consensus})
        self.map_clients(
            participants,
            "train_public_distill",
            {
                "x_public": PUBLIC_X,
                "teacher_logits": consensus,
                "config": cfg.digest,
                "kd_weight": cfg.kd_weight,
                "temperature": cfg.temperature,
            },
            stage="digest",
        )
        return {"participants": float(len(participants))}
