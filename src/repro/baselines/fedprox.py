"""FedProx (Li et al., 2020): FedAvg plus a proximal term for heterogeneity.

Identical round structure to FedAvg; local training minimises
``CE + (mu/2) * ||w - w_global||^2``, damping client drift under non-IID
data and systems heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..fl.config import TrainingConfig
from ..fl.simulation import Federation
from .fedavg import FedAvg

__all__ = ["FedProxConfig", "FedProx"]


@dataclass
class FedProxConfig:
    """Paper defaults plus the standard mu=0.01 proximal coefficient."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    mu: float = 0.01

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ValueError(f"mu must be non-negative, got {self.mu}")


class FedProx(FedAvg):
    name = "fedprox"

    def __init__(
        self, federation: Federation, config: Optional[FedProxConfig] = None, seed: int = 0
    ) -> None:
        self.prox_config = config or FedProxConfig()
        super().__init__(federation, config=None, seed=seed)
        # FedAvg.__init__ set self.config to a FedAvgConfig; replace with ours
        # (both expose ``.local``, which is all FedAvg.run_round reads).
        self.config = self.prox_config

    def _local_training_kwargs(self, reference: Dict) -> Dict:
        return {
            "config": self.config.local,
            "prox_mu": self.prox_config.mu,
            "prox_reference": reference,
        }
