"""FedET (Cho et al., 2022): ensemble knowledge transfer to a large server.

Small heterogeneous client models train locally and upload their *weights*;
the server forms a weighted ensemble of their predictions on the public set
(confidence-weighted, like FedET's variance-based weighting) and distils it
into a larger server model.  The server's knowledge then flows back to the
clients as logits on the public set.

As the paper notes, FedET's communication overhead is dominated by the
model-parameter uploads; this implementation reproduces that accounting.
The server already holds each client's uploaded weights, so ensemble
evaluation reads the client models directly without extra transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.aggregation import variance_weighted_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm
from ..runtime import PUBLIC_X

__all__ = ["FedETConfig", "FedET"]


@dataclass
class FedETConfig:
    """Paper defaults for FedET: 10 local epochs, 10 server epochs."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    server: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    public: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=5, batch_size=32, lr=1e-3)
    )
    kd_weight: float = 0.5
    temperature: float = 1.0


class FedET(FederatedAlgorithm):
    name = "fedet"

    def __init__(
        self, federation: Federation, config: Optional[FedETConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        if not federation.server.has_model:
            raise ValueError("FedET requires a (large) server model")
        self.config = config or FedETConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        self.map_clients(
            participants, "train_local", {"config": cfg.local}, stage="local_train"
        )
        logits_list = self.map_clients(
            participants, "logits_on", {"x": PUBLIC_X}, stage="public_logits"
        )
        for client in participants:
            # FedET uploads model parameters (the expensive part).
            self.channel.upload(client.client_id, client.model.state_dict())
        ensemble = variance_weighted_aggregate(logits_list)
        pseudo = ensemble.argmax(axis=1)
        loss = self.server.train_distill(
            self.public_x,
            ensemble,
            cfg.server,
            kd_weight=cfg.kd_weight,
            pseudo_labels=pseudo,
            temperature=cfg.temperature,
        )
        server_logits = self.server.logits_on(self.public_x)
        for client in participants:
            self.channel.download(client.client_id, {"server_logits": server_logits})
        self.map_clients(
            participants,
            "train_public_distill",
            {
                "x_public": PUBLIC_X,
                "teacher_logits": server_logits,
                "config": cfg.public,
                "kd_weight": cfg.kd_weight,
                "temperature": cfg.temperature,
            },
            stage="public_train",
        )
        return {"participants": float(len(participants)), "server_loss": loss}
