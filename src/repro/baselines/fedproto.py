"""FedProto (Tan et al., 2021): federated prototype learning.

Discussed in the paper's related work: clients exchange **only prototypes**
— no model weights, no logits, no public dataset.  Each round clients train
locally with CE plus a regulariser pulling features toward the global
prototypes, upload their per-class prototypes, and the server aggregates
them (data-size weighted) and broadcasts the result.  There is no server
model, so only the personalised client metric applies; communication per
round is a few KB, the cheapest of all methods here.

FedPKD subsumes this prototype loop (its Eq. 16 matches FedProto's local
objective) and adds the logit/distillation pathway on top; having FedProto
as a baseline isolates what the prototypes alone contribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.prototypes import aggregate_prototypes, merge_prototypes, prototype_coverage
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm

__all__ = ["FedProtoConfig", "FedProto"]


@dataclass
class FedProtoConfig:
    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    # weight of the prototype regulariser in the local objective
    proto_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.proto_weight < 0:
            raise ValueError("proto_weight must be non-negative")


class FedProto(FederatedAlgorithm):
    name = "fedproto"

    def __init__(
        self, federation: Federation, config: Optional[FedProtoConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        self.config = config or FedProtoConfig()
        self.global_prototypes: Optional[np.ndarray] = None

    def extra_state(self) -> Dict[str, np.ndarray]:
        if self.global_prototypes is None:
            return {}
        return {"global_prototypes": np.asarray(self.global_prototypes)}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if "global_prototypes" in state:
            self.global_prototypes = np.asarray(state["global_prototypes"]).copy()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        use_protos = self.global_prototypes is not None and cfg.proto_weight > 0
        self.map_clients(
            participants,
            "train_local",
            {
                "config": cfg.local,
                "prototypes": self.global_prototypes if use_protos else None,
                "prototype_weight": cfg.proto_weight if use_protos else 0.0,
            },
            stage="local_train",
        )
        protos_list = self.map_clients(
            participants, "compute_prototypes", stage="prototypes"
        )
        counts_list = []
        for client, protos in zip(participants, protos_list):
            counts = client.class_counts()
            present = prototype_coverage(protos)
            self.channel.upload(
                client.client_id,
                {"prototypes": protos[present], "class_counts": counts},
            )
            counts_list.append(counts)
        new_protos = aggregate_prototypes(protos_list, counts_list)
        if self.tracer.enabled and self.global_prototypes is not None:
            # round-over-round movement of the global prototypes: mean L2
            # over the classes finite in both the old and new tables
            old, new = self.global_prototypes, new_protos
            both = prototype_coverage(old) & prototype_coverage(new)
            drift = (
                float(np.linalg.norm(new[both] - old[both], axis=1).mean())
                if both.any()
                else float("nan")
            )
            self.tracer.event(
                "fedproto/prototype_drift",
                scope="server",
                attrs={"drift_l2": drift, "classes_compared": int(both.sum())},
            )
        self.global_prototypes = merge_prototypes(new_protos, self.global_prototypes)
        covered = prototype_coverage(self.global_prototypes)
        payload = {"global_prototypes": self.global_prototypes[covered]}
        for client in participants:
            self.channel.download(client.client_id, payload)
        return {
            "participants": float(len(participants)),
            "proto_coverage": float(covered.mean()),
        }
