"""FedProto (Tan et al., 2021): federated prototype learning.

Discussed in the paper's related work: clients exchange **only prototypes**
— no model weights, no logits, no public dataset.  Each round clients train
locally with CE plus a regulariser pulling features toward the global
prototypes, upload their per-class prototypes, and the server aggregates
them (data-size weighted) and broadcasts the result.  There is no server
model, so only the personalised client metric applies; communication per
round is a few KB, the cheapest of all methods here.

FedPKD subsumes this prototype loop (its Eq. 16 matches FedProto's local
objective) and adds the logit/distillation pathway on top; having FedProto
as a baseline isolates what the prototypes alone contribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.prototypes import aggregate_prototypes, merge_prototypes, prototype_coverage
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm

__all__ = ["FedProtoConfig", "FedProto"]


@dataclass
class FedProtoConfig:
    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    # weight of the prototype regulariser in the local objective
    proto_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.proto_weight < 0:
            raise ValueError("proto_weight must be non-negative")


class FedProto(FederatedAlgorithm):
    name = "fedproto"

    def __init__(
        self, federation: Federation, config: Optional[FedProtoConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        self.config = config or FedProtoConfig()
        self.global_prototypes: Optional[np.ndarray] = None

    def extra_state(self) -> Dict[str, np.ndarray]:
        if self.global_prototypes is None:
            return {}
        return {"global_prototypes": np.asarray(self.global_prototypes)}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if "global_prototypes" in state:
            self.global_prototypes = np.asarray(state["global_prototypes"]).copy()

    # ------------------------------------------------------------------
    # round phases, shared between the sync round and the async protocol
    # ------------------------------------------------------------------
    def _local_phase(
        self, participants: List[FLClient], prototypes: Optional[np.ndarray]
    ) -> None:
        cfg = self.config
        use_protos = prototypes is not None and cfg.proto_weight > 0
        self.map_clients(
            participants,
            "train_local",
            {
                "config": cfg.local,
                "prototypes": prototypes if use_protos else None,
                "prototype_weight": cfg.proto_weight if use_protos else 0.0,
            },
            stage="local_train",
        )

    def _collect_prototypes(self, participants: List[FLClient]):
        protos_list = self.map_clients(
            participants, "compute_prototypes", stage="prototypes"
        )
        counts_list = []
        for client, protos in zip(participants, protos_list):
            counts = client.class_counts()
            present = prototype_coverage(protos)
            self.channel.upload(
                client.client_id,
                {"prototypes": protos[present], "class_counts": counts},
            )
            counts_list.append(counts)
        return protos_list, counts_list

    def _trace_drift(self, new_protos: np.ndarray) -> None:
        if not (self.tracer.enabled and self.global_prototypes is not None):
            return
        # round-over-round movement of the global prototypes: mean L2
        # over the classes finite in both the old and new tables
        old, new = self.global_prototypes, new_protos
        both = prototype_coverage(old) & prototype_coverage(new)
        drift = (
            float(np.linalg.norm(new[both] - old[both], axis=1).mean())
            if both.any()
            else float("nan")
        )
        self.tracer.event(
            "fedproto/prototype_drift",
            scope="server",
            attrs={"drift_l2": drift, "classes_compared": int(both.sum())},
        )

    def _merge_and_broadcast(
        self, new_protos: np.ndarray, participants: List[FLClient]
    ) -> np.ndarray:
        self._trace_drift(new_protos)
        self.global_prototypes = merge_prototypes(new_protos, self.global_prototypes)
        covered = prototype_coverage(self.global_prototypes)
        payload = {"global_prototypes": self.global_prototypes[covered]}
        for client in participants:
            self.channel.download(client.client_id, payload)
        return covered

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        self._local_phase(participants, self.global_prototypes)
        protos_list, counts_list = self._collect_prototypes(participants)
        new_protos = aggregate_prototypes(protos_list, counts_list)
        covered = self._merge_and_broadcast(new_protos, participants)
        return {
            "participants": float(len(participants)),
            "proto_coverage": float(covered.mean()),
        }

    # ------------------------------------------------------------------
    # async engine protocol (repro.fl.async_engine)
    #
    # The sync round above is the bit-identical reference: per-client
    # work (prototype-regularised local training + prototype uplink)
    # against a dispatch-time snapshot of the global prototypes, then a
    # buffered server update with per-contribution staleness discounts.
    # ``aggregate_prototypes`` short-circuits to the unweighted rule when
    # every weight is 1.0, so the degenerate async configuration replays
    # run_round's arithmetic exactly.
    # ------------------------------------------------------------------
    supports_async = True

    def async_dispatch_state(self) -> Dict[str, Optional[np.ndarray]]:
        """Server state a dispatch is computed against (frozen per version)."""
        protos = self.global_prototypes
        return {"global_prototypes": None if protos is None else protos.copy()}

    def async_client_work(
        self, participants: List[FLClient], snapshot: Dict
    ) -> Optional[Dict[str, np.ndarray]]:
        """One dispatched client's prototype contribution.

        ``participants`` is a single-client list the engine may shrink in
        place on a runtime dropout; returns ``None`` when the client
        dropped mid-work.
        """
        self._local_phase(participants, snapshot.get("global_prototypes"))
        protos_list, counts_list = self._collect_prototypes(participants)
        if not participants:
            return None
        return {"prototypes": protos_list[0], "class_counts": counts_list[0]}

    def async_server_update(
        self,
        contributions: List[Dict[str, np.ndarray]],
        client_weights: List[float],
        contributors: List[FLClient],
    ) -> Dict[str, float]:
        """Fold one buffer of contributions into the prototype table."""
        new_protos = aggregate_prototypes(
            [c["prototypes"] for c in contributions],
            [c["class_counts"] for c in contributions],
            client_weights=client_weights,
        )
        covered = self._merge_and_broadcast(new_protos, list(contributors))
        return {
            "participants": float(len(contributors)),
            "proto_coverage": float(covered.mean()),
        }
