"""Baseline FL algorithms the paper compares FedPKD against."""

from .dsfl import DSFL, DSFLConfig
from .fedavg import FedAvg, FedAvgConfig
from .feddf import FedDF, FedDFConfig
from .fedet import FedET, FedETConfig
from .fedmd import FedMD, FedMDConfig
from .fedproto import FedProto, FedProtoConfig
from .fedprox import FedProx, FedProxConfig
from .model_averaging import weighted_average_states
from .naive_kd import NaiveKD, NaiveKDConfig

__all__ = [
    "FedAvg",
    "FedAvgConfig",
    "FedProx",
    "FedProxConfig",
    "FedProto",
    "FedProtoConfig",
    "FedMD",
    "FedMDConfig",
    "DSFL",
    "DSFLConfig",
    "FedDF",
    "FedDFConfig",
    "FedET",
    "FedETConfig",
    "NaiveKD",
    "NaiveKDConfig",
    "weighted_average_states",
]
