"""FedDF (Lin et al., 2020): ensemble distillation for robust model fusion.

Round structure: broadcast global weights → clients train locally → upload
weights → server computes the FedAvg average **and** fine-tunes it by
distilling the client *ensemble*'s averaged predictions on the unlabelled
public set.  Because weights are exchanged, client and server architectures
must match (the paper runs ResNet-20 everywhere for FedDF).

The server already holds every client's weights after the upload, so it can
evaluate the ensemble on the public set without extra communication; in
this simulation it reads the (identical) weights straight from the client
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.aggregation import equal_average_aggregate
from ..fl.client import FLClient
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation
from ..runtime import PUBLIC_X
from .fedavg import FedAvg
from .model_averaging import weighted_average_states

__all__ = ["FedDFConfig", "FedDF"]


@dataclass
class FedDFConfig:
    """Paper defaults for FedDF: 30 local epochs, 5 server epochs."""

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=30, batch_size=32, lr=1e-3)
    )
    server: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=5, batch_size=32, lr=1e-3)
    )
    kd_weight: float = 1.0  # FedDF distils with pure KL on the public set
    temperature: float = 1.0


class FedDF(FedAvg):
    name = "feddf"

    def __init__(
        self, federation: Federation, config: Optional[FedDFConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, config=None, seed=seed)
        self.config = config or FedDFConfig()

    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        cfg = self.config
        global_state = self.server.model.state_dict()
        for client in participants:
            self.channel.download(client.client_id, global_state)
            client.model.load_state_dict(global_state)
        self.map_clients(
            participants, "train_local", {"config": cfg.local}, stage="local_train"
        )
        states, sizes = [], []
        for client in participants:
            state = client.model.state_dict()
            self.channel.upload(client.client_id, state)
            states.append(state)
            sizes.append(client.num_samples)
        if not states:
            return {"participants": 0.0, "server_loss": 0.0}
        # Fusion step 1: parameter averaging (initialisation of the fusion).
        averaged = weighted_average_states(states, sizes)
        self.server.model.load_state_dict(averaged)
        # Fusion step 2: ensemble distillation on the public set.  The
        # server evaluates each uploaded client model; no extra transfer.
        ensemble = equal_average_aggregate(
            self.map_clients(
                participants, "logits_on", {"x": PUBLIC_X}, stage="public_logits"
            )
        )
        with self.tracer.span(
            "server_distill",
            scope="server",
            attrs={"clients": len(participants), "epochs": cfg.server.epochs},
        ) as span:
            loss = self.server.train_distill(
                self.public_x,
                ensemble,
                cfg.server,
                kd_weight=cfg.kd_weight,
                temperature=cfg.temperature,
            )
            span.set_attr("loss", loss)
        self.tracer.event(
            "feddf/distill",
            scope="server",
            attrs={"loss": loss, "public_samples": len(self.public_x)},
        )
        if self.metrics.enabled:
            self.metrics.gauge("feddf/server_loss").set(loss)
        return {"participants": float(len(participants)), "server_loss": loss}
