"""Client-logit aggregation rules.

FedPKD's variance-weighted ensemble (Eqs. 6–7) plus the simpler rules the
benchmarks and ablations use: equal averaging (Eq. 3 / FedMD) and DS-FL's
entropy-reduction aggregation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "variance_weighted_aggregate",
    "variance_weights",
    "equal_average_aggregate",
    "entropy_reduction_aggregate",
    "entropy_weighted_aggregate",
    "logit_variances",
    "staleness_weights",
    "staleness_discounted_aggregate",
]


def _stack(client_logits: Sequence[np.ndarray]) -> np.ndarray:
    if len(client_logits) == 0:
        raise ValueError("no client logits to aggregate")
    stacked = np.stack([np.asarray(l, dtype=np.float64) for l in client_logits])
    if stacked.ndim != 3:
        raise ValueError("each client's logits must be (num_samples, num_classes)")
    return stacked


def logit_variances(client_logits: Sequence[np.ndarray]) -> np.ndarray:
    """Per-client, per-sample variance of the logit vector (Eq. 7 numerator).

    A confident model produces a peaked logit vector with high variance
    across classes; the paper uses that variance as the sample-level quality
    score.  Returns shape ``(num_clients, num_samples)``.
    """
    stacked = _stack(client_logits)
    return stacked.var(axis=2)


def variance_weights(client_logits: Sequence[np.ndarray]) -> np.ndarray:
    """The Eq. 7 mixing weights ``beta_c(x_i)``, shape ``(C, S)``.

    Each column sums to 1.  If every client has zero variance on a sample
    (degenerate), that column falls back to equal weights.  Exposed
    separately so observability can report the weight distribution without
    re-deriving the aggregation internals.
    """
    stacked = _stack(client_logits)
    variances = stacked.var(axis=2)  # (C, S)
    totals = variances.sum(axis=0, keepdims=True)  # (1, S)
    num_clients = stacked.shape[0]
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, variances / totals, 1.0 / num_clients)


def variance_weighted_aggregate(client_logits: Sequence[np.ndarray]) -> np.ndarray:
    """FedPKD's aggregation (Eq. 6): per-sample variance-weighted mean.

    Uses :func:`variance_weights` for the ``beta_c(x_i)`` mixing weights.
    """
    stacked = _stack(client_logits)
    return np.einsum("cs,csn->sn", variance_weights(client_logits), stacked)


def equal_average_aggregate(client_logits: Sequence[np.ndarray]) -> np.ndarray:
    """Plain mean of client logits (Eq. 3; FedMD-style consensus)."""
    return _stack(client_logits).mean(axis=0)


def entropy_weighted_aggregate(client_logits: Sequence[np.ndarray]) -> np.ndarray:
    """Extension (paper future work): confidence weights from prediction entropy.

    Like Eq. 6 but scoring each client's per-sample quality by the *negative
    entropy* of its softmax prediction instead of the raw logit variance —
    a scale-invariant confidence measure that is robust to clients whose
    logit magnitudes differ (e.g. heterogeneous architectures).
    """
    stacked = _stack(client_logits)
    shifted = stacked - stacked.max(axis=2, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=2, keepdims=True)
    entropy = -(probs * np.log(probs + 1e-12)).sum(axis=2)  # (C, S)
    max_entropy = np.log(stacked.shape[2])
    confidence = max_entropy - entropy  # >= 0, higher = more confident
    totals = confidence.sum(axis=0, keepdims=True)
    num_clients = stacked.shape[0]
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(totals > 0, confidence / totals, 1.0 / num_clients)
    return np.einsum("cs,csn->sn", weights, stacked)


def staleness_weights(
    staleness: Sequence[int], alpha: float = 0.5
) -> np.ndarray:
    """Per-client staleness discounts ``alpha ** s`` (buffered-async FL).

    ``staleness[i]`` is the number of server versions that elapsed between
    client ``i``'s dispatch and the aggregation consuming its contribution
    (0 = fresh).  ``alpha`` in ``(0, 1]`` controls how fast stale knowledge
    decays; ``alpha = 1`` ignores staleness entirely.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    staleness = np.asarray(staleness, dtype=np.int64)
    if (staleness < 0).any():
        raise ValueError("staleness values must be >= 0")
    return np.power(float(alpha), staleness.astype(np.float64))


def staleness_discounted_aggregate(
    client_logits: Sequence[np.ndarray],
    client_weights: Sequence[float],
    mode: str = "variance",
) -> np.ndarray:
    """Aggregate client logits with per-client staleness discounts.

    The base rule's per-sample mixing weights (Eq. 6/7 for ``"variance"``,
    uniform for ``"equal"``, negative-entropy confidence for ``"entropy"``)
    are scaled by each client's ``client_weights`` entry (typically
    :func:`staleness_weights`) and renormalised per sample, so a stale
    contribution is folded in with proportionally less influence instead
    of being discarded.

    When every weight equals 1.0 this delegates to the undiscounted rule
    and is **bit-identical** to it — the property the async engine's
    serial-reference equivalence relies on.
    """
    if mode not in ("variance", "equal", "entropy"):
        raise ValueError(f"unknown aggregation mode '{mode}'")
    weights = np.asarray(client_weights, dtype=np.float64)
    if len(weights) != len(client_logits):
        raise ValueError("client_weights must align with client_logits")
    if (weights < 0).any():
        raise ValueError("client_weights must be non-negative")
    if np.all(weights == 1.0):
        if mode == "variance":
            return variance_weighted_aggregate(client_logits)
        if mode == "entropy":
            return entropy_weighted_aggregate(client_logits)
        return equal_average_aggregate(client_logits)
    if not weights.any():
        raise ValueError("at least one client weight must be positive")
    stacked = _stack(client_logits)
    num_clients, num_samples = stacked.shape[0], stacked.shape[1]
    if mode == "variance":
        base = variance_weights(client_logits)  # (C, S)
    elif mode == "entropy":
        shifted = stacked - stacked.max(axis=2, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=2, keepdims=True)
        entropy = -(probs * np.log(probs + 1e-12)).sum(axis=2)
        confidence = np.log(stacked.shape[2]) - entropy
        totals = confidence.sum(axis=0, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            base = np.where(totals > 0, confidence / totals, 1.0 / num_clients)
    else:
        base = np.full(
            (num_clients, num_samples), 1.0 / num_clients, dtype=np.float64
        )
    mixed = base * weights[:, None]  # (C, S)
    totals = mixed.sum(axis=0, keepdims=True)  # (1, S)
    # a column can zero out when the only confident clients are weighted to
    # ~0; fall back to the pure staleness weights there
    fallback = np.broadcast_to(
        (weights / weights.sum())[:, None], mixed.shape
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        mixed = np.where(totals > 0, mixed / totals, fallback)
    return np.einsum("cs,csn->sn", mixed, stacked)


def entropy_reduction_aggregate(
    client_logits: Sequence[np.ndarray], temperature: float = 0.1
) -> np.ndarray:
    """DS-FL's ERA: average client *probabilities*, then sharpen them.

    The averaged distribution is re-normalised through a low-temperature
    softmax of its log, reducing its entropy; returns *log-probabilities*
    usable as logits.  ``temperature < 1`` sharpens (the DS-FL paper uses
    T=0.1).
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    stacked = _stack(client_logits)
    shifted = stacked - stacked.max(axis=2, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=2, keepdims=True)
    mean_probs = probs.mean(axis=0)
    logp = np.log(mean_probs + 1e-12) / temperature
    logp -= logp.max(axis=1, keepdims=True)
    sharpened = np.exp(logp)
    sharpened /= sharpened.sum(axis=1, keepdims=True)
    return np.log(sharpened + 1e-12)
