"""Prototype-based ensemble distillation for the server model (Eqs. 11–13).

The server optimises

.. math::

    F(\\omega_G) = \\delta\\,\\mathcal{L}_{kd} + (1 - \\delta)\\,\\mathcal{L}_p

where :math:`\\mathcal{L}_{kd}` combines KL against the aggregated client
logits with cross-entropy against the pseudo-labels (Eq. 11), and
:math:`\\mathcal{L}_p` pulls the server's feature vectors toward the global
prototypes of the pseudo-labels (Eq. 12).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fl.config import TrainingConfig
from ..fl.training import train_with_loss
from ..nn import losses as L
from ..nn.models import ClassifierModel
from ..nn.tensor import Tensor

__all__ = ["prototype_ensemble_distill"]


def prototype_ensemble_distill(
    model: ClassifierModel,
    x: np.ndarray,
    aggregated_logits: np.ndarray,
    pseudo_labels: np.ndarray,
    prototypes: Optional[np.ndarray],
    delta: float,
    config: TrainingConfig,
    rng: np.random.Generator,
    temperature: float = 1.0,
) -> float:
    """Train ``model`` on the filtered public subset with Eq. 13's objective.

    ``delta=1`` (or ``prototypes=None``) removes the prototype loss — the
    paper's "w/o Pro" ablation arm.  Returns the mean last-epoch loss.
    """
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"delta must be in [0, 1], got {delta}")
    pseudo_labels = np.asarray(pseudo_labels, dtype=np.int64)
    use_proto = prototypes is not None and delta < 1.0

    def loss_builder(m: ClassifierModel, batch) -> Tensor:
        xb, tb, yb = batch
        if use_proto:
            logits, feats = m.forward_with_features(Tensor(xb))
        else:
            logits = m(Tensor(xb))
        kd = L.kl_divergence(tb, logits, temperature=temperature) + L.cross_entropy(
            logits, yb
        )
        loss = delta * kd
        if use_proto:
            targets = prototypes[yb.astype(np.int64)]
            valid = ~np.isnan(targets).any(axis=1)
            if valid.any():
                diff = feats[np.flatnonzero(valid)] - Tensor(targets[valid])
                loss = loss + (1.0 - delta) * (diff**2).mean()
        return loss

    return train_with_loss(
        model, (x, aggregated_logits, pseudo_labels), loss_builder, config, rng
    )
