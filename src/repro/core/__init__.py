"""FedPKD core: the paper's primary contribution.

- :mod:`~repro.core.prototypes` — prototype computation/aggregation (Eqs. 5, 8)
- :mod:`~repro.core.aggregation` — logit aggregation rules (Eqs. 3, 6–7, ERA)
- :mod:`~repro.core.filtering` — prototype-based data filtering (Algorithm 1)
- :mod:`~repro.core.distillation` — prototype-based ensemble distillation (Eqs. 11–13)
- :mod:`~repro.core.fedpkd` — the full Algorithm 2 driver
"""

from .aggregation import (
    entropy_reduction_aggregate,
    entropy_weighted_aggregate,
    equal_average_aggregate,
    logit_variances,
    staleness_discounted_aggregate,
    staleness_weights,
    variance_weighted_aggregate,
)
from .distillation import prototype_ensemble_distill
from .fedpkd import FedPKD, FedPKDConfig
from .filtering import FilterResult, prototype_filter, random_filter
from .prototypes import (
    aggregate_prototypes,
    merge_prototypes,
    prototype_coverage,
    prototype_distances,
)

__all__ = [
    "FedPKD",
    "FedPKDConfig",
    "variance_weighted_aggregate",
    "equal_average_aggregate",
    "entropy_reduction_aggregate",
    "entropy_weighted_aggregate",
    "logit_variances",
    "staleness_weights",
    "staleness_discounted_aggregate",
    "aggregate_prototypes",
    "merge_prototypes",
    "prototype_coverage",
    "prototype_distances",
    "prototype_filter",
    "random_filter",
    "FilterResult",
    "prototype_ensemble_distill",
]
