"""Prototype-based data filtering (paper Algorithm 1, Eqs. 9–10).

The server pseudo-labels every public sample from the aggregated logits,
measures how far the sample's feature vector (under the *server* model's
representation layer) lies from the global prototype of its pseudo-label,
and keeps only the closest ``select_ratio`` fraction per class.  Samples
far from their prototype either carry wrong pseudo-labels or low-quality
knowledge; dropping them improves server training and shrinks the logits
the server later sends back to clients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .prototypes import prototype_coverage, prototype_distances

__all__ = ["FilterResult", "prototype_filter", "random_filter"]


@dataclass
class FilterResult:
    """Outcome of a filtering pass over the public dataset."""

    selected: np.ndarray  # indices into the public set, sorted ascending
    pseudo_labels: np.ndarray  # pseudo-labels of the *selected* samples
    distances: np.ndarray  # prototype distance of every public sample (NaN = no prototype)

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def prototype_filter(
    features: np.ndarray,
    aggregated_logits: np.ndarray,
    prototypes: np.ndarray,
    select_ratio: float,
) -> FilterResult:
    """Run Algorithm 1.

    Parameters
    ----------
    features:
        Server-model feature vectors of the public samples,
        shape ``(num_public, feature_dim)``.
    aggregated_logits:
        Aggregated client logits ``S(x_i)``, shape ``(num_public, num_classes)``;
        pseudo-labels are their argmax (Eq. 9).
    prototypes:
        Global prototypes ``(num_classes, feature_dim)``; NaN rows allowed.
    select_ratio:
        The paper's θ — fraction of each pseudo-class kept (closest first).
        Classes whose prototype is missing keep all their samples (there is
        no distance signal to rank them by).
    """
    if not 0.0 < select_ratio <= 1.0:
        raise ValueError(f"select_ratio must be in (0, 1], got {select_ratio}")
    if len(features) != len(aggregated_logits):
        raise ValueError("features and logits must cover the same samples")
    pseudo = aggregated_logits.argmax(axis=1).astype(np.int64)
    distances = prototype_distances(features, prototypes, pseudo)
    covered = prototype_coverage(prototypes)

    keep: list = []
    for cls in np.unique(pseudo):
        cls_idx = np.flatnonzero(pseudo == cls)
        if not covered[cls]:
            keep.append(cls_idx)
            continue
        n_keep = max(1, int(np.floor(select_ratio * len(cls_idx))))
        order = np.argsort(distances[cls_idx], kind="stable")
        keep.append(cls_idx[order[:n_keep]])
    selected = np.sort(np.concatenate(keep)) if keep else np.empty(0, dtype=np.int64)
    return FilterResult(
        selected=selected.astype(np.int64),
        pseudo_labels=pseudo[selected],
        distances=distances,
    )


def random_filter(
    num_samples: int,
    aggregated_logits: np.ndarray,
    select_ratio: float,
    rng: np.random.Generator,
) -> FilterResult:
    """Ablation comparator: keep a uniformly random ``select_ratio`` subset."""
    if not 0.0 < select_ratio <= 1.0:
        raise ValueError(f"select_ratio must be in (0, 1], got {select_ratio}")
    n_keep = max(1, int(np.floor(select_ratio * num_samples)))
    selected = np.sort(rng.choice(num_samples, size=n_keep, replace=False))
    pseudo = aggregated_logits.argmax(axis=1).astype(np.int64)
    return FilterResult(
        selected=selected.astype(np.int64),
        pseudo_labels=pseudo[selected],
        distances=np.full(num_samples, np.nan),
    )
