"""FedPKD — the paper's Algorithm 2, end to end.

One communication round:

1. **Client local training** — Eq. 4 in the first round; Eq. 16 (cross-
   entropy + ε·prototype MSE against last round's global prototypes) after.
2. **Dual knowledge transfer (uplink)** — each client sends its logits on
   the public set and its local per-class prototypes (plus class counts
   needed for the Eq. 8 weighting).
3. **Server aggregation** — variance-weighted logit ensemble (Eqs. 6–7),
   overlap-aware prototype aggregation (Eq. 8).
4. **Prototype-based data filtering** — Algorithm 1 keeps the θ fraction of
   each pseudo-class closest to its global prototype.
5. **Prototype-based ensemble distillation** — the server model trains on
   the filtered subset with δ·(KL+CE) + (1−δ)·prototype-MSE (Eqs. 11–13).
6. **Server knowledge transfer (downlink)** — server logits on the filtered
   subset, the subset's indices, and the global prototypes go to clients.
7. **Client public training** — Eq. 15: γ·KL + (1−γ)·CE against the server's
   pseudo-labels (Eq. 14) on the filtered subset.

Every transfer is metered through the federation's
:class:`~repro.fl.channel.CommChannel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..fl.client import FLClient
from ..fl.compression import roundtrip
from ..fl.config import TrainingConfig
from ..fl.simulation import Federation, FederatedAlgorithm
from ..runtime import PUBLIC_X
from .aggregation import (
    entropy_weighted_aggregate,
    equal_average_aggregate,
    staleness_discounted_aggregate,
    variance_weighted_aggregate,
    variance_weights,
)
from .distillation import prototype_ensemble_distill
from .filtering import FilterResult, prototype_filter, random_filter
from .prototypes import merge_prototypes, aggregate_prototypes, prototype_coverage

__all__ = ["FedPKDConfig", "FedPKD"]

# sentinel: "use the algorithm's current global prototypes" — distinct from
# an explicit None (no prototypes yet), which async dispatch snapshots need
# to be able to say
_CURRENT = object()


@dataclass
class FedPKDConfig:
    """Hyper-parameters of FedPKD (paper Sec. V-A defaults).

    The ablation switches map to Fig. 8's arms: ``server_prototype_loss``
    off reproduces *w/o Pro*; ``use_filtering`` off reproduces *w/o D.F.*.
    ``aggregation`` and ``filter_mode`` support the extra ablations in
    DESIGN.md.
    """

    local: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=15, batch_size=32, lr=1e-3)
    )
    public: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=10, batch_size=32, lr=1e-3)
    )
    server: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(epochs=40, batch_size=32, lr=1e-3)
    )
    select_ratio: float = 0.7  # θ
    delta: float = 0.5  # server loss mix (Eq. 13)
    epsilon: float = 0.5  # client prototype regulariser (Eq. 16)
    gamma: float = 0.5  # client public-training mix (Eq. 15)
    temperature: float = 1.0
    # "variance" (Eq. 6-7), "equal" (Eq. 3), or "entropy" (future-work
    # extension: scale-invariant confidence weighting)
    aggregation: str = "variance"
    use_filtering: bool = True
    filter_mode: str = "prototype"  # "prototype" (Alg. 1) or "random" (ablation)
    # Extension (paper future work): keep the full public set for the first
    # N rounds, while the server's feature space is still untrained, then
    # switch to θ-filtering.  0 reproduces the paper exactly.
    filter_warmup_rounds: int = 0
    server_prototype_loss: bool = True  # off = Fig. 8 "w/o Pro"
    client_prototype_loss: bool = True  # Eq. 16's ε term
    # Extension: lossy wire format for logits ("float32" = paper-exact,
    # "float16" or "int8" trade negligible accuracy for 2-4x less traffic).
    logit_compression: str = "float32"

    def __post_init__(self) -> None:
        if not 0.0 < self.select_ratio <= 1.0:
            raise ValueError(f"select_ratio must be in (0, 1], got {self.select_ratio}")
        for name in ("delta", "epsilon", "gamma"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.aggregation not in ("variance", "equal", "entropy"):
            raise ValueError(f"unknown aggregation '{self.aggregation}'")
        if self.filter_mode not in ("prototype", "random"):
            raise ValueError(f"unknown filter_mode '{self.filter_mode}'")
        if self.filter_warmup_rounds < 0:
            raise ValueError("filter_warmup_rounds must be >= 0")
        from ..fl.compression import SCHEMES

        if self.logit_compression not in SCHEMES:
            raise ValueError(
                f"unknown logit_compression '{self.logit_compression}'; "
                f"choose from {SCHEMES}"
            )


class FedPKD(FederatedAlgorithm):
    """Prototype-based knowledge distillation FL (the paper's contribution)."""

    name = "fedpkd"

    def __init__(
        self, federation: Federation, config: Optional[FedPKDConfig] = None, seed: int = 0
    ) -> None:
        super().__init__(federation, seed=seed)
        if not federation.server.has_model:
            raise ValueError("FedPKD requires a server model")
        self.config = config or FedPKDConfig()
        self.global_prototypes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # cross-round state (checkpointing)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        if self.global_prototypes is None:
            return {}
        return {"global_prototypes": np.asarray(self.global_prototypes)}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if "global_prototypes" in state:
            self.global_prototypes = np.asarray(state["global_prototypes"]).copy()

    # ------------------------------------------------------------------
    # round phases
    # ------------------------------------------------------------------
    def _client_local_phase(
        self, participants: List[FLClient], prototypes=_CURRENT
    ) -> None:
        cfg = self.config
        if prototypes is _CURRENT:
            prototypes = self.global_prototypes
        use_protos = (
            cfg.client_prototype_loss
            and prototypes is not None
            and cfg.epsilon > 0.0
        )
        self.map_clients(
            participants,
            "train_local",
            {
                "config": cfg.local,
                "prototypes": prototypes if use_protos else None,
                "prototype_weight": cfg.epsilon if use_protos else 0.0,
            },
            stage="local_train",
        )

    def _collect_dual_knowledge(self, participants: List[FLClient]):
        """Uplink: logits on the public set + prototypes + class counts."""
        knowledge = self.map_clients(
            participants,
            "public_knowledge",
            {"x": PUBLIC_X},
            stage="public_knowledge",
        )
        logits_list, protos_list, counts_list = [], [], []
        for client, bundle in zip(participants, knowledge):
            # the server sees the (possibly lossy) wire version
            logits, wire_logits = roundtrip(
                bundle["logits"], self.config.logit_compression
            )
            protos = bundle["prototypes"]
            counts = bundle["class_counts"]
            present = prototype_coverage(protos)
            self.channel.upload(
                client.client_id,
                {
                    "logits": wire_logits,
                    "prototypes": protos[present],
                    "class_counts": counts,
                },
            )
            logits_list.append(logits)
            protos_list.append(protos)
            counts_list.append(counts)
        return logits_list, protos_list, counts_list

    def _aggregate(
        self, logits_list, protos_list, counts_list, client_weights=None
    ) -> np.ndarray:
        cfg = self.config
        if client_weights is not None:
            # async staleness discounts (alpha ** s); delegates to the exact
            # undiscounted rule below when every weight is 1.0
            aggregated = staleness_discounted_aggregate(
                logits_list, client_weights, mode=cfg.aggregation
            )
        elif cfg.aggregation == "variance":
            aggregated = variance_weighted_aggregate(logits_list)
        elif cfg.aggregation == "entropy":
            aggregated = entropy_weighted_aggregate(logits_list)
        else:
            aggregated = equal_average_aggregate(logits_list)
        new_protos = aggregate_prototypes(
            protos_list, counts_list, client_weights=client_weights
        )
        self.global_prototypes = merge_prototypes(new_protos, self.global_prototypes)
        if self.tracer.enabled:
            attrs = {"mode": cfg.aggregation, "clients": len(logits_list)}
            if cfg.aggregation == "variance":
                # how contested the ensemble is: spread of the Eq. 7 mixing
                # weights across clients, summarised per pseudo-class
                weights = variance_weights(logits_list)  # (C, S)
                per_sample_var = weights.var(axis=0)  # (S,)
                pseudo = aggregated.argmax(axis=1)
                attrs["mean_weight_var"] = float(per_sample_var.mean())
                attrs["per_class_weight_var"] = [
                    float(per_sample_var[pseudo == k].mean())
                    if bool((pseudo == k).any())
                    else float("nan")
                    for k in range(aggregated.shape[1])
                ]
            self.tracer.event("fedpkd/aggregate", scope="server", attrs=attrs)
        return aggregated

    def _filter(self, aggregated: np.ndarray) -> FilterResult:
        cfg = self.config
        num_public = len(self.public_x)
        in_warmup = self.round_index < cfg.filter_warmup_rounds
        if not cfg.use_filtering or in_warmup:
            pseudo = aggregated.argmax(axis=1).astype(np.int64)
            result = FilterResult(
                selected=np.arange(num_public, dtype=np.int64),
                pseudo_labels=pseudo,
                distances=np.full(num_public, np.nan),
            )
            mode = "none"
        elif cfg.filter_mode == "random":
            result = random_filter(num_public, aggregated, cfg.select_ratio, self.rng)
            mode = "random"
        else:
            features = self.server.model.extract_features(self.public_x)
            result = prototype_filter(
                features, aggregated, self.global_prototypes, cfg.select_ratio
            )
            mode = "prototype"
        self._publish_filter(result, num_public, mode, in_warmup)
        return result

    def _publish_filter(
        self, result: FilterResult, num_public: int, mode: str, in_warmup: bool
    ) -> None:
        """Trace/meter one Algorithm-1 pass (no-op when obs is disabled)."""
        if not self.obs.enabled:
            return
        accepted = int(result.num_selected)
        rejected = num_public - accepted
        self.tracer.event(
            "fedpkd/filter",
            scope="server",
            attrs={
                "mode": mode,
                "warmup": in_warmup,
                "accepted": accepted,
                "rejected": rejected,
                "num_public": num_public,
            },
        )
        if self.metrics.enabled:
            self.metrics.counter("fedpkd/filter_accepted").inc(accepted)
            self.metrics.counter("fedpkd/filter_rejected").inc(rejected)

    def _server_phase(
        self, aggregated: np.ndarray, result: FilterResult
    ) -> float:
        cfg = self.config
        prototypes = self.global_prototypes if cfg.server_prototype_loss else None
        with self.obs.profile_stage("server_distill"), self.obs.profile_model(
            "server"
        ), self.tracer.span(
            "server_distill",
            scope="server",
            attrs={
                "num_selected": int(result.num_selected),
                "epochs": cfg.server.epochs,
            },
        ) as span:
            loss = prototype_ensemble_distill(
                self.server.model,
                self.public_x[result.selected],
                aggregated[result.selected],
                result.pseudo_labels,
                prototypes,
                cfg.delta,
                cfg.server,
                self.server.rng,
                temperature=cfg.temperature,
            )
            span.set_attr("loss", loss)
        if self.metrics.enabled:
            self.metrics.gauge("fedpkd/server_loss").set(loss)
        return loss

    def _client_public_phase(
        self, participants: List[FLClient], result: FilterResult
    ) -> None:
        cfg = self.config
        x_subset = self.public_x[result.selected]
        server_logits = self.server.model.predict_logits(x_subset)
        # clients receive the (possibly lossy) wire version
        server_logits, wire_logits = roundtrip(server_logits, cfg.logit_compression)
        covered = prototype_coverage(self.global_prototypes)
        payload = {
            "server_logits": wire_logits,
            "selected_indices": result.selected.astype(np.float32),
            "global_prototypes": self.global_prototypes[covered],
        }
        pseudo = server_logits.argmax(axis=1)  # Eq. 14
        for client in participants:
            self.channel.download(client.client_id, payload)
        self.map_clients(
            participants,
            "train_public_distill",
            {
                "x_public": x_subset,
                "teacher_logits": server_logits,
                "config": cfg.public,
                "kd_weight": cfg.gamma,
                "pseudo_labels": pseudo,
                "temperature": cfg.temperature,
            },
            stage="public_train",
        )

    # ------------------------------------------------------------------
    # the round
    # ------------------------------------------------------------------
    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        self._client_local_phase(participants)
        logits_list, protos_list, counts_list = self._collect_dual_knowledge(
            participants
        )
        aggregated = self._aggregate(logits_list, protos_list, counts_list)
        result = self._filter(aggregated)
        server_loss = self._server_phase(aggregated, result)
        self._client_public_phase(participants, result)
        return {
            "server_loss": server_loss,
            "num_selected": float(result.num_selected),
            "proto_coverage": float(prototype_coverage(self.global_prototypes).mean()),
        }

    # ------------------------------------------------------------------
    # async engine protocol (repro.fl.async_engine)
    #
    # The sync round above is the bit-identical reference: per-client work
    # (local training + dual-knowledge uplink) against a dispatch-time
    # server snapshot, then a buffered server update with per-contribution
    # staleness discounts.  With zero delays, a full buffer and all-ones
    # weights the async engine replays exactly the sequence of operations
    # run_round performs.
    # ------------------------------------------------------------------
    supports_async = True

    def async_dispatch_state(self) -> Dict[str, Optional[np.ndarray]]:
        """Server state a dispatch is computed against (frozen per version)."""
        protos = self.global_prototypes
        return {
            "global_prototypes": None if protos is None else protos.copy()
        }

    def async_client_work(
        self, participants: List[FLClient], snapshot: Dict
    ) -> Optional[Dict[str, np.ndarray]]:
        """One dispatched client's uplink contribution (lazy, at event pop).

        ``participants`` is a single-client list the engine may shrink in
        place on a runtime dropout, mirroring :meth:`run_round`'s phases;
        returns ``None`` when the client dropped mid-work.
        """
        self._client_local_phase(
            participants, prototypes=snapshot.get("global_prototypes")
        )
        logits_list, protos_list, counts_list = self._collect_dual_knowledge(
            participants
        )
        if not participants:
            return None
        return {
            "logits": logits_list[0],
            "prototypes": protos_list[0],
            "class_counts": counts_list[0],
        }

    def async_server_update(
        self,
        contributions: List[Dict[str, np.ndarray]],
        client_weights: List[float],
        contributors: List[FLClient],
    ) -> Dict[str, float]:
        """Fold one buffer of contributions into the server (one round)."""
        aggregated = self._aggregate(
            [c["logits"] for c in contributions],
            [c["prototypes"] for c in contributions],
            [c["class_counts"] for c in contributions],
            client_weights=client_weights,
        )
        result = self._filter(aggregated)
        server_loss = self._server_phase(aggregated, result)
        self._client_public_phase(list(contributors), result)
        return {
            "server_loss": server_loss,
            "num_selected": float(result.num_selected),
            "proto_coverage": float(prototype_coverage(self.global_prototypes).mean()),
        }
