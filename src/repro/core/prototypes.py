"""Prototype computation and aggregation (paper Eqs. 5 and 8).

A prototype is the mean feature-space representation of one class.  Clients
compute local prototypes over their private data
(:meth:`repro.fl.FLClient.compute_prototypes`); the server merges the
overlapping per-class prototypes from all clients into global prototypes.

Prototype matrices are dense ``(num_classes, feature_dim)`` arrays with NaN
rows marking classes a client (or the federation) has no data for.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "aggregate_prototypes",
    "prototype_coverage",
    "merge_prototypes",
    "prototype_distances",
]


def aggregate_prototypes(
    client_prototypes: Sequence[np.ndarray],
    client_class_counts: Sequence[np.ndarray],
    paper_literal: bool = False,
    client_weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Aggregate per-client prototypes into global prototypes (Eq. 8).

    For each class ``j``, the clients holding samples of ``j`` contribute
    their local prototype weighted by their sample count ``|D_c^j|``.

    Eq. 8 as printed divides the weighted mean by ``|C_j|`` a second time,
    which would shrink prototypes toward the origin as more clients share a
    class; we read that as a typo and default to the plain data-weighted
    mean.  Set ``paper_literal=True`` to follow the printed formula exactly.

    Parameters
    ----------
    client_prototypes:
        One ``(num_classes, feature_dim)`` array per client; NaN rows for
        absent classes.
    client_class_counts:
        One ``(num_classes,)`` integer array per client.
    client_weights:
        Optional per-client discount (the async engine's staleness weights
        ``alpha ** s``): a client's effective sample count becomes
        ``weight * |D_c^j|``, so stale prototype contributions are folded
        in with less influence.  A weight of exactly 0 excludes the client.
        ``None`` (and all-ones) reproduce the unweighted rule bit-for-bit.
    """
    if len(client_prototypes) == 0:
        raise ValueError("no client prototypes to aggregate")
    if len(client_prototypes) != len(client_class_counts):
        raise ValueError("prototypes and counts must align per client")
    if client_weights is None:
        weights = [1.0] * len(client_prototypes)
    else:
        weights = [float(w) for w in client_weights]
        if len(weights) != len(client_prototypes):
            raise ValueError("client_weights must align per client")
        if any(w < 0 for w in weights):
            raise ValueError("client_weights must be non-negative")
    num_classes, feature_dim = client_prototypes[0].shape
    # the prototype table is wire payload: float32 throughout (WIRE_DTYPE)
    global_protos = np.full((num_classes, feature_dim), np.nan, dtype=np.float32)
    for cls in range(num_classes):
        # accumulate in float64 for numerical headroom; the table row
        # downcasts on assignment
        weighted = np.zeros(feature_dim, dtype=np.float64)
        total_count = 0.0
        contributors = 0
        for protos, counts, w in zip(
            client_prototypes, client_class_counts, weights
        ):
            count = float(counts[cls])
            if w == 0.0 or count <= 0 or np.isnan(protos[cls]).any():
                continue
            if w != 1.0:
                count *= w
            weighted += count * protos[cls]
            total_count += count
            contributors += 1
        if contributors == 0:
            continue
        mean = weighted / total_count
        if paper_literal:
            mean = mean / contributors
        global_protos[cls] = mean
    return global_protos


def prototype_coverage(prototypes: np.ndarray) -> np.ndarray:
    """Boolean mask of classes that have a (non-NaN) prototype."""
    return ~np.isnan(prototypes).any(axis=1)


def merge_prototypes(
    primary: np.ndarray, fallback: Optional[np.ndarray]
) -> np.ndarray:
    """Fill NaN rows of ``primary`` from ``fallback`` (e.g. last round's).

    Keeps global prototypes usable when a round's participants jointly miss
    some class (partial participation / failure injection).
    """
    if fallback is None:
        return primary
    merged = primary.copy()
    missing = ~prototype_coverage(primary)
    merged[missing] = fallback[missing]
    return merged


def prototype_distances(features: np.ndarray, prototypes: np.ndarray,
                        labels: np.ndarray) -> np.ndarray:
    """L2 distance of each feature vector to its label's prototype (Eq. 10).

    Distances for labels without a prototype come back as NaN.
    """
    labels = np.asarray(labels, dtype=np.int64)
    targets = prototypes[labels]
    return np.linalg.norm(features - targets, axis=1)
