"""Persistent run registry: append-only JSONL under ``results/registry/``.

Two files:

``runs.jsonl``
    One record per *executed* run (completed, resumed, or failed): run key,
    sweep name, resolved config, artifact paths, summary metrics.  Cached
    hits do **not** re-append — resubmitting an identical grid leaves
    ``runs.jsonl`` untouched.  The latest record per key wins on load, so a
    failed run that later succeeds is superseded in place.

``sweeps.jsonl``
    One record per sweep invocation: spec name + hash, the ordered run
    keys, and outcome counts.  This is the audit trail of grid
    submissions, including fully-cached ones.

Both files are plain line-oriented JSON — greppable, diffable, and
consumed by ``repro results --registry`` for cross-sweep comparison.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["RunRegistry", "RegistryError", "parse_where"]

_RUNS = "runs.jsonl"
_SWEEPS = "sweeps.jsonl"


class RegistryError(ValueError):
    """A registry file is unreadable or a record is malformed."""


def _append_jsonl(path: str, record: Dict[str, Any]) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as f:
        f.write(line + "\n")
        f.flush()


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise RegistryError(f"{path}:{lineno}: not valid JSON: {exc}")
            if not isinstance(record, dict):
                raise RegistryError(f"{path}:{lineno}: record must be an object")
            records.append(record)
    return records


class RunRegistry:
    """Append-only registry of runs and sweep submissions."""

    def __init__(self, root: str) -> None:
        self.root = root

    @property
    def runs_path(self) -> str:
        return os.path.join(self.root, _RUNS)

    @property
    def sweeps_path(self) -> str:
        return os.path.join(self.root, _SWEEPS)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record_run(self, record: Dict[str, Any]) -> None:
        """Append one run record (must carry ``run_key`` and ``status``)."""
        for required in ("run_key", "status"):
            if required not in record:
                raise RegistryError(f"run record is missing '{required}'")
        _append_jsonl(self.runs_path, record)

    def record_sweep(self, record: Dict[str, Any]) -> None:
        """Append one sweep-submission record (must carry ``name``)."""
        if "name" not in record:
            raise RegistryError("sweep record is missing 'name'")
        _append_jsonl(self.sweeps_path, record)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def runs(self) -> Dict[str, Dict[str, Any]]:
        """Latest record per run key, in first-seen key order."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in _read_jsonl(self.runs_path):
            latest[record["run_key"]] = record
        return latest

    def sweeps(self) -> List[Dict[str, Any]]:
        return _read_jsonl(self.sweeps_path)

    def get(self, run_key: str) -> Optional[Dict[str, Any]]:
        return self.runs().get(run_key)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, where: Optional[Dict[str, str]] = None) -> List[Dict[str, Any]]:
        """Filter run records by stringified field equality.

        ``where`` maps field names to expected values; fields are looked
        up first on the record, then inside its ``config.setting`` and
        ``config.overrides`` sub-objects, so ``{"algorithm": "fedpkd",
        "partition": "dir0.5", "seed": "0"}`` all work.  Values compare as
        strings (the CLI passes everything as text).
        """
        records = list(self.runs().values())
        if not where:
            return records

        def lookup(record: Dict[str, Any], field: str) -> Any:
            if field in record:
                return record[field]
            config = record.get("config") or {}
            setting = config.get("setting") or {}
            if field in setting:
                return setting[field]
            overrides = config.get("overrides") or {}
            if field in overrides:
                return overrides[field]
            if field in config:
                return config[field]
            return None

        matched = []
        for record in records:
            if all(
                _as_text(lookup(record, field)) == str(value)
                for field, value in where.items()
            ):
                matched.append(record)
        return matched


def _as_text(value: Any) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    return str(value)


def parse_where(pairs: Iterable[str]) -> Dict[str, str]:
    """Parse CLI ``field=value`` filters into a query dict."""
    where: Dict[str, str] = {}
    for pair in pairs:
        field, sep, value = pair.partition("=")
        if not sep or not field:
            raise RegistryError(
                f"--where expects field=value, got '{pair}'"
            )
        where[field] = value
    return where
