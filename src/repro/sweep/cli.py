"""The ``repro sweep`` subcommand: grid submission from the command line.

::

    python -m repro sweep grid.json --out-root results
    python -m repro sweep grid.json --dry-run
    python -m repro sweep grid.json --run-workers 4 --run-timeout-s 900 --trace

Exit codes: ``0`` every run completed/cached, ``1`` some runs failed,
``2`` the spec is malformed.
"""

from __future__ import annotations

import argparse
import sys

from .progress import SweepProgress
from .scheduler import SweepScheduler
from .spec import SweepSpec, SweepSpecError

__all__ = ["add_sweep_parser", "cmd_sweep"]


def add_sweep_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "sweep",
        help="expand a grid spec into runs, dedup against the cache, execute",
    )
    parser.add_argument("spec", help="JSON sweep spec (see docs/SWEEP.md)")
    parser.add_argument(
        "--out-root",
        default="results",
        metavar="DIR",
        help="root for cache/ and registry/ (default: results)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded run queue (key, label, cache state) and exit",
    )
    parser.add_argument(
        "--run-workers",
        type=int,
        default=1,
        metavar="N",
        help="concurrent runs (1 = inline in queue order, the default)",
    )
    parser.add_argument(
        "--run-timeout-s",
        type=float,
        default=None,
        help="per-run wall-clock budget (with --run-workers > 1)",
    )
    parser.add_argument(
        "--run-retries",
        type=int,
        default=1,
        help="extra attempts after a per-run timeout or worker death",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="exact-resume autosave cadence inside each run (default 1)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="write a per-run obs trace + metrics export into the cache",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "parallel"),
        default=None,
        help="client-execution runtime for every run (overrides the spec)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker processes per run for --executor parallel",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    return parser


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = SweepSpec.from_file(args.spec)
    except SweepSpecError as exc:
        print(f"sweep spec error: {exc}", file=sys.stderr)
        return 2

    runtime_overrides = {}
    if args.executor:
        runtime_overrides["executor"] = args.executor
    if args.max_workers is not None:
        runtime_overrides["max_workers"] = args.max_workers

    progress = SweepProgress(0, enabled=not args.quiet)
    scheduler = SweepScheduler(
        spec,
        out_root=args.out_root,
        run_workers=args.run_workers,
        run_timeout_s=args.run_timeout_s,
        run_retries=args.run_retries,
        checkpoint_every=args.checkpoint_every,
        trace=args.trace,
        runtime_overrides=runtime_overrides,
        progress=progress,
    )

    try:
        queue = scheduler.queue()
    except SweepSpecError as exc:
        print(f"sweep spec error: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        print(f"sweep '{spec.name}': {len(queue)} runs")
        for run in queue:
            key = run.run_key()
            if scheduler.cache.has_history(key):
                state = "cached"
            elif scheduler.cache.has_checkpoint(key):
                state = "resumable"
            else:
                state = "queued"
            print(f"  {key[:12]}  {state:9}  {run.label()}")
        return 0

    result = scheduler.run()

    counts = result.counts()
    print(
        f"sweep '{result.name}': {counts['completed']} completed, "
        f"{counts['resumed']} resumed, {counts['cached']} cached, "
        f"{counts['failed']} failed "
        f"(registry: {scheduler.registry.runs_path})"
    )
    for outcome in result.outcomes:
        if outcome.status == "failed":
            print(f"  FAILED {outcome.run_key[:12]} {outcome.label}: {outcome.error}")
    return 0 if result.ok else 1
