"""Live sweep progress: run states plus round counts from obs traces.

The scheduler reports state transitions (queued → running → completed /
failed / cached / resumed) and the tracker renders one line per event::

    [2/8] run 3f9ab2c1 fedpkd/cifar10/dir0.5/s0 completed (3 rounds, S_acc=0.612)

While runs execute on pool workers, the scheduler polls
:func:`rounds_completed` over each running run's trace file (when per-run
tracing is enabled) and reports per-run round counts mid-flight — the
trace is append-only JSONL, so tailing it from another process is safe at
any moment, including mid-write (a torn final line is simply skipped).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Optional

__all__ = ["SweepProgress", "rounds_completed"]

#: Ordered display states.
STATES = ("queued", "running", "completed", "resumed", "failed", "cached")

_FINAL = ("completed", "resumed", "failed", "cached")


def rounds_completed(trace_path: str) -> Optional[int]:
    """Count completed round spans in a (possibly still growing) trace.

    Returns ``None`` when the file is missing; a torn or non-JSON line —
    normal while the writing process is mid-record — ends the scan.
    """
    try:
        f = open(trace_path, "r", encoding="utf-8")
    except OSError:
        return None
    rounds = 0
    with f:
        for raw in f:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                break
            if record.get("type") == "span" and record.get("name") == "round":
                rounds += 1
    return rounds


class SweepProgress:
    """Counts run states and streams one line per transition."""

    def __init__(self, total: int, stream=None, enabled: bool = True) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.states: Dict[str, str] = {}
        self._last_rounds: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def transition(self, key: str, label: str, state: str, detail: str = "") -> None:
        if state not in STATES:
            raise ValueError(f"unknown progress state '{state}'")
        self.states[key] = state
        suffix = f" ({detail})" if detail else ""
        self._emit(f"[{self.finished}/{self.total}] run {key[:8]} {label} {state}{suffix}")

    def running_rounds(self, key: str, label: str, rounds: int, total_rounds) -> None:
        """Report a mid-flight round count (deduplicated per run)."""
        if self._last_rounds.get(key) == rounds:
            return
        self._last_rounds[key] = rounds
        of = f"/{total_rounds}" if total_rounds else ""
        self._emit(
            f"[{self.finished}/{self.total}] run {key[:8]} {label} "
            f"round {rounds}{of}"
        )

    def note(self, message: str) -> None:
        self._emit(message)

    # ------------------------------------------------------------------
    # tallies
    # ------------------------------------------------------------------
    def count(self, state: str) -> int:
        return sum(1 for s in self.states.values() if s == state)

    @property
    def finished(self) -> int:
        return sum(1 for s in self.states.values() if s in _FINAL)

    def summary(self) -> str:
        parts = [
            f"{self.count(state)} {state}"
            for state in ("completed", "resumed", "cached", "failed")
            if self.count(state)
        ]
        body = ", ".join(parts) if parts else "nothing to do"
        return f"sweep finished: {body} ({self.finished}/{self.total} runs)"

    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        if self.enabled:
            print(line, file=self.stream, flush=True)
