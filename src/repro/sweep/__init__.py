"""Multi-run orchestration: grid sweeps, result caching, a run registry.

The experiment layer runs *one* configuration per process; the paper's
evidence is a grid (algorithms × datasets × heterogeneity × seeds ×
hyper-parameters).  This package turns the repo into a system that
absorbs that experiment traffic:

- :mod:`repro.sweep.spec` — declarative grid specs expanded into a
  deterministic, stably-ordered run queue, each run addressed by a
  content-hash **run key**;
- :mod:`repro.sweep.scheduler` — executes the queue inline or across a
  process pool with per-run timeout/retry and failure isolation, reusing
  the exact-resume checkpoints to resume interrupted runs;
- :mod:`repro.sweep.cache` — checkpoint-keyed result cache: resubmitting
  an overlapping grid performs zero work for completed cells;
- :mod:`repro.sweep.registry` — append-only JSONL run/sweep registry
  consumed by ``repro results --registry`` for cross-sweep comparison;
- :mod:`repro.sweep.progress` — live progress (runs done/failed/cached,
  per-run round counts streamed from :mod:`repro.obs` traces).

See ``docs/SWEEP.md`` for the spec format and cache semantics.
"""

from .cache import ResultCache
from .progress import SweepProgress, rounds_completed
from .registry import RegistryError, RunRegistry, parse_where
from .scheduler import RunOutcome, SweepResult, SweepScheduler, execute_run
from .spec import RUN_KEY_VERSION, RunSpec, SweepSpec, SweepSpecError

__all__ = [
    "RUN_KEY_VERSION",
    "SweepSpec",
    "SweepSpecError",
    "RunSpec",
    "ResultCache",
    "RunRegistry",
    "RegistryError",
    "parse_where",
    "SweepScheduler",
    "SweepResult",
    "RunOutcome",
    "execute_run",
    "SweepProgress",
    "rounds_completed",
]
