"""The sweep scheduler: shard a run queue, isolate failures, dedup work.

Execution model
---------------
:meth:`SweepScheduler.run` expands the spec into its deterministic queue,
skips every run whose history is already in the :class:`ResultCache`
(**cache hit** — zero training work), resumes runs that left an
exact-resume checkpoint behind, and executes the rest either inline
(``run_workers=1``, the deterministic default) or across a process pool
(``run_workers>1``), mirroring the fault-tolerance contract of
:mod:`repro.runtime`: a per-run timeout with bounded retries for
infrastructure failures (worker death, hung run), while a deterministic
exception inside a run is recorded as a **failed** run — its siblings
complete and the sweep goes on.

Each run executes through the ordinary
:func:`repro.experiments.harness.run_algorithm` path with checkpoint
autosave pointed into the cache, so a run launched by the scheduler is
bit-identical to the same configuration launched via ``repro run``; the
per-run client stages themselves go through whatever
:mod:`repro.runtime` executor the run's setting asks for.

The driver process is the only writer of the cache and the registry, so
sweep-level parallelism never races on artifacts.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..fl.metrics import RunHistory
from .cache import ResultCache
from .progress import SweepProgress, rounds_completed
from .registry import RunRegistry
from .spec import RunSpec, SweepSpec

__all__ = ["RunOutcome", "SweepResult", "SweepScheduler", "execute_run"]

#: Seconds between progress polls while waiting on pool workers.
_POLL_S = 0.5


def _finite(value: Optional[float]) -> Optional[float]:
    """NaN → None so registry lines stay strict JSON (no bare ``NaN``)."""
    if value is None or value != value:
        return None
    return float(value)


# ----------------------------------------------------------------------
# run execution (driver-side inline, or inside a pool worker)
# ----------------------------------------------------------------------
def execute_run(payload: Dict[str, Any]) -> RunHistory:
    """Execute one queued run and return its history.

    ``payload`` carries the :class:`RunSpec` fields plus the artifact
    paths the cache assigned.  If the checkpoint file already exists the
    run *resumes* — only the remaining rounds train, and the finished
    history is bit-identical to an uninterrupted run.
    """
    import os

    from ..experiments.harness import run_algorithm

    run = RunSpec(**payload["run"])
    setting = run.to_setting(**payload["artifacts"])
    resume = bool(setting.checkpoint_path) and os.path.exists(
        setting.resolve_artifact(setting.checkpoint_path)
    )
    return run_algorithm(
        setting,
        run.algorithm,
        rounds=run.rounds,
        eval_every=run.eval_every,
        resume=resume,
        **run.overrides,
    )


def _pool_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool-side wrapper: deterministic run exceptions become data, not
    pool crashes, so failure isolation survives the process boundary."""
    try:
        history = execute_run(payload)
        return {"ok": True, "history": history.to_dict()}
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


# ----------------------------------------------------------------------
# outcomes
# ----------------------------------------------------------------------
@dataclass
class RunOutcome:
    """What happened to one queued run."""

    run_key: str
    label: str
    spec: RunSpec
    status: str  # "completed" | "resumed" | "cached" | "failed"
    history: Optional[RunHistory] = None
    error: Optional[str] = None

    @property
    def rounds_done(self) -> int:
        return len(self.history) if self.history is not None else 0


@dataclass
class SweepResult:
    """Ordered outcomes of one sweep submission."""

    name: str
    spec_hash: str
    outcomes: List[RunOutcome] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {
            "completed": 0, "resumed": 0, "cached": 0, "failed": 0
        }
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def ok(self) -> bool:
        return all(o.status != "failed" for o in self.outcomes)

    def histories(self) -> Dict[str, RunHistory]:
        return {
            o.run_key: o.history
            for o in self.outcomes
            if o.history is not None
        }


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class SweepScheduler:
    """Drive one sweep spec through cache, queue, execution, registry.

    Parameters
    ----------
    spec:
        The grid to run.
    out_root:
        Root for all sweep state: ``<out_root>/cache/<run_key>/`` holds
        per-run artifacts, ``<out_root>/registry/`` the JSONL registry.
    run_workers:
        ``1`` executes runs inline in queue order (default); ``>1`` fans
        whole runs out to a process pool.
    run_timeout_s:
        Per-run wall-clock budget (pool mode only); a run that exhausts
        its budget across ``run_retries + 1`` attempts is recorded as
        failed with reason ``timeout``.
    run_retries:
        Extra attempts after a timeout or worker death (pool mode only).
        Deterministic exceptions inside a run are never retried.
    checkpoint_every:
        Autosave cadence (rounds) for each run's exact-resume checkpoint.
    trace:
        Also write a per-run obs trace + metrics export into the cache
        (enables live per-run round counts in pool mode).  Off by default
        so sweep histories stay field-for-field identical to plain
        ``repro run`` output.
    runtime_overrides:
        Executor settings applied to every run (``executor``,
        ``max_workers``, ``task_timeout_s``) — the sweep-level override
        for the :mod:`repro.runtime` layer.
    """

    def __init__(
        self,
        spec: SweepSpec,
        out_root: str = "results",
        run_workers: int = 1,
        run_timeout_s: Optional[float] = None,
        run_retries: int = 1,
        checkpoint_every: int = 1,
        trace: bool = False,
        runtime_overrides: Optional[Dict[str, Any]] = None,
        progress: Optional[SweepProgress] = None,
    ) -> None:
        if run_workers < 1:
            raise ValueError(f"run_workers must be >= 1, got {run_workers}")
        if run_timeout_s is not None and run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive")
        if run_retries < 0:
            raise ValueError("run_retries must be >= 0")
        self.spec = spec
        self.out_root = out_root
        self.run_workers = run_workers
        self.run_timeout_s = run_timeout_s
        self.run_retries = run_retries
        self.checkpoint_every = checkpoint_every
        self.trace = trace
        self.runtime_overrides = dict(runtime_overrides or {})
        self.cache = ResultCache(f"{out_root}/cache")
        self.registry = RunRegistry(f"{out_root}/registry")
        self._progress = progress

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def queue(self) -> List[RunSpec]:
        """The deterministic run queue (also used by ``--dry-run``)."""
        return self.spec.expand()

    def run(self) -> SweepResult:
        runs = self.queue()
        keys = [r.run_key() for r in runs]
        progress = self._progress or SweepProgress(len(runs), enabled=False)
        progress.total = len(runs)
        result = SweepResult(name=self.spec.name, spec_hash=self.spec.spec_hash())

        pending: List[int] = []
        outcomes: List[Optional[RunOutcome]] = [None] * len(runs)
        for i, (run, key) in enumerate(zip(runs, keys)):
            cached = self.cache.load_history(key)
            if cached is not None:
                outcomes[i] = RunOutcome(key, run.label(), run, "cached", cached)
                progress.transition(
                    key, run.label(), "cached", f"{len(cached)} rounds"
                )
            else:
                pending.append(i)

        if pending:
            payloads = [self._payload(runs[i], keys[i]) for i in pending]
            if self.run_workers == 1:
                executed = self._run_inline(
                    [runs[i] for i in pending], [keys[i] for i in pending],
                    payloads, progress,
                )
            else:
                executed = self._run_pool(
                    [runs[i] for i in pending], [keys[i] for i in pending],
                    payloads, progress,
                )
            for i, outcome in zip(pending, executed):
                outcomes[i] = outcome

        result.outcomes = [o for o in outcomes if o is not None]
        self._record_sweep(result, keys)
        progress.note(progress.summary())
        return result

    # ------------------------------------------------------------------
    # payloads and artifacts
    # ------------------------------------------------------------------
    def _payload(self, run: RunSpec, key: str) -> Dict[str, Any]:
        self.cache.store_config(key, run)
        spec_fields = asdict(run)
        spec_fields["runtime_fields"] = dict(
            spec_fields["runtime_fields"], **self.runtime_overrides
        )
        artifacts: Dict[str, Any] = {
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_path": self.cache.checkpoint_path(key),
        }
        if self.trace:
            artifacts["trace_path"] = self.cache.trace_path(key)
            artifacts["metrics_path"] = self.cache.metrics_path(key)
        return {"run": spec_fields, "artifacts": artifacts}

    def _resumable(self, key: str) -> bool:
        return self.cache.has_checkpoint(key)

    # ------------------------------------------------------------------
    # inline execution (deterministic queue order)
    # ------------------------------------------------------------------
    def _run_inline(self, runs, keys, payloads, progress) -> List[RunOutcome]:
        executed: List[RunOutcome] = []
        for run, key, payload in zip(runs, keys, payloads):
            resumed = self._resumable(key)
            progress.transition(key, run.label(), "running")
            try:
                history = execute_run(payload)
            except Exception as exc:  # noqa: BLE001 - failure isolation
                executed.append(
                    self._fail(run, key, f"{type(exc).__name__}: {exc}", progress)
                )
                continue
            executed.append(self._finish(run, key, history, resumed, progress))
        return executed

    # ------------------------------------------------------------------
    # pool execution (sharded runs, timeout/retry like repro.runtime)
    # ------------------------------------------------------------------
    def _run_pool(self, runs, keys, payloads, progress) -> List[RunOutcome]:
        n = len(runs)
        resumed_flags = [self._resumable(key) for key in keys]
        raw: List[Optional[Dict[str, Any]]] = [None] * n
        attempts = [0] * n
        pool = ProcessPoolExecutor(max_workers=self.run_workers)
        futures = {i: pool.submit(_pool_worker, payloads[i]) for i in range(n)}
        for key, run in zip(keys, runs):
            progress.transition(key, run.label(), "running")
        pending = list(range(n))
        try:
            while pending:
                i = pending[0]
                started = time.perf_counter()
                while raw[i] is None:
                    try:
                        raw[i] = futures[i].result(timeout=_POLL_S)
                        pending.pop(0)
                    except FuturesTimeout:
                        self._poll_traces(runs, keys, pending, progress)
                        waited = time.perf_counter() - started
                        if (
                            self.run_timeout_s is not None
                            and waited > self.run_timeout_s
                        ):
                            attempts[i] += 1
                            pool = self._recycle(pool, futures, payloads, pending, raw)
                            if attempts[i] > self.run_retries:
                                raw[i] = {"ok": False, "error": (
                                    f"timeout: no result within "
                                    f"{self.run_timeout_s}s after "
                                    f"{attempts[i]} attempt(s)"
                                )}
                                pending.pop(0)
                            else:
                                started = time.perf_counter()
                    except BrokenExecutor:
                        attempts[i] += 1
                        pool = self._recycle(pool, futures, payloads, pending, raw)
                        if attempts[i] > self.run_retries:
                            raw[i] = {"ok": False, "error": (
                                "worker death: the run kept crashing its "
                                f"worker process ({attempts[i]} attempt(s))"
                            )}
                            pending.pop(0)
                        else:
                            started = time.perf_counter()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        executed: List[RunOutcome] = []
        for run, key, resumed, outcome in zip(runs, keys, resumed_flags, raw):
            if outcome is None or not outcome.get("ok"):
                error = (outcome or {}).get("error", "no result")
                executed.append(self._fail(run, key, error, progress))
            else:
                history = RunHistory.from_dict(outcome["history"])
                executed.append(self._finish(run, key, history, resumed, progress))
        return executed

    def _recycle(self, pool, futures, payloads, pending, raw):
        """Replace a collapsed/hung pool and resubmit every unfinished run."""
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=self.run_workers)
        for j in pending:
            if raw[j] is None:
                futures[j] = pool.submit(_pool_worker, payloads[j])
        return pool

    def _poll_traces(self, runs, keys, pending, progress) -> None:
        if not self.trace:
            return
        for j in pending:
            rounds = rounds_completed(self.cache.trace_path(keys[j]))
            if rounds:
                progress.running_rounds(
                    keys[j], runs[j].label(), rounds, runs[j].rounds
                )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _finish(self, run, key, history, resumed, progress) -> RunOutcome:
        status = "resumed" if resumed else "completed"
        self.cache.store_history(key, history)
        self.registry.record_run(self._run_record(run, key, status, history))
        detail = f"{len(history)} rounds, S_acc={history.final_server_acc:.3f}"
        progress.transition(key, run.label(), status, detail)
        return RunOutcome(key, run.label(), run, status, history)

    def _fail(self, run, key, error, progress) -> RunOutcome:
        self.registry.record_run(
            self._run_record(run, key, "failed", None, error=error)
        )
        progress.transition(key, run.label(), "failed", error)
        return RunOutcome(key, run.label(), run, "failed", error=error)

    def _run_record(
        self, run, key, status, history, error: Optional[str] = None
    ) -> Dict[str, Any]:
        config = run.resolved_config()
        record: Dict[str, Any] = {
            "run_key": key,
            "sweep": self.spec.name,
            "status": status,
            "label": run.label(),
            "algorithm": run.algorithm,
            "config": config,
            "artifacts": {
                "dir": self.cache.run_dir(key),
                "history": self.cache.history_path(key),
                "checkpoint": self.cache.checkpoint_path(key),
            },
        }
        if self.trace:
            record["artifacts"]["trace"] = self.cache.trace_path(key)
            record["artifacts"]["metrics"] = self.cache.metrics_path(key)
        if history is not None:
            last = history.records[-1] if history.records else None
            record.update(
                {
                    "rounds": len(history),
                    "final_server_acc": _finite(history.final_server_acc),
                    "final_client_acc": _finite(history.final_client_acc),
                    "best_server_acc": _finite(history.best_server_acc),
                    "best_client_acc": _finite(history.best_client_acc),
                    "comm_mb": _finite(last.comm_total_mb) if last else None,
                }
            )
        if error is not None:
            record["error"] = error
        return record

    def _record_sweep(self, result: SweepResult, keys: List[str]) -> None:
        counts = result.counts()
        self.registry.record_sweep(
            {
                "name": result.name,
                "spec_hash": result.spec_hash,
                "total": len(result.outcomes),
                "run_keys": keys,
                **counts,
            }
        )
