"""Declarative sweep specs and their deterministic expansion.

A sweep is a grid: a ``base`` cell (shared settings) crossed with ``axes``
(field → list of values).  Expansion is *stably ordered* — axes are
iterated in sorted key order, values in the order the spec lists them —
so the run queue of a given spec is identical on every machine and every
invocation, which is what makes the registry and result cache meaningful.

Each expanded :class:`RunSpec` owns a **run key**: the SHA-256 of its
resolved, canonically-serialised configuration plus the code-relevant
versions (``repro.__version__``, the checkpoint format version, and this
module's key-schema version).  Two grid cells that resolve to the same
training work share a key — notably, *runtime* knobs (executor choice,
worker counts, timeouts) are excluded from the key because the runtime
layer guarantees bit-identical histories across them.

Spec format (dict or JSON file)::

    {
      "name": "theta-sweep",
      "base": {"scale": "tiny", "rounds": 3},
      "axes": {
        "algorithm": ["fedpkd", "fedavg"],
        "seed": [0, 1],
        "config.select_ratio": [0.3, 0.7]   // algorithm-config override axis
      },
      "overrides": {"fedpkd": {"delta": 0.5}}  // per-algorithm, non-axis
    }

``config.<field>`` entries feed :func:`repro.algorithms.build_algorithm`
overrides; every other key must be a sweepable :class:`ExperimentSetting`
field, ``algorithm``, ``rounds`` or ``eval_every``.  Artifact paths
(checkpoints, traces, out dirs) are owned by the scheduler and rejected
here.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .. import __version__
from ..algorithms import ALGORITHMS
from ..experiments.harness import PARTITIONS, SCALES, ExperimentSetting
from ..fl.checkpoint import CHECKPOINT_FORMAT_VERSION

__all__ = [
    "RUN_KEY_VERSION",
    "SweepSpecError",
    "RunSpec",
    "SweepSpec",
]

#: Bump whenever the run-key canonicalisation below changes shape; old
#: cache entries then stop matching instead of silently colliding.
#: v2: round-engine fields (engine / max_staleness / staleness_alpha /
#: buffer_size / fault_plan) entered the key.
#: v3: cohort fields (clients_per_round / eval_clients) entered the key;
#: max_live_clients is a runtime field (eviction + spill are bit-neutral).
RUN_KEY_VERSION = 3

#: ExperimentSetting fields a spec may set (key fields affect results and
#: enter the run key; runtime fields do not — histories are bit-identical
#: across executors, so caching across them is sound).  The async-engine
#: knobs are key fields: staleness discounts, buffer triggers, and fault
#: plans all change the recorded history.
_KEY_SETTING_FIELDS = (
    "dataset",
    "partition",
    "heterogeneous",
    "scale",
    "seed",
    "scale_overrides",
    "engine",
    "max_staleness",
    "staleness_alpha",
    "buffer_size",
    "fault_plan",
    "clients_per_round",
    "eval_clients",
)
_RUNTIME_SETTING_FIELDS = (
    "executor",
    "max_workers",
    "task_timeout_s",
    "retry_backoff_s",
    "max_live_clients",
    "profile",
)
_EXTRA_FIELDS = ("algorithm", "rounds", "eval_every")
_ALLOWED_FIELDS = _KEY_SETTING_FIELDS + _RUNTIME_SETTING_FIELDS + _EXTRA_FIELDS

#: Managed by the scheduler/cache; a spec naming one of these is a bug.
_MANAGED_FIELDS = (
    "checkpoint_every",
    "checkpoint_path",
    "trace_path",
    "metrics_path",
    "out_dir",
)

#: Run-key classification of every ``FederationConfig`` field, enforced
#: statically by the ``flow-run-key-drift`` lint rule: adding a config
#: field without declaring how the run key treats it breaks lint, not a
#: sweep three weeks later.
#:
#: - ``key``     — enters the run key (must be in ``_KEY_SETTING_FIELDS``)
#: - ``runtime`` — execution detail, bit-neutral by the equivalence tests
#:   (must be in ``_RUNTIME_SETTING_FIELDS``)
#: - ``managed`` — owned by the scheduler/cache (``_MANAGED_FIELDS``)
#: - ``derived`` — computed from key settings (dataset/partition/scale),
#:   so already covered by the settings that derive it
#: - ``pinned``  — not settable through sweep specs; constant per sweep
CONFIG_FIELD_CLASSIFICATION = {
    "seed": "key",
    "engine": "key",
    "max_staleness": "key",
    "staleness_alpha": "key",
    "buffer_size": "key",
    "fault_plan": "key",
    "clients_per_round": "key",
    "eval_clients": "key",
    "executor": "runtime",
    "max_workers": "runtime",
    "task_timeout_s": "runtime",
    "retry_backoff_s": "runtime",
    "max_live_clients": "runtime",
    "profile": "runtime",
    "checkpoint_every": "managed",
    "checkpoint_path": "managed",
    "trace_path": "managed",
    "metrics_path": "managed",
    "num_clients": "derived",
    "partition": "derived",
    "client_models": "derived",
    "server_model": "derived",
    "feature_dim": "pinned",
    "local_test_fraction": "pinned",
    "dropout_prob": "pinned",
    "task_retries": "pinned",
    "spill_dir": "pinned",
}

_CONFIG_PREFIX = "config."


class SweepSpecError(ValueError):
    """A sweep spec is malformed (unknown field, bad axis, duplicate key)."""


def _canonical(obj: Any) -> str:
    """Canonical JSON: the byte-stable serialisation the run key hashes."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SweepSpecError(f"spec value is not JSON-serialisable: {exc}")


@dataclass
class RunSpec:
    """One fully-resolved cell of the grid: what to run and how."""

    algorithm: str
    setting_fields: Dict[str, Any] = field(default_factory=dict)
    runtime_fields: Dict[str, Any] = field(default_factory=dict)
    rounds: Any = None
    eval_every: int = 1
    overrides: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def resolved_config(self) -> Dict[str, Any]:
        """The result-affecting configuration, fully keyed and sorted.

        Built through :class:`ExperimentSetting` so dataclass defaults are
        applied: a spec that says ``"dataset": "cifar10"`` explicitly and
        one that leaves the default hash to the same run key.
        """
        setting = ExperimentSetting(**self.setting_fields)
        setting_payload = {
            k: getattr(setting, k) for k in _KEY_SETTING_FIELDS
        }
        if setting_payload.get("fault_plan") is not None:
            # canonicalise to content, not spelling: a plan given as a path
            # and the same plan inlined as a dict share a run key
            from ..fl.failures import FaultPlan, FaultPlanError

            try:
                setting_payload["fault_plan"] = FaultPlan.resolve(
                    setting_payload["fault_plan"]
                ).to_dict()
            except FaultPlanError as exc:
                raise SweepSpecError(str(exc)) from None
        return {
            "algorithm": self.algorithm,
            "setting": setting_payload,
            "rounds": self.rounds,
            "eval_every": self.eval_every,
            "overrides": dict(sorted(self.overrides.items())),
        }

    def run_key(self) -> str:
        """Content hash of the resolved config + code-relevant versions."""
        payload = {
            "config": self.resolved_config(),
            "versions": {
                "repro": __version__,
                "checkpoint_format": CHECKPOINT_FORMAT_VERSION,
                "run_key": RUN_KEY_VERSION,
            },
        }
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Human-readable short form for progress lines and tables."""
        s = self.setting_fields
        parts = [
            self.algorithm,
            str(s.get("dataset", "cifar10")),
            str(s.get("partition", "dir0.5")),
            f"s{s.get('seed', 0)}",
        ]
        if s.get("heterogeneous"):
            parts.append("hetero")
        for key, value in sorted(self.overrides.items()):
            parts.append(f"{key}={value}")
        return "/".join(parts)

    # ------------------------------------------------------------------
    # execution glue
    # ------------------------------------------------------------------
    def to_setting(self, **artifact_fields) -> ExperimentSetting:
        """Build the harness setting (artifact paths come from the cache)."""
        kwargs = dict(self.setting_fields)
        kwargs.update(self.runtime_fields)
        kwargs.update(artifact_fields)
        return ExperimentSetting(**kwargs)


@dataclass
class SweepSpec:
    """A named grid over algorithms × settings × seeds × config fields."""

    name: str
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, Sequence[Any]] = field(default_factory=dict)
    overrides: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        if not isinstance(payload, dict):
            raise SweepSpecError(
                f"sweep spec must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"name", "base", "axes", "overrides"})
        if unknown:
            raise SweepSpecError(f"unknown top-level spec keys: {unknown}")
        name = payload.get("name")
        if not isinstance(name, str) or not name.strip():
            raise SweepSpecError("spec needs a non-empty string 'name'")
        base = payload.get("base", {})
        axes = payload.get("axes", {})
        overrides = payload.get("overrides", {})
        if not isinstance(base, dict):
            raise SweepSpecError("'base' must be an object")
        if not isinstance(axes, dict) or not axes:
            raise SweepSpecError("'axes' must be a non-empty object")
        if not isinstance(overrides, dict):
            raise SweepSpecError("'overrides' must be an object")
        for algo, fields_ in overrides.items():
            if algo not in ALGORITHMS:
                raise SweepSpecError(f"overrides for unknown algorithm '{algo}'")
            if not isinstance(fields_, dict):
                raise SweepSpecError(f"overrides['{algo}'] must be an object")
        return cls(name=name.strip(), base=base, axes=axes, overrides=overrides)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        try:
            with open(path, "r", encoding="utf-8") as f:
                payload = json.load(f)
        except OSError as exc:
            raise SweepSpecError(f"cannot read sweep spec '{path}': {exc}")
        except json.JSONDecodeError as exc:
            raise SweepSpecError(f"sweep spec '{path}' is not valid JSON: {exc}")
        spec = cls.from_dict(payload)
        if spec.name == os.path.basename(path):  # pragma: no cover - cosmetic
            spec.name = os.path.splitext(spec.name)[0]
        return spec

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        payload = {
            "name": self.name,
            "base": self.base,
            "axes": {k: list(v) for k, v in self.axes.items()},
            "overrides": self.overrides,
        }
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> List[RunSpec]:
        """The deterministic run queue: sorted axis keys × listed values.

        Raises :class:`SweepSpecError` on unknown fields, non-list axes,
        unknown algorithms/partitions/scales, and duplicate run keys.
        """
        for key in list(self.base) + list(self.axes):
            field_name = key[len(_CONFIG_PREFIX):] if key.startswith(_CONFIG_PREFIX) else key
            if key.startswith(_CONFIG_PREFIX):
                if not field_name:
                    raise SweepSpecError("'config.' entry is missing a field name")
                continue
            if field_name in _MANAGED_FIELDS:
                raise SweepSpecError(
                    f"'{field_name}' is managed by the sweep scheduler and "
                    "cannot appear in a spec"
                )
            if field_name not in _ALLOWED_FIELDS:
                raise SweepSpecError(
                    f"unknown sweep field '{field_name}' (allowed: "
                    f"{', '.join(_ALLOWED_FIELDS)}, or 'config.<field>')"
                )
        axis_keys = sorted(self.axes)
        for key in axis_keys:
            values = self.axes[key]
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepSpecError(
                    f"axis '{key}' must be a non-empty list of values"
                )

        cells: List[Dict[str, Any]] = [dict(self.base)]
        for key in axis_keys:
            cells = [
                dict(cell, **{key: value})
                for cell in cells
                for value in self.axes[key]
            ]

        runs = [self._resolve_cell(cell) for cell in cells]

        seen: Dict[str, str] = {}
        for run in runs:
            key = run.run_key()
            if key in seen:
                raise SweepSpecError(
                    f"duplicate run key {key[:12]} for '{run.label()}' "
                    f"(already produced by '{seen[key]}'); remove the "
                    "repeated axis value"
                )
            seen[key] = run.label()
        return runs

    def _resolve_cell(self, cell: Dict[str, Any]) -> RunSpec:
        algorithm = cell.pop("algorithm", None)
        if algorithm is None:
            raise SweepSpecError(
                "spec must set 'algorithm' in base or as an axis"
            )
        if algorithm not in ALGORITHMS:
            raise SweepSpecError(
                f"unknown algorithm '{algorithm}' (choose from "
                f"{', '.join(sorted(ALGORITHMS))})"
            )
        rounds = cell.pop("rounds", None)
        if rounds is not None and (not isinstance(rounds, int) or rounds < 1):
            raise SweepSpecError(f"rounds must be a positive integer, got {rounds!r}")
        eval_every = cell.pop("eval_every", 1)
        if not isinstance(eval_every, int) or eval_every < 1:
            raise SweepSpecError(
                f"eval_every must be a positive integer, got {eval_every!r}"
            )

        config_overrides = dict(self.overrides.get(algorithm, {}))
        setting_fields: Dict[str, Any] = {}
        runtime_fields: Dict[str, Any] = {}
        for key, value in cell.items():
            if key.startswith(_CONFIG_PREFIX):
                config_overrides[key[len(_CONFIG_PREFIX):]] = value
            elif key in _RUNTIME_SETTING_FIELDS:
                runtime_fields[key] = value
            else:
                setting_fields[key] = value

        partition = setting_fields.get("partition")
        if partition is not None and partition not in PARTITIONS:
            raise SweepSpecError(
                f"unknown partition '{partition}' (choose from "
                f"{', '.join(sorted(PARTITIONS))})"
            )
        scale = setting_fields.get("scale")
        if scale is not None and scale not in SCALES:
            raise SweepSpecError(
                f"unknown scale '{scale}' (choose from {', '.join(sorted(SCALES))})"
            )

        return RunSpec(
            algorithm=algorithm,
            setting_fields=setting_fields,
            runtime_fields=runtime_fields,
            rounds=rounds,
            eval_every=eval_every,
            overrides=config_overrides,
        )
