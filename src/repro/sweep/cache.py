"""Checkpoint-keyed result cache: one directory per run key.

Layout under the cache root (``<out-root>/cache``)::

    cache/<run_key>/config.json      resolved config + versions (debugging)
    cache/<run_key>/history.json     the finished RunHistory (cache hit test)
    cache/<run_key>/run.ckpt.npz     exact-resume checkpoint (autosaved)
    cache/<run_key>/trace.jsonl      per-run obs trace (only with --trace)
    cache/<run_key>/metrics.jsonl    per-run metrics export (only with --trace)

A run is a **cache hit** when its ``history.json`` exists and the registry
records it completed — resubmitting an overlapping grid then performs zero
training for that cell.  An *interrupted* run leaves ``run.ckpt.npz``
behind; the scheduler resumes it through the exact-resume machinery
(:mod:`repro.fl.checkpoint`), so the finished history is bit-identical to
an uninterrupted run.

History writes are atomic (tmp + ``os.replace``) so a crash mid-write
never fabricates a hit.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..fl.metrics import RunHistory
from .spec import RunSpec

__all__ = ["ResultCache"]

_HISTORY = "history.json"
_CHECKPOINT = "run.ckpt.npz"
_CONFIG = "config.json"
_TRACE = "trace.jsonl"
_METRICS = "metrics.jsonl"


class ResultCache:
    """Artifact store addressed by run key."""

    def __init__(self, root: str) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def run_dir(self, key: str, create: bool = False) -> str:
        path = os.path.join(self.root, key)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def history_path(self, key: str) -> str:
        return os.path.join(self.run_dir(key), _HISTORY)

    def checkpoint_path(self, key: str) -> str:
        return os.path.join(self.run_dir(key), _CHECKPOINT)

    def trace_path(self, key: str) -> str:
        return os.path.join(self.run_dir(key), _TRACE)

    def metrics_path(self, key: str) -> str:
        return os.path.join(self.run_dir(key), _METRICS)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_history(self, key: str) -> bool:
        return os.path.exists(self.history_path(key))

    def has_checkpoint(self, key: str) -> bool:
        return os.path.exists(self.checkpoint_path(key))

    def load_history(self, key: str) -> Optional[RunHistory]:
        """The cached history, or ``None`` if absent/corrupt."""
        path = self.history_path(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                return RunHistory.from_dict(json.load(f))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def store_history(self, key: str, history: RunHistory) -> str:
        """Atomically persist a finished run's history; returns its path."""
        self.run_dir(key, create=True)
        path = self.history_path(key)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(history.to_dict(), f, indent=2)
        os.replace(tmp, path)
        return path

    def store_config(self, key: str, run: RunSpec) -> str:
        """Record the resolved config beside the artifacts (idempotent)."""
        self.run_dir(key, create=True)
        path = os.path.join(self.run_dir(key), _CONFIG)
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(run.resolved_config(), f, indent=2, sort_keys=True)
            os.replace(tmp, path)
        return path
