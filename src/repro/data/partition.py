"""Client data partitioners: IID, Dirichlet(α), and the shards method.

These reproduce the two non-IID constructions in the paper's evaluation:

- *Dirichlet distribution method* (Hsu et al., 2019): per-client class
  proportions drawn from Dir(α); smaller α ⇒ more skew.
- *Shards method* (as in FedAvg/FedProx): the pool is sorted by label, cut
  into fixed-size shards, and each client receives shards drawn from ``k``
  classes; smaller ``k`` ⇒ more skew.

All partitioners return a list of index arrays into the given dataset, are
deterministic under a seed, and guarantee every client receives at least one
sample.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .datasets import Dataset

__all__ = [
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "partition_by_classes",
    "split_local_train_test",
    "partition_summary",
]

IndexList = List[np.ndarray]


def _validate(dataset: Dataset, num_clients: int) -> None:
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if len(dataset) < num_clients:
        raise ValueError(
            f"cannot split {len(dataset)} samples across {num_clients} clients"
        )


def _ensure_nonempty(parts: IndexList, rng: np.random.Generator) -> IndexList:
    """Move samples from the largest parts into any empty ones."""
    for i, part in enumerate(parts):
        while len(parts[i]) == 0:
            donor = int(np.argmax([len(p) for p in parts]))
            if len(parts[donor]) <= 1:
                raise RuntimeError("not enough samples to give every client one")
            take = rng.integers(0, len(parts[donor]))
            parts[i] = np.append(parts[i], parts[donor][take]).astype(np.int64)
            parts[donor] = np.delete(parts[donor], take)
    return parts


def partition_iid(dataset: Dataset, num_clients: int, seed: int = 0) -> IndexList:
    """Shuffle and split the dataset into equal IID chunks."""
    _validate(dataset, num_clients)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    return [chunk.astype(np.int64) for chunk in np.array_split(order, num_clients)]


def partition_dirichlet(
    dataset: Dataset,
    num_clients: int,
    alpha: float,
    seed: int = 0,
) -> IndexList:
    """Label-skewed split with per-class Dirichlet(α) client proportions."""
    _validate(dataset, num_clients)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = np.random.default_rng(seed)
    parts: IndexList = [np.empty(0, dtype=np.int64) for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        cls_idx = np.flatnonzero(dataset.y == cls)
        if len(cls_idx) == 0:
            continue
        rng.shuffle(cls_idx)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        cuts = (np.cumsum(proportions)[:-1] * len(cls_idx)).astype(int)
        for client, chunk in enumerate(np.split(cls_idx, cuts)):
            parts[client] = np.concatenate([parts[client], chunk])
    for part in parts:
        rng.shuffle(part)
    return _ensure_nonempty(parts, rng)


def partition_shards(
    dataset: Dataset,
    num_clients: int,
    classes_per_client: int,
    shard_size: int = 20,
    shards_per_client: Optional[int] = None,
    seed: int = 0,
) -> IndexList:
    """The paper's shards method.

    The pool is cut into label-sorted shards of ``shard_size``; each client
    draws shards only from ``classes_per_client`` (the paper's ``k``)
    randomly chosen classes.  ``shards_per_client`` defaults to an equal
    share of all shards.
    """
    _validate(dataset, num_clients)
    if not 1 <= classes_per_client <= dataset.num_classes:
        raise ValueError(
            f"classes_per_client must be in [1, {dataset.num_classes}], "
            f"got {classes_per_client}"
        )
    rng = np.random.default_rng(seed)

    # Build shards per class.
    shards_by_class: List[List[np.ndarray]] = []
    for cls in range(dataset.num_classes):
        cls_idx = np.flatnonzero(dataset.y == cls)
        rng.shuffle(cls_idx)
        shards = [
            cls_idx[i : i + shard_size] for i in range(0, len(cls_idx), shard_size)
        ]
        shards_by_class.append(shards)

    total_shards = sum(len(s) for s in shards_by_class)
    if shards_per_client is None:
        shards_per_client = max(1, total_shards // num_clients)

    parts: IndexList = []
    for _ in range(num_clients):
        chosen_classes = rng.choice(
            dataset.num_classes, size=classes_per_client, replace=False
        )
        collected: List[np.ndarray] = []
        # Round-robin over the chosen classes until we have enough shards;
        # skip classes whose shards ran out (can happen for small pools).
        guard = 0
        while len(collected) < shards_per_client and guard < 10 * shards_per_client:
            guard += 1
            cls = int(rng.choice(chosen_classes))
            if shards_by_class[cls]:
                collected.append(shards_by_class[cls].pop())
            elif all(not shards_by_class[c] for c in chosen_classes):
                break
        if collected:
            part = np.concatenate(collected).astype(np.int64)
        else:
            part = np.empty(0, dtype=np.int64)
        rng.shuffle(part)
        parts.append(part)
    return _ensure_nonempty(parts, rng)


def partition_by_classes(
    dataset: Dataset, class_groups: Sequence[Sequence[int]], seed: int = 0
) -> IndexList:
    """Assign each client exactly the samples of its class group.

    Used by the Fig. 2 motivation experiment (client 1 gets classes 0–4,
    client 2 gets classes 5–9).
    """
    rng = np.random.default_rng(seed)
    parts: IndexList = []
    for group in class_groups:
        mask = np.isin(dataset.y, np.asarray(group))
        idx = np.flatnonzero(mask)
        rng.shuffle(idx)
        parts.append(idx.astype(np.int64))
    return parts


def split_local_train_test(
    indices: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Split one client's indices into local train/test with the same skew.

    The paper's ``C_acc`` metric evaluates each client on a local test set
    distributed like its training data; this carve-out provides it.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    indices = np.asarray(indices, dtype=np.int64)
    order = rng.permutation(len(indices))
    n_test = max(1, int(round(len(indices) * test_fraction)))
    n_test = min(n_test, len(indices) - 1) if len(indices) > 1 else 0
    test_idx = indices[order[:n_test]]
    train_idx = indices[order[n_test:]]
    return train_idx, test_idx


def partition_summary(dataset: Dataset, parts: IndexList) -> np.ndarray:
    """Return a ``(num_clients, num_classes)`` label-count matrix."""
    summary = np.zeros((len(parts), dataset.num_classes), dtype=np.int64)
    for client, idx in enumerate(parts):
        summary[client] = np.bincount(
            dataset.y[idx], minlength=dataset.num_classes
        )
    return summary
