"""Dataset substrate: synthetic CIFAR-like tasks, partitioners, loaders."""

from .augment import (
    AugmentPipeline,
    gaussian_noise,
    random_horizontal_flip,
    random_shift,
)
from .datasets import (
    Dataset,
    FederatedDataBundle,
    SyntheticImageTask,
    make_task,
    synthetic_cifar10,
    synthetic_cifar100,
)
from .loaders import batch_iterator, num_batches
from .partition import (
    partition_by_classes,
    partition_dirichlet,
    partition_iid,
    partition_shards,
    partition_summary,
    split_local_train_test,
)

__all__ = [
    "Dataset",
    "FederatedDataBundle",
    "SyntheticImageTask",
    "make_task",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "AugmentPipeline",
    "random_horizontal_flip",
    "random_shift",
    "gaussian_noise",
    "batch_iterator",
    "num_batches",
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "partition_by_classes",
    "partition_summary",
    "split_local_train_test",
]
