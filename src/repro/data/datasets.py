"""Synthetic image-classification datasets standing in for CIFAR-10/100.

No dataset download is possible offline, so we substitute generators that
preserve the *distributional* structure FedPKD's evaluation depends on:

- classes occupy distinct regions of a latent space (so prototypes are
  meaningful and per-class logit quality tracks training-data share);
- classes have intra-class variation (multiple latent modes + noise) so the
  task is non-trivial and more data genuinely helps;
- samples are rendered to image tensors through a fixed random nonlinear
  map, so convolutional and MLP models both have to learn real features;
- a configurable fraction of samples can be label-noised or rendered far
  from their class prototype, giving the data-filtering mechanism actual
  low-quality samples to reject.

``synthetic_cifar10``/``synthetic_cifar100`` mirror the paper's setup: a
labelled pool partitioned across clients, an *unlabelled* public dataset,
and a global test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Dataset",
    "FederatedDataBundle",
    "SyntheticImageTask",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "make_task",
]


@dataclass
class Dataset:
    """A labelled array dataset.

    ``x`` has shape ``(N, C, H, W)`` (or ``(N, D)`` for flat tasks) and ``y``
    holds integer labels in ``[0, num_classes)``.
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if len(self.x) != len(self.y):
            raise ValueError(
                f"x/y length mismatch: {len(self.x)} vs {len(self.y)}"
            )

    def __len__(self) -> int:
        return len(self.x)

    @property
    def image_shape(self) -> Tuple[int, ...]:
        return self.x.shape[1:]

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a view-like dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            self.x[indices], self.y[indices], self.num_classes, name or self.name
        )

    def class_counts(self) -> np.ndarray:
        """Histogram of labels over ``num_classes`` bins."""
        return np.bincount(self.y, minlength=self.num_classes)


@dataclass
class FederatedDataBundle:
    """Everything one FL experiment needs.

    Attributes
    ----------
    train:
        The labelled pool to be partitioned across clients.
    test:
        Global held-out test set (drives the paper's ``S_acc`` metric).
    public:
        The shared public dataset.  Its labels are *hidden* from the
        algorithms (the paper's public set is unlabelled); they are retained
        in ``public_true_labels`` for diagnostics such as Fig. 2.
    """

    train: Dataset
    test: Dataset
    public: np.ndarray
    public_true_labels: np.ndarray
    num_classes: int
    name: str

    @property
    def image_shape(self) -> Tuple[int, ...]:
        return self.train.image_shape


class SyntheticImageTask:
    """Generator of a fixed synthetic classification task.

    The task is defined once (anchors + rendering map) from ``seed``; all
    splits drawn from the same task share it, so train/test/public are IID
    draws from one distribution, exactly like splitting CIFAR.
    """

    def __init__(
        self,
        num_classes: int,
        image_shape: Tuple[int, int, int] = (3, 8, 8),
        latent_dim: int = 16,
        modes_per_class: int = 2,
        class_separation: float = 3.0,
        mode_spread: float = 1.0,
        noise_scale: float = 0.8,
        label_noise: float = 0.0,
        seed: int = 0,
        name: str = "synthetic",
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if not 0.0 <= label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")
        self.num_classes = num_classes
        self.image_shape = tuple(image_shape)
        self.latent_dim = latent_dim
        self.modes_per_class = modes_per_class
        self.noise_scale = noise_scale
        self.label_noise = label_noise
        self.name = name
        self._task_rng = np.random.default_rng(seed)

        # Class anchors and per-class mode offsets in latent space.
        self._anchors = (
            self._task_rng.normal(size=(num_classes, latent_dim)) * class_separation
        )
        self._modes = (
            self._task_rng.normal(size=(num_classes, modes_per_class, latent_dim))
            * mode_spread
        )

        # Fixed random two-layer rendering network latent -> image.
        out_dim = int(np.prod(image_shape))
        hidden = max(2 * latent_dim, 32)
        self._w1 = self._task_rng.normal(size=(latent_dim, hidden)) / np.sqrt(latent_dim)
        self._b1 = self._task_rng.normal(size=hidden) * 0.1
        self._w2 = self._task_rng.normal(size=(hidden, out_dim)) / np.sqrt(hidden)
        self._b2 = self._task_rng.normal(size=out_dim) * 0.1

    def _render(self, latents: np.ndarray) -> np.ndarray:
        hidden = np.tanh(latents @ self._w1 + self._b1)
        flat = np.tanh(hidden @ self._w2 + self._b2)
        return flat.reshape(len(latents), *self.image_shape)

    def sample(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled samples (classes balanced in expectation)."""
        labels = rng.integers(0, self.num_classes, size=n)
        modes = rng.integers(0, self.modes_per_class, size=n)
        latents = (
            self._anchors[labels]
            + self._modes[labels, modes]
            + rng.normal(size=(n, self.latent_dim)) * self.noise_scale
        )
        images = self._render(latents)
        if self.label_noise > 0:
            flip = rng.random(n) < self.label_noise
            labels = labels.copy()
            labels[flip] = rng.integers(0, self.num_classes, size=int(flip.sum()))
        return images, labels

    def make_bundle(
        self,
        n_train: int,
        n_test: int,
        n_public: int,
        seed: int = 0,
    ) -> FederatedDataBundle:
        """Draw disjoint train / test / public splits from the task."""
        rng = np.random.default_rng(seed)
        x_train, y_train = self.sample(n_train, rng)
        x_test, y_test = self.sample(n_test, rng)
        x_public, y_public = self.sample(n_public, rng)
        return FederatedDataBundle(
            train=Dataset(x_train, y_train, self.num_classes, f"{self.name}-train"),
            test=Dataset(x_test, y_test, self.num_classes, f"{self.name}-test"),
            public=x_public,
            public_true_labels=y_public,
            num_classes=self.num_classes,
            name=self.name,
        )


def make_task(name: str, seed: int = 0, **overrides) -> SyntheticImageTask:
    """Build a named task; ``"cifar10"``/``"cifar100"`` roles are predefined."""
    # Difficulty calibrated so a centralised MLP on ~1.5k samples reaches
    # roughly CIFAR-level accuracy (~65% for the 10-class task), leaving
    # headroom for the FL methods to differ.
    presets: Dict[str, dict] = {
        "cifar10": dict(
            num_classes=10,
            latent_dim=16,
            class_separation=1.0,
            noise_scale=1.5,
            modes_per_class=4,
            label_noise=0.05,
        ),
        "cifar100": dict(
            num_classes=100,
            latent_dim=32,
            class_separation=1.2,
            noise_scale=1.3,
            modes_per_class=2,
            label_noise=0.05,
        ),
    }
    if name not in presets:
        raise KeyError(f"unknown task '{name}'; choose from {sorted(presets)}")
    config = dict(presets[name])
    config.update(overrides)
    return SyntheticImageTask(seed=seed, name=name, **config)


def synthetic_cifar10(
    n_train: int = 4000,
    n_test: int = 1000,
    n_public: int = 1000,
    image_shape: Tuple[int, int, int] = (3, 8, 8),
    seed: int = 0,
    **overrides,
) -> FederatedDataBundle:
    """CIFAR-10 stand-in: 10-class task with train/test/unlabelled-public splits."""
    task = make_task("cifar10", seed=seed, image_shape=image_shape, **overrides)
    return task.make_bundle(n_train, n_test, n_public, seed=seed + 1)


def synthetic_cifar100(
    n_train: int = 6000,
    n_test: int = 1500,
    n_public: int = 1500,
    image_shape: Tuple[int, int, int] = (3, 8, 8),
    seed: int = 0,
    **overrides,
) -> FederatedDataBundle:
    """CIFAR-100 stand-in: 100-class task (harder, more classes per client)."""
    task = make_task("cifar100", seed=seed, image_shape=image_shape, **overrides)
    return task.make_bundle(n_train, n_test, n_public, seed=seed + 1)
