"""Image augmentation for NCHW batches.

The CIFAR training recipes behind the paper's ResNets use random crops
(shift with zero padding) and horizontal flips.  These numpy
implementations operate on whole batches, are deterministic under a
Generator, and compose through :class:`AugmentPipeline`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

__all__ = [
    "random_horizontal_flip",
    "random_shift",
    "gaussian_noise",
    "AugmentPipeline",
]


def random_horizontal_flip(
    batch: np.ndarray, rng: np.random.Generator, prob: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with probability ``prob``."""
    if batch.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {batch.shape}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"prob must be in [0, 1], got {prob}")
    out = batch.copy()
    flip = rng.random(len(batch)) < prob
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_shift(
    batch: np.ndarray, rng: np.random.Generator, max_shift: int = 1
) -> np.ndarray:
    """Shift each image by up to ``max_shift`` pixels (zero padding).

    Equivalent to the classic pad-then-random-crop CIFAR augmentation.
    """
    if batch.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {batch.shape}")
    if max_shift < 0:
        raise ValueError("max_shift must be >= 0")
    if max_shift == 0:
        return batch.copy()
    n, c, h, w = batch.shape
    padded = np.pad(
        batch, [(0, 0), (0, 0), (max_shift, max_shift), (max_shift, max_shift)]
    )
    out = np.empty_like(batch)
    offsets = rng.integers(0, 2 * max_shift + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def gaussian_noise(
    batch: np.ndarray, rng: np.random.Generator, std: float = 0.05
) -> np.ndarray:
    """Add zero-mean Gaussian pixel noise."""
    if std < 0:
        raise ValueError("std must be >= 0")
    if std == 0:
        return batch.copy()
    return batch + rng.normal(0.0, std, size=batch.shape)


class AugmentPipeline:
    """Compose augmentations; apply to each minibatch before training.

    Example::

        pipeline = AugmentPipeline([
            lambda b, rng: random_shift(b, rng, max_shift=1),
            random_horizontal_flip,
        ], seed=0)
        x_aug = pipeline(x_batch)
    """

    def __init__(
        self,
        transforms: Sequence[Callable[[np.ndarray, np.random.Generator], np.ndarray]],
        seed: int = 0,
    ) -> None:
        self.transforms: List = list(transforms)
        self.rng = np.random.default_rng(seed)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, self.rng)
        return batch
