"""Minibatch iteration utilities."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["batch_iterator", "num_batches"]


def num_batches(n: int, batch_size: int) -> int:
    """Number of minibatches covering ``n`` samples."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return (n + batch_size - 1) // batch_size


def batch_iterator(
    x: np.ndarray,
    y: Optional[np.ndarray] = None,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    extras: Tuple[np.ndarray, ...] = (),
) -> Iterator[tuple]:
    """Yield minibatches of ``(x[, y][, *extras])``.

    ``extras`` are additional per-sample arrays (e.g. teacher logits) sliced
    with the same permutation, which the distillation training loops need.
    """
    n = len(x)
    if y is not None and len(y) != n:
        raise ValueError(f"x/y length mismatch: {n} vs {len(y)}")
    for extra in extras:
        if len(extra) != n:
            raise ValueError("extras must have the same length as x")
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        order = rng.permutation(n)
    else:
        order = np.arange(n)
    for start in range(0, n, batch_size):
        sel = order[start : start + batch_size]
        batch = [x[sel]]
        if y is not None:
            batch.append(y[sel])
        for extra in extras:
            batch.append(extra[sel])
        yield tuple(batch)
