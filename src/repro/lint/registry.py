"""Rule registry: every lint rule self-registers with docs and scoping.

A rule is a function ``check(ctx) -> Iterator[Tuple[node_or_pos, message]]``
decorated with :func:`register`.  The engine builds
:class:`~repro.lint.findings.Finding` objects from what it yields, so
rules stay tiny: walk ``ctx.tree``, yield the offending node and a
message.

Scoping: ``packages`` restricts a rule to modules whose dotted name
starts with one of the given prefixes (empty = everywhere), ``exclude``
carves out allowlisted subtrees (e.g. ``repro.obs`` may call
``time.time()``).  Modules whose name cannot be derived (ad-hoc
snippets) only run unscoped rules unless the caller supplies one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .findings import SEVERITIES

__all__ = ["Rule", "register", "all_rules", "get_rule", "packs"]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule plus its catalog metadata."""

    id: str
    pack: str
    severity: str
    summary: str
    description: str
    check: Callable
    packages: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    #: Flow rules read ``ctx.project`` (the whole-program model) instead
    #: of ``ctx.tree``; the engine runs them after all files are
    #: summarised and never caches their findings.
    requires_project: bool = False

    def applies_to(self, module: str) -> bool:
        """Whether this rule runs on the dotted module name ``module``."""
        if any(module == p or module.startswith(p + ".") for p in self.exclude):
            return False
        if not self.packages:
            return True
        return any(
            module == p or module.startswith(p + ".") for p in self.packages
        )


_REGISTRY: Dict[str, Rule] = {}


def register(
    rule_id: str,
    *,
    pack: str,
    severity: str = "error",
    summary: str,
    description: str,
    packages: Tuple[str, ...] = (),
    exclude: Tuple[str, ...] = (),
    requires_project: bool = False,
) -> Callable:
    """Decorator registering ``check`` under ``rule_id``."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity '{severity}' for rule {rule_id}")

    def decorator(check: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id '{rule_id}'")
        _REGISTRY[rule_id] = Rule(
            id=rule_id,
            pack=pack,
            severity=severity,
            summary=summary,
            description=description,
            check=check,
            packages=tuple(packages),
            exclude=tuple(exclude),
            requires_project=requires_project,
        )
        return check

    return decorator


def _ensure_loaded() -> None:
    # Importing the rules package executes every @register decorator.
    from . import rules  # noqa: F401  (import for side effect)


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by (pack, id) for stable output."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda r: (r.pack, r.id))


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[rule_id]


def packs() -> List[str]:
    """Sorted distinct pack names."""
    return sorted({rule.pack for rule in all_rules()})
