"""Finding and severity primitives shared across the lint engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding", "SEVERITIES"]

#: Recognised severities, most severe first.  ``error`` findings are meant
#: to gate CI; ``warning`` findings inform but still fail a clean run so
#: they cannot silently accumulate (baseline them instead).
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``line``/``col`` are 1-based line and 0-based column, matching the
    ``ast`` node they came from.  Baseline matching deliberately ignores
    them (see :meth:`key`): unrelated edits move code around, and a
    grandfathered finding should stay grandfathered until its content
    changes.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def key(self) -> Tuple[str, str, str]:
        """Identity used by the baseline: rule + file + message."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        """``file:line:col: severity RULE message`` (clickable in editors)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule} {self.message}"
        )
