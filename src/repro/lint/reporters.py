"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json
from typing import List

from .engine import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one ``file:line:col`` line per finding."""
    lines: List[str] = [f.render() for f in result.findings]
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)} grandfathered):")
        lines.extend(f"  {f.render()}" for f in result.baselined)
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry (violation no longer found, delete it): "
            f"{entry.rule} {entry.path} {entry.message!r}"
        )
    lines.append(
        f"{result.files} file(s): {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, {result.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": [e.to_dict() for e in result.stale_baseline],
        "suppressed": result.suppressed,
        "files": result.files,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
