"""Render a :class:`~repro.lint.engine.LintResult` as text, JSON or SARIF."""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import LintResult
from .findings import Finding

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one ``file:line:col`` line per finding."""
    lines: List[str] = [f.render() for f in result.findings]
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)} grandfathered):")
        lines.extend(f"  {f.render()}" for f in result.baselined)
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry (violation no longer found, delete it): "
            f"{entry.rule} {entry.path} {entry.message!r}"
        )
    lines.append(
        f"{result.files} file(s): {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, {result.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": [e.to_dict() for e in result.stale_baseline],
        "suppressed": result.suppressed,
        "files": result.files,
        "cache_hits": result.cache_hits,
        "reanalysed": sorted(result.reanalysed),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def _sarif_rule(rule_id: str) -> dict:
    """Catalog metadata for one rule id (tolerant of pseudo-rules)."""
    from .registry import all_rules

    for rule in all_rules():
        if rule.id == rule_id:
            return {
                "id": rule.id,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS.get(rule.severity, "error")
                },
                "properties": {"pack": rule.pack},
            }
    return {
        "id": rule_id,
        "shortDescription": {"text": rule_id},
        "defaultConfiguration": {"level": "error"},
    }


def _sarif_result(finding: Finding, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _SARIF_LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        # Baselined findings ship as externally-suppressed results so
        # code-scanning shows them as dismissed instead of new.
        result["suppressions"] = [{"kind": "external"}]
    return result


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 — the format GitHub code scanning ingests.

    New findings become active results; baselined ones are included with
    an external suppression so annotation counts match the gate.
    """
    results = [_sarif_result(f, suppressed=False) for f in result.findings]
    results += [_sarif_result(f, suppressed=True) for f in result.baselined]
    rule_ids: Dict[str, None] = {}
    for finding in [*result.findings, *result.baselined]:
        rule_ids.setdefault(finding.rule)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/LINT.md",
                        "rules": [_sarif_rule(rid) for rid in sorted(rule_ids)],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
