"""``repro lint`` subcommand.

Two modes behind one entrypoint:

- static analysis (default)::

      repro lint src/ --baseline .reprolint-baseline.json
      repro lint src/ --format json
      repro lint src/ --write-baseline .reprolint-baseline.json

- trace validation (``--traces``): the files are JSONL traces, checked
  against the :mod:`repro.obs` schema::

      repro lint --traces run.trace.jsonl --metrics run.metrics.jsonl \\
          --expect-scopes run,round --expect-events fedpkd/filter

Exit codes: 0 clean, 1 findings/validation failures, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baseline import Baseline
from .engine import LintEngine
from .reporters import render_json, render_text

__all__ = ["add_lint_parser", "cmd_lint", "main"]


def _csv(value: str) -> List[str]:
    return [item for item in value.split(",") if item]


def add_lint_parser(sub) -> argparse.ArgumentParser:
    """Attach the ``lint`` subparser to a ``repro`` subparsers object."""
    lint_p = sub.add_parser(
        "lint",
        help="static analysis of the source tree (or --traces validation)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src); trace files with --traces",
    )
    lint_p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="grandfathered-findings file; matching findings do not fail the run",
    )
    lint_p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write all current findings to PATH as the new baseline and exit 0",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    lint_p.add_argument(
        "--rules",
        type=_csv,
        default=None,
        metavar="R1,R2",
        help="run only these rule ids",
    )
    lint_p.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined (grandfathered) findings",
    )
    lint_p.add_argument(
        "--traces",
        action="store_true",
        help="treat the paths as JSONL traces and validate them against "
        "the obs schema instead of linting source",
    )
    lint_p.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="with --traces: also validate this metrics export",
    )
    lint_p.add_argument(
        "--expect-scopes",
        type=_csv,
        default=[],
        metavar="S1,S2",
        help="with --traces: fail unless every listed scope appears",
    )
    lint_p.add_argument(
        "--expect-events",
        type=_csv,
        default=[],
        metavar="N1,N2",
        help="with --traces: fail unless every listed span/event name appears",
    )
    return lint_p


def _cmd_traces(args: argparse.Namespace) -> int:
    from .traces import validate_traces

    if not args.paths:
        print("--traces needs at least one trace file", file=sys.stderr)
        return 2
    exit_code = 0
    for trace in args.paths:
        result = validate_traces(
            trace,
            metrics_path=args.metrics,
            expect_scopes=args.expect_scopes,
            expect_events=args.expect_events,
        )
        for line in result.messages:
            print(line)
        for line in result.errors:
            print(line, file=sys.stderr)
        if not result.ok:
            exit_code = 1
    return exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    if args.traces:
        return _cmd_traces(args)

    engine = LintEngine()
    if args.rules:
        known = {rule.id: rule for rule in engine.rules}
        unknown = [r for r in args.rules if r not in known]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        engine.rules = [known[r] for r in args.rules]

    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read baseline '{args.baseline}': {exc}", file=sys.stderr)
        return 2

    try:
        result = engine.lint_paths(args.paths, baseline=baseline)
    except OSError as exc:
        print(f"cannot lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        merged = result.findings + result.baselined
        Baseline.from_findings(merged, justification="TODO: justify").save(
            args.write_baseline
        )
        print(
            f"baseline with {len(merged)} finding(s) written to "
            f"{args.write_baseline}; fill in the justifications"
        )
        return 0

    if args.output_format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entrypoint (``python -m repro.lint.cli``)."""
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(prog="repro lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    return cmd_lint(parser.parse_args(["lint", *argv]))


if __name__ == "__main__":
    sys.exit(main())
