"""``repro lint`` subcommand.

Two modes behind one entrypoint:

- static analysis (default)::

      repro lint src/ --baseline .reprolint-baseline.json
      repro lint src/ --format json
      repro lint src/ --format sarif > reprolint.sarif
      repro lint src/ --changed            # findings in changed files only
      repro lint src/ --baseline .reprolint-baseline.json --prune-baseline
      repro lint src/ --write-baseline .reprolint-baseline.json

  A per-file incremental cache (``.reprolint-cache.json``; override with
  ``--cache PATH``, disable with ``--no-cache``) makes warm passes skip
  parsing/summarising unchanged files — flow findings are recomputed
  from cached summaries every pass, so results never depend on cache
  state.

- trace validation (``--traces``): the files are JSONL traces, checked
  against the :mod:`repro.obs` schema::

      repro lint --traces run.trace.jsonl --metrics run.metrics.jsonl \\
          --expect-scopes run,round --expect-events fedpkd/filter

Exit codes: 0 clean, 1 findings/validation failures, 2 usage errors.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from typing import List, Optional, Set

from .baseline import Baseline
from .cache import LintCache, cache_signature
from .engine import LintEngine
from .reporters import render_json, render_sarif, render_text

__all__ = ["add_lint_parser", "cmd_lint", "main"]

DEFAULT_CACHE_PATH = ".reprolint-cache.json"


def _csv(value: str) -> List[str]:
    return [item for item in value.split(",") if item]


def add_lint_parser(sub) -> argparse.ArgumentParser:
    """Attach the ``lint`` subparser to a ``repro`` subparsers object."""
    lint_p = sub.add_parser(
        "lint",
        help="static analysis of the source tree (or --traces validation)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src); trace files with --traces",
    )
    lint_p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="grandfathered-findings file; matching findings do not fail the run",
    )
    lint_p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write all current findings to PATH as the new baseline and exit 0",
    )
    lint_p.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite --baseline with stale entries removed, then report as usual",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    lint_p.add_argument(
        "--rules",
        type=_csv,
        default=None,
        metavar="R1,R2",
        help="run only these rule ids",
    )
    lint_p.add_argument(
        "--cache",
        default=DEFAULT_CACHE_PATH,
        metavar="PATH",
        help=f"incremental cache file (default: {DEFAULT_CACHE_PATH})",
    )
    lint_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    lint_p.add_argument(
        "--changed",
        action="store_true",
        help="report findings only in files changed per git (working tree "
        "vs HEAD, plus untracked); the whole program is still analysed",
    )
    lint_p.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined (grandfathered) findings",
    )
    lint_p.add_argument(
        "--traces",
        action="store_true",
        help="treat the paths as JSONL traces and validate them against "
        "the obs schema instead of linting source",
    )
    lint_p.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="with --traces: also validate this metrics export",
    )
    lint_p.add_argument(
        "--expect-scopes",
        type=_csv,
        default=[],
        metavar="S1,S2",
        help="with --traces: fail unless every listed scope appears",
    )
    lint_p.add_argument(
        "--expect-events",
        type=_csv,
        default=[],
        metavar="N1,N2",
        help="with --traces: fail unless every listed span/event name appears",
    )
    return lint_p


def _cmd_traces(args: argparse.Namespace) -> int:
    from .traces import validate_traces

    if not args.paths:
        print("--traces needs at least one trace file", file=sys.stderr)
        return 2
    exit_code = 0
    for trace in args.paths:
        result = validate_traces(
            trace,
            metrics_path=args.metrics,
            expect_scopes=args.expect_scopes,
            expect_events=args.expect_events,
        )
        for line in result.messages:
            print(line)
        for line in result.errors:
            print(line, file=sys.stderr)
        if not result.ok:
            exit_code = 1
    return exit_code


def _git_changed_files() -> Set[str]:
    """Display paths (relative, ``/``-separated) git considers changed."""
    changed: Set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=True
        )
        changed.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return changed


def cmd_lint(args: argparse.Namespace) -> int:
    if args.traces:
        return _cmd_traces(args)

    if args.prune_baseline and not args.baseline:
        print("--prune-baseline requires --baseline", file=sys.stderr)
        return 2
    if args.prune_baseline and args.changed:
        # --changed sees only part of the program's findings, so every
        # entry elsewhere would look stale and pruning would eat them
        print("--prune-baseline cannot be combined with --changed", file=sys.stderr)
        return 2

    engine = LintEngine()
    if args.rules:
        known = {rule.id: rule for rule in engine.rules}
        unknown = [r for r in args.rules if r not in known]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        engine.rules = [known[r] for r in args.rules]

    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read baseline '{args.baseline}': {exc}", file=sys.stderr)
        return 2

    report_only: Optional[Set[str]] = None
    if args.changed:
        try:
            report_only = _git_changed_files()
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"--changed needs a git checkout: {exc}", file=sys.stderr)
            return 2

    cache = None
    if not args.no_cache:
        cache = LintCache(args.cache, cache_signature(engine.rules))

    try:
        result = engine.lint_paths(
            args.paths, baseline=baseline, cache=cache, report_only=report_only
        )
    except OSError as exc:
        print(f"cannot lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        merged = result.findings + result.baselined
        Baseline.from_findings(merged, justification="TODO: justify").save(
            args.write_baseline
        )
        print(
            f"baseline with {len(merged)} finding(s) written to "
            f"{args.write_baseline}; fill in the justifications"
        )
        return 0

    if args.prune_baseline:
        stale_keys = {entry.key() for entry in result.stale_baseline}
        kept = [e for e in baseline.entries if e.key() not in stale_keys]
        removed = len(baseline.entries) - len(kept)
        if removed:
            baseline.entries = kept
            baseline.save(args.baseline)
        print(
            f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
            f"from {args.baseline} ({len(kept)} kept)"
        )
        result.stale_baseline = []

    if args.output_format == "json":
        print(render_json(result))
    elif args.output_format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entrypoint (``python -m repro.lint.cli``)."""
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(prog="repro lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    return cmd_lint(parser.parse_args(["lint", *argv]))


if __name__ == "__main__":
    sys.exit(main())
