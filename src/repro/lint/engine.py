"""The lint engine: file discovery, parsing, rule dispatch, suppression.

Zero third-party dependencies — parsing is stdlib :mod:`ast`, so the
engine analyses exactly what CPython would execute and never needs the
code imported (fixture files with deliberate violations stay inert).

Flow per file: parse → build a :class:`ModuleContext` → run every rule
whose package scope covers the module → drop findings suppressed by
``# lint: disable`` pragmas.  Baseline application is a separate step
(:meth:`repro.lint.baseline.Baseline.apply`) so callers can distinguish
*new* findings from *grandfathered* ones.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineEntry
from .findings import Finding
from .pragmas import PragmaIndex
from .registry import Rule, all_rules

__all__ = ["ModuleContext", "LintResult", "LintEngine", "module_name_for"]


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    ``src/repro/nn/tensor.py`` → ``repro.nn.tensor``.  Anything without a
    ``repro`` component gets its bare stem, which only unscoped rules
    match — callers who want package-scoped rules on loose files pass an
    explicit module name instead.
    """
    parts = os.path.normpath(path).split(os.sep)
    stem = [p[:-3] if p.endswith(".py") else p for p in parts]
    if stem and stem[-1] == "__init__":
        stem = stem[:-1]
    if "repro" in stem:
        stem = stem[stem.index("repro"):]
        return ".".join(stem)
    return stem[-1] if stem else ""


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    @classmethod
    def from_source(
        cls, source: str, path: str, module: Optional[str] = None
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=module if module is not None else module_name_for(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def is_package_init(self) -> bool:
        return os.path.basename(self.path) == "__init__.py"


@dataclass
class LintResult:
    """Outcome of one lint pass (before and after baseline application)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing new was found (baselined findings pass)."""
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files += other.files


def _iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def _position(node) -> Tuple[int, int]:
    if isinstance(node, tuple):
        return node
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)


class LintEngine:
    """Run a set of rules over files, sources, or whole trees."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        root: Optional[str] = None,
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.root = root or os.getcwd()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(
        self,
        source: str,
        path: str = "<snippet>",
        module: Optional[str] = None,
    ) -> LintResult:
        result = LintResult(files=1)
        try:
            ctx = ModuleContext.from_source(source, path, module=module)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule="syntax-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            return result
        pragmas = PragmaIndex.from_source(source)
        for rule in self.rules:
            if not rule.applies_to(ctx.module):
                continue
            for node, message in rule.check(ctx):
                line, col = _position(node)
                if pragmas.suppresses(rule.id, line):
                    result.suppressed += 1
                    continue
                result.findings.append(
                    Finding(
                        rule=rule.id,
                        path=path,
                        line=line,
                        col=col,
                        message=message,
                        severity=rule.severity,
                    )
                )
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result

    def lint_file(self, path: str) -> LintResult:
        with open(path, encoding="utf-8") as f:
            source = f.read()
        display = os.path.relpath(path, self.root)
        if display.startswith(".."):
            display = path
        return self.lint_source(source, path=display.replace(os.sep, "/"))

    def lint_paths(
        self, paths: Sequence[str], baseline: Optional[Baseline] = None
    ) -> LintResult:
        result = LintResult()
        for path in _iter_py_files(paths):
            result.extend(self.lint_file(path))
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        if baseline is not None:
            new, baselined, stale = baseline.apply(result.findings)
            result.findings = new
            result.baselined = baselined
            result.stale_baseline = stale
        return result
