"""The lint engine: file discovery, parsing, rule dispatch, suppression.

Zero third-party dependencies — parsing is stdlib :mod:`ast`, so the
engine analyses exactly what CPython would execute and never needs the
code imported (fixture files with deliberate violations stay inert).

Two rule tiers run per pass:

- **syntactic** rules see one parsed module at a time (``ctx.tree``);
  their findings are cacheable per file because nothing outside the
  file can change them;
- **flow** rules (``requires_project=True``) run once all files are
  summarised, against the :class:`~repro.lint.flow.ProjectModel`;
  their findings depend on the whole program and are recomputed every
  pass — the incremental cache only skips the per-file parse/summarise
  step, never the global propagation, so warm results are identical to
  cold ones by construction.

Suppression: a ``# lint: disable`` pragma suppresses a finding if it
sits on any *candidate line* of the flagged construct — the anchor line,
any line of a multi-line simple statement, or the ``def``/decorator
lines of a function — so decorating or wrapping a statement never
strands a pragma.  Baseline application is a separate step
(:meth:`repro.lint.baseline.Baseline.apply`) so callers can distinguish
*new* findings from *grandfathered* ones.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import Baseline, BaselineEntry
from .cache import LintCache, content_hash
from .findings import Finding
from .flow import ProjectModel, summarize_module
from .pragmas import PragmaIndex
from .registry import Rule, all_rules

__all__ = ["ModuleContext", "LintResult", "LintEngine", "module_name_for"]


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    ``src/repro/nn/tensor.py`` → ``repro.nn.tensor``.  Anything without a
    ``repro`` component gets its bare stem, which only unscoped rules
    match — callers who want package-scoped rules on loose files pass an
    explicit module name instead.
    """
    parts = os.path.normpath(path).split(os.sep)
    stem = [p[:-3] if p.endswith(".py") else p for p in parts]
    if stem and stem[-1] == "__init__":
        stem = stem[:-1]
    if "repro" in stem:
        stem = stem[stem.index("repro"):]
        return ".".join(stem)
    return stem[-1] if stem else ""


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module.

    For flow rules replayed from cached summaries, ``source`` is empty
    and ``tree`` is None — only ``module``, ``path`` and ``project`` are
    meaningful, which is all a ``requires_project`` rule may touch.
    """

    path: str
    module: str
    source: str
    tree: Optional[ast.AST]
    lines: List[str] = field(default_factory=list)
    project: Optional[ProjectModel] = None

    @classmethod
    def from_source(
        cls, source: str, path: str, module: Optional[str] = None
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=module if module is not None else module_name_for(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def is_package_init(self) -> bool:
        return os.path.basename(self.path) == "__init__.py"


@dataclass
class LintResult:
    """Outcome of one lint pass (before and after baseline application)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    reanalysed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing new was found (baselined findings pass)."""
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files += other.files


def _iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def _position(node) -> Tuple[int, int]:
    if isinstance(node, tuple):
        return node[0], node[1]
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)


_HEADER_ONLY_STMTS = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.If,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def _pragma_lines(node) -> List[int]:
    """Candidate lines on which a pragma suppresses this finding.

    - position tuples: the anchor line plus any extra lines the rule
      supplied as a third element (flow rules pass the statement span);
    - functions/classes: the ``def``/``class`` line and every decorator
      line, so ``# lint: disable`` above a decorated function works;
    - compound statements: the header line only (a pragma inside the
      body should not silence the header);
    - everything else: the node's full line span, so a pragma on any
      physical line of a multi-line statement counts.
    """
    if isinstance(node, tuple):
        lines = [node[0]]
        if len(node) > 2:
            lines.extend(int(line) for line in node[2])
        return lines
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [node.lineno] + [dec.lineno for dec in node.decorator_list]
    if isinstance(node, _HEADER_ONLY_STMTS):
        return [node.lineno]
    lineno = getattr(node, "lineno", 1)
    end = getattr(node, "end_lineno", None) or lineno
    return list(range(lineno, end + 1))


class LintEngine:
    """Run a set of rules over files, sources, or whole trees."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        root: Optional[str] = None,
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.root = root or os.getcwd()

    @property
    def syntactic_rules(self) -> List[Rule]:
        return [rule for rule in self.rules if not rule.requires_project]

    @property
    def flow_rules(self) -> List[Rule]:
        return [rule for rule in self.rules if rule.requires_project]

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(
        self,
        source: str,
        path: str = "<snippet>",
        module: Optional[str] = None,
    ) -> LintResult:
        """Lint one in-memory module.

        Flow rules see a single-module :class:`ProjectModel` built from
        this source alone — exactly the view the fixture tests need.
        """
        result = LintResult(files=1)
        record = self._analyse(source, path, module=module)
        for data in record["findings"]:
            result.findings.append(Finding(**data))
        result.suppressed += record["suppressed"]
        if self.flow_rules and record["summary"] is not None:
            project = ProjectModel({record["module"]: record["summary"]})
            flow = self._run_flow_rules(project, [record])
            result.findings.extend(flow.findings)
            result.suppressed += flow.suppressed
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result

    def lint_file(self, path: str) -> LintResult:
        with open(path, encoding="utf-8") as f:
            source = f.read()
        return self.lint_source(source, path=self._display(path))

    def lint_paths(
        self,
        paths: Sequence[str],
        baseline: Optional[Baseline] = None,
        cache: Optional[LintCache] = None,
        report_only: Optional[Set[str]] = None,
    ) -> LintResult:
        """Lint a file set with optional caching and report filtering.

        ``report_only`` (the ``--changed`` mode) restricts *reported*
        findings to the given display paths while still analysing every
        file — flow rules need the whole program either way.  Stale
        baseline detection is disabled in that mode: entries for files
        outside the filter would all look stale.
        """
        result = LintResult()
        records: List[dict] = []
        for path in _iter_py_files(paths):
            display = self._display(path)
            record = self._cached_record(path, display, cache)
            if record is None:
                with open(path, encoding="utf-8") as f:
                    source = f.read()
                record = self._analyse(source, display)
                if cache is not None:
                    stat = os.stat(path)
                    cache.put(
                        display,
                        content_hash(source.encode("utf-8")),
                        stat.st_mtime_ns,
                        stat.st_size,
                        record,
                    )
                result.reanalysed.append(display)
            else:
                result.cache_hits += 1
            records.append(record)
            result.files += 1
            result.suppressed += record["suppressed"]
            for data in record["findings"]:
                result.findings.append(Finding(**data))

        if self.flow_rules:
            summaries = {}
            for record in records:
                if record["summary"] is not None:
                    summaries.setdefault(record["module"], record["summary"])
            flow = self._run_flow_rules(ProjectModel(summaries), records)
            result.findings.extend(flow.findings)
            result.suppressed += flow.suppressed

        if cache is not None:
            cache.prune([record["path"] for record in records])
            cache.save()

        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        if report_only is not None:
            result.findings = [
                f for f in result.findings if f.path in report_only
            ]
        if baseline is not None:
            new, baselined, stale = baseline.apply(result.findings)
            result.findings = new
            result.baselined = baselined
            result.stale_baseline = [] if report_only is not None else stale
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _display(self, path: str) -> str:
        display = os.path.relpath(path, self.root)
        if display.startswith(".."):
            display = path
        return display.replace(os.sep, "/")

    def _cached_record(
        self, path: str, display: str, cache: Optional[LintCache]
    ) -> Optional[dict]:
        if cache is None:
            return None
        entry = cache.get(display)
        if entry is None:
            return None
        try:
            stat = os.stat(path)
        except OSError:
            return None
        if (
            entry["mtime_ns"] == stat.st_mtime_ns
            and entry["size"] == stat.st_size
        ):
            return entry["record"]
        try:
            with open(path, "rb") as f:
                digest = content_hash(f.read())
        except OSError:
            return None
        if digest == entry["sha256"]:
            cache.touch(display, stat.st_mtime_ns, stat.st_size)
            return entry["record"]
        return None

    def _analyse(
        self, source: str, display: str, module: Optional[str] = None
    ) -> dict:
        """Produce the cacheable per-file record (syntactic tier only)."""
        try:
            ctx = ModuleContext.from_source(source, display, module=module)
        except SyntaxError as exc:
            finding = Finding(
                rule="syntax-error",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse: {exc.msg}",
            )
            return {
                "module": module or module_name_for(display),
                "path": display,
                "findings": [finding.to_dict()],
                "suppressed": 0,
                "summary": None,
            }
        pragmas = PragmaIndex.from_source(source)
        findings: List[Finding] = []
        suppressed = 0
        for rule in self.syntactic_rules:
            if not rule.applies_to(ctx.module):
                continue
            for node, message in rule.check(ctx):
                line, col = _position(node)
                if pragmas.suppresses_any(rule.id, _pragma_lines(node)):
                    suppressed += 1
                    continue
                findings.append(
                    Finding(
                        rule=rule.id,
                        path=display,
                        line=line,
                        col=col,
                        message=message,
                        severity=rule.severity,
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        summary = None
        if isinstance(ctx.tree, ast.Module):
            summary = summarize_module(ctx.tree, ctx.module, display, source)
        return {
            "module": ctx.module,
            "path": display,
            "findings": [f.to_dict() for f in findings],
            "suppressed": suppressed,
            "summary": summary,
        }

    def _run_flow_rules(
        self, project: ProjectModel, records: Sequence[dict]
    ) -> LintResult:
        """Run ``requires_project`` rules against the assembled model."""
        result = LintResult()
        for record in records:
            summary = record["summary"]
            if summary is None:
                continue
            pragmas = PragmaIndex.from_dict(summary["pragmas"])
            ctx = ModuleContext(
                path=record["path"],
                module=record["module"],
                source="",
                tree=None,
                project=project,
            )
            for rule in self.flow_rules:
                if not rule.applies_to(ctx.module):
                    continue
                for node, message in rule.check(ctx):
                    line, col = _position(node)
                    if pragmas.suppresses_any(rule.id, _pragma_lines(node)):
                        result.suppressed += 1
                        continue
                    result.findings.append(
                        Finding(
                            rule=rule.id,
                            path=record["path"],
                            line=line,
                            col=col,
                            message=message,
                            severity=rule.severity,
                        )
                    )
        return result
