"""Whole-program model assembled from per-module summaries.

:class:`ProjectModel` owns four global analyses, each exposed as a
memoised ``*_findings()`` method returning plain dicts keyed by module
so the corresponding ``flow-*`` rule can filter to the module it is
currently reporting on:

- **dtype flow** — implicit float64 allocation sites are turned into
  graph nodes along with function params/returns and class attribute
  slots; taint edges from the per-function summaries are resolved
  against the call graph and a reverse reachability pass from the two
  sinks (wire payloads, the training hot path) decides which
  allocations actually matter;
- **checkpoint completeness** — mutable ``self.*`` attributes of every
  ``FederatedAlgorithm`` subclass diffed against the
  ``extra_state()``/``load_extra_state()`` round-trip (and the
  ``state_dict`` analogue for the optimizer/scheduler family, including
  attributes written from *outside* the class via annotated handles
  such as ``self.optimizer.scheduled_base_lr``);
- **run-key drift** — every ``FederationConfig`` field must be
  classified in ``CONFIG_FIELD_CLASSIFICATION`` and the key/runtime/
  managed categories must agree with the sweep normalisation tuples;
- **async protocol** — ``supports_async = True`` implementors must
  match the three-method engine protocol signatures exactly.

The model is rebuilt from summaries on every pass (it is cheap — no
parsing); only the summaries themselves are cached per file.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ALWAYS_DTYPE_MODULES",
    "DTYPE_ZONE",
    "HOT_MODULE_PREFIXES",
    "BASE_MANAGED_ATTRS",
    "ASYNC_PROTOCOL",
    "ProjectModel",
]

#: Modules whose code *is* the training hot path: taint arriving here is
#: flagged without needing to reach a further sink.
HOT_MODULE_PREFIXES: Tuple[str, ...] = ("repro.nn", "repro.fl.training")

#: Modules where an implicit float64 allocation is flagged
#: unconditionally — per-sample tensors and wire-adjacent buffers are
#: built here and a float64 among them is never intended.
ALWAYS_DTYPE_MODULES: Tuple[str, ...] = (
    "repro.nn",
    "repro.fl.training",
    "repro.fl.client",
    "repro.fl.compression",
    "repro.core.prototypes",
)

#: Modules participating in the flow analysis at all: an implicit
#: allocation here is flagged only if it can reach a sink.
DTYPE_ZONE: Tuple[str, ...] = ("repro.core", "repro.fl", "repro.baselines", "repro.nn")

#: Attributes owned and round-tripped by the FederatedAlgorithm base /
#: the engine plumbing — subclasses store into them but are not
#: responsible for persisting them.
BASE_MANAGED_ATTRS = frozenset(
    {
        "federation",
        "rng",
        "obs",
        "round_index",
        "dropout_log",
        "async_engine",
        "_pending_wall_time",
        "_pending_stage_times",
        "_pending_dropouts",
    }
)

#: The async round-engine protocol: method name → exact parameter list.
ASYNC_PROTOCOL: Dict[str, Tuple[str, ...]] = {
    "async_dispatch_state": ("self",),
    "async_client_work": ("self", "participants", "snapshot"),
    "async_server_update": ("self", "contributions", "client_weights", "contributors"),
}

_EXTRA_STATE_EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "load_extra_state", "load_pending_state", "load_state_dict"}
)
_STATE_DICT_EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "load_state_dict"}
)
_OPTIM_BASE_NAMES = ("Optimizer", "LRScheduler")
_CONFIG_CATEGORY_TUPLES = {
    "key": "_KEY_SETTING_FIELDS",
    "runtime": "_RUNTIME_SETTING_FIELDS",
    "managed": "_MANAGED_FIELDS",
}
_CONFIG_CATEGORIES = ("key", "runtime", "managed", "derived", "pinned")


def _has_prefix(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class ProjectModel:
    """Resolved class hierarchy + call graph over a set of summaries."""

    def __init__(self, summaries: Dict[str, dict]) -> None:
        self.summaries = dict(summaries)
        # fullname ("mod.Class") → {"module", "summary"}
        self.classes: Dict[str, dict] = {}
        self._by_basename: Dict[str, List[str]] = {}
        # function key ("mod.qual") → {"module", "summary", "owner"}
        self.functions: Dict[str, dict] = {}
        self._method_owners: Dict[str, List[str]] = {}
        for module, summary in self.summaries.items():
            for cname, cls in summary.get("classes", {}).items():
                fullname = f"{module}.{cname}"
                self.classes[fullname] = {"module": module, "summary": cls}
                self._by_basename.setdefault(cname, []).append(fullname)
                for mname in cls.get("methods", {}):
                    self._method_owners.setdefault(mname, []).append(fullname)
            for qual, fn in summary.get("functions", {}).items():
                owner = None
                if "." in qual:
                    owner = f"{module}.{qual.rsplit('.', 1)[0]}"
                self.functions[f"{module}.{qual}"] = {
                    "module": module,
                    "summary": fn,
                    "owner": owner,
                }
        self._ancestor_cache: Dict[str, Tuple[List[str], List[str]]] = {}
        self._analyses: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # name / hierarchy resolution
    # ------------------------------------------------------------------
    def resolve_class(self, module: str, chain: Sequence[str]) -> Optional[str]:
        """Resolve a dotted name used in *module* to a project class."""
        if not chain:
            return None
        summary = self.summaries.get(module, {})
        local = f"{module}.{chain[-1]}"
        if len(chain) == 1 and local in self.classes:
            return local
        imports = summary.get("imports", {})
        if chain[0] in imports:
            dotted = ".".join([imports[chain[0]], *chain[1:]])
            if dotted in self.classes:
                return dotted
        candidates = self._by_basename.get(chain[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _bases(self, fullname: str) -> Tuple[List[str], List[str]]:
        """(resolved project base fullnames, unresolved dotted bases)."""
        entry = self.classes[fullname]
        resolved: List[str] = []
        external: List[str] = []
        for base in entry["summary"].get("bases", []):
            target = self.resolve_class(entry["module"], base)
            if target is not None and target != fullname:
                resolved.append(target)
            else:
                external.append(".".join(base))
        return resolved, external

    def ancestors(self, fullname: str) -> Tuple[List[str], List[str]]:
        """Transitive (project ancestors, external base names) for a class."""
        if fullname in self._ancestor_cache:
            return self._ancestor_cache[fullname]
        self._ancestor_cache[fullname] = ([], [])  # cycle guard
        resolved: List[str] = []
        external: List[str] = []
        seen: Set[str] = set()
        queue = deque([fullname])
        while queue:
            current = queue.popleft()
            bases, ext = self._bases(current)
            external.extend(e for e in ext if e not in external)
            for base in bases:
                if base not in seen:
                    seen.add(base)
                    resolved.append(base)
                    queue.append(base)
        self._ancestor_cache[fullname] = (resolved, external)
        return resolved, external

    def is_subclass_of(self, fullname: str, target: str) -> bool:
        """True if any ancestor matches *target* (dotted or basename)."""
        resolved, external = self.ancestors(fullname)
        for anc in resolved:
            if anc == target or anc.rsplit(".", 1)[-1] == target:
                return True
        for ext in external:
            if ext == target or ext.rsplit(".", 1)[-1] == target:
                return True
        return False

    def root_owner(self, fullname: str) -> str:
        """Rootmost project ancestor along the first-base chain.

        Attribute slots are unified onto this owner so that a store in a
        subclass and a load in the base (or a sibling) share one node.
        """
        current = fullname
        seen = {current}
        while True:
            bases, _ = self._bases(current)
            if not bases or bases[0] in seen:
                return current
            current = bases[0]
            seen.add(current)

    def find_method(self, fullname: str, name: str) -> Optional[Tuple[str, str]]:
        """(defining class fullname, function key) for a method lookup."""
        chain = [fullname] + self.ancestors(fullname)[0]
        for cls in chain:
            entry = self.classes[cls]
            if name in entry["summary"].get("methods", {}):
                basename = cls.rsplit(".", 1)[-1]
                return cls, f"{entry['module']}.{basename}.{name}"
        return None

    def subclasses_of(self, target: str) -> List[str]:
        return sorted(
            fullname
            for fullname in self.classes
            if self.is_subclass_of(fullname, target)
        )

    # ------------------------------------------------------------------
    # dtype flow
    # ------------------------------------------------------------------
    def _resolve_callee(self, fkey: str, callee: dict) -> Optional[dict]:
        """Resolve an interned callee to a function or constructor.

        Returns ``{"kind": "function", "fkey", "bound"}`` or
        ``{"kind": "ctor", "class"}`` or None when the target is outside
        the project (taint is then dropped at the call boundary).
        """
        info = self.functions[fkey]
        module = info["module"]
        chain = tuple(callee["chain"])
        kind = callee["kind"]
        if kind == "self":
            owner = info["owner"]
            if owner is None or len(chain) != 2:
                return None
            found = self.find_method(owner, chain[-1])
            if found is None:
                return None
            return {"kind": "function", "fkey": found[1], "bound": True}
        if kind == "local":
            if len(chain) == 1:
                target = f"{module}.{chain[0]}"
                if target in self.functions:
                    return {"kind": "function", "fkey": target, "bound": False}
                if target in self.classes:
                    return {"kind": "ctor", "class": target}
            elif len(chain) == 2 and f"{module}.{chain[0]}" in self.classes:
                target = f"{module}.{chain[0]}.{chain[1]}"
                if target in self.functions:
                    return {"kind": "function", "fkey": target, "bound": False}
            return None
        if kind == "import":
            imports = self.summaries.get(module, {}).get("imports", {})
            root = imports.get(chain[0])
            if root is None:
                return None
            dotted = ".".join([root, *chain[1:]])
            if dotted in self.functions:
                return {"kind": "function", "fkey": dotted, "bound": False}
            if dotted in self.classes:
                return {"kind": "ctor", "class": dotted}
            return None
        if kind == "method":
            owners = self._method_owners.get(chain[-1], [])
            if len(owners) == 1:
                found = self.find_method(owners[0], chain[-1])
                if found is not None:
                    return {"kind": "function", "fkey": found[1], "bound": True}
            return None
        return None

    def _dtype_graph(self):
        """Build the taint graph; returns (edges, allocs, attr_nodes)."""
        edges: Dict[str, Set[str]] = {}
        allocs: List[dict] = []
        attr_nodes: Dict[str, str] = {}  # node → owner class fullname

        def add_edge(src: Optional[str], dst: Optional[str]) -> None:
            if src is None or dst is None or src == dst:
                return
            edges.setdefault(src, set()).add(dst)

        def attr_node(owner: Optional[str], name: str) -> str:
            if owner is None:
                return f"oattr:{name}"
            root = self.root_owner(owner)
            node = f"attr:{root}:{name}"
            attr_nodes[node] = root
            return node

        def param_node(target: dict, spec: list) -> Optional[str]:
            tkey = target["fkey"]
            params = self.functions[tkey]["summary"]["params"]
            offset = 1 if target["bound"] else 0
            if spec[0] == "pos":
                idx = spec[1] + offset
            else:
                if spec[1] not in params:
                    return None
                idx = params.index(spec[1])
            if idx >= len(params):
                return None
            return f"param:{tkey}:{idx}"

        def ctor_node(cls: str, spec: list) -> Optional[str]:
            fields = [f["name"] for f in self.classes[cls]["summary"].get("fields", [])]
            if spec[0] == "pos":
                if spec[1] >= len(fields):
                    return None
                name = fields[spec[1]]
            else:
                name = spec[1]
            return attr_node(cls, name)

        for fkey, info in self.functions.items():
            fs = info["summary"]
            owner = info["owner"]
            module = info["module"]
            resolved = [self._resolve_callee(fkey, c) for c in fs["callees"]]

            for alloc in fs["allocs"]:
                allocs.append(
                    {
                        "module": module,
                        "node": f"alloc:{fkey}:{alloc['id']}",
                        "fn": alloc["fn"],
                        "line": alloc["line"],
                        "col": alloc["col"],
                        "lines": alloc["lines"],
                        "function": fkey,
                    }
                )

            def label_node(label: list) -> Optional[str]:
                kind = label[0]
                if kind == "alloc":
                    return f"alloc:{fkey}:{label[1]}"
                if kind == "param":
                    return f"param:{fkey}:{label[1]}"
                if kind == "sattr":
                    return attr_node(owner, label[1])
                if kind == "oattr":
                    return f"oattr:{label[1]}"
                if kind == "cret":
                    target = resolved[label[1]]
                    if target is not None and target["kind"] == "function":
                        return f"ret:{target['fkey']}"
                    return None
                return None

            for src, dst in fs["edges"]:
                src_node = label_node(src)
                if src_node is None:
                    continue
                kind = dst[0]
                if kind == "ret":
                    add_edge(src_node, f"ret:{fkey}")
                elif kind == "sstore":
                    add_edge(src_node, attr_node(owner, dst[1]))
                elif kind == "nstore":
                    owner_attr, attr = dst[1], dst[2]
                    target_cls = None
                    if owner is not None:
                        ann = (
                            self.classes[owner]["summary"]
                            .get("methods", {})
                            .get(fkey.rsplit(".", 1)[-1], {})
                            .get("attr_types", {})
                            .get(owner_attr)
                        ) or self._class_attr_type(owner, owner_attr)
                        if ann is not None:
                            target_cls = self.resolve_class(module, ann.split("."))
                    add_edge(src_node, attr_node(target_cls, attr))
                elif kind == "sink":
                    add_edge(src_node, f"sink:{dst[1]}")
                elif kind == "arg":
                    target = resolved[dst[1]]
                    if target is None:
                        continue
                    if target["kind"] == "function":
                        add_edge(src_node, param_node(target, dst[2]))
                        tmod = self.functions[target["fkey"]]["module"]
                        if _has_prefix(tmod, HOT_MODULE_PREFIXES):
                            add_edge(src_node, "sink:hot")
                    else:
                        add_edge(src_node, ctor_node(target["class"], dst[2]))
                        cmod = self.classes[target["class"]]["module"]
                        if _has_prefix(cmod, HOT_MODULE_PREFIXES):
                            add_edge(src_node, "sink:hot")

            # taint entering a hot-path function's params is already at
            # the sink, whatever the body does with it
            if _has_prefix(module, HOT_MODULE_PREFIXES):
                for idx in range(len(fs["params"])):
                    add_edge(f"param:{fkey}:{idx}", "sink:hot")

        # attribute-slot unification: loads off an unknown object pick up
        # anything stored under the same name, and state held on a
        # hot-module class (e.g. Tensor) is itself hot
        for node, owner in attr_nodes.items():
            add_edge(node, f"oattr:{node.rsplit(':', 1)[-1]}")
            if _has_prefix(self.classes[owner]["module"], HOT_MODULE_PREFIXES):
                add_edge(node, "sink:hot")

        return edges, allocs

    def _class_attr_type(self, fullname: str, attr: str) -> Optional[str]:
        """Annotation-derived type of ``self.<attr>`` anywhere in a class."""
        for cls in [fullname] + self.ancestors(fullname)[0]:
            for ms in self.classes[cls]["summary"].get("methods", {}).values():
                ann = ms.get("attr_types", {}).get(attr)
                if ann:
                    return ann
        return None

    def dtype_findings(self) -> List[dict]:
        """Implicit-float64 allocations that matter, with reach evidence."""
        if "dtype" in self._analyses:
            return self._analyses["dtype"]
        edges, allocs = self._dtype_graph()
        reverse: Dict[str, Set[str]] = {}
        for src, dsts in edges.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        reach: Dict[str, str] = {}
        for sink, reason in (("sink:wire", "a wire payload"), ("sink:hot", "the training hot path")):
            queue = deque([sink])
            while queue:
                node = queue.popleft()
                for src in reverse.get(node, ()):
                    if src not in reach:
                        reach[src] = reason
                        queue.append(src)

        findings: List[dict] = []
        for alloc in allocs:
            module = alloc["module"]
            if not _has_prefix(module, DTYPE_ZONE):
                continue
            if _has_prefix(module, ALWAYS_DTYPE_MODULES):
                reason = "a dtype-sensitive module"
            elif alloc["node"] in reach:
                reason = reach[alloc["node"]]
            else:
                continue
            findings.append(
                {
                    "module": module,
                    "line": alloc["line"],
                    "col": alloc["col"],
                    "lines": alloc["lines"],
                    "message": (
                        f"np.{alloc['fn']}() without dtype= allocates float64 "
                        f"and the value can reach {reason}; pass an explicit "
                        "dtype (np.float32, or np.float64 if deliberate)"
                    ),
                }
            )
        findings.sort(key=lambda f: (f["module"], f["line"], f["col"]))
        self._analyses["dtype"] = findings
        return findings

    # ------------------------------------------------------------------
    # checkpoint completeness
    # ------------------------------------------------------------------
    def _round_trip_sets(
        self, fullname: str, export_method: str, restore_method: str
    ):
        """((exported, export_all, export_site), (restored, restore_all)).

        ``export_site`` is (module, line) of the export method if the
        class hierarchy defines one, else None.
        """
        exported: Set[str] = set()
        export_all = False
        export_site = None
        found = self.find_method(fullname, export_method)
        if found is not None:
            cls, fkey = found
            ms = self.classes[cls]["summary"]["methods"][export_method]
            exported = set(ms["loads"])
            export_all = ms["dynamic_load"]
            export_site = (self.classes[cls]["module"], ms["line"])
        restored: Set[str] = set()
        restore_all = False
        found = self.find_method(fullname, restore_method)
        if found is not None:
            cls, _ = found
            ms = self.classes[cls]["summary"]["methods"][restore_method]
            restored = set(ms["stores"])
            restore_all = ms["dynamic_store"]
        return (exported, export_all, export_site), (restored, restore_all)

    def _mutable_attrs(
        self, fullname: str, exempt_methods: frozenset
    ) -> Dict[str, Tuple[int, str]]:
        """attr → (first store line, method) outside exempt methods."""
        mutable: Dict[str, Tuple[int, str]] = {}
        cls = self.classes[fullname]["summary"]
        for mname, ms in sorted(cls.get("methods", {}).items()):
            if mname in exempt_methods:
                continue
            for attr, locs in ms["stores"].items():
                line = min(loc[0] for loc in locs)
                if attr not in mutable or line < mutable[attr][0]:
                    mutable[attr] = (line, mname)
        return mutable

    def _ancestor_stored(self, fullname: str) -> Set[str]:
        stored: Set[str] = set()
        for anc in self.ancestors(fullname)[0]:
            for ms in self.classes[anc]["summary"].get("methods", {}).values():
                stored.update(ms["stores"])
        return stored

    def extra_state_findings(self) -> List[dict]:
        """FederatedAlgorithm subclasses with un-checkpointed state."""
        if "extra_state" in self._analyses:
            return self._analyses["extra_state"]
        findings: List[dict] = []
        for fullname in self.subclasses_of("FederatedAlgorithm"):
            entry = self.classes[fullname]
            module = entry["module"]
            basename = fullname.rsplit(".", 1)[-1]
            mutable = self._mutable_attrs(fullname, _EXTRA_STATE_EXEMPT_METHODS)
            exempt = self._ancestor_stored(fullname) | BASE_MANAGED_ATTRS
            mutable = {a: v for a, v in mutable.items() if a not in exempt}
            if not mutable:
                continue
            (exported, export_all, export_site), (restored, restore_all) = (
                self._round_trip_sets(fullname, "extra_state", "load_extra_state")
            )
            for attr, (line, mname) in sorted(mutable.items()):
                is_exported = export_all or attr in exported
                is_restored = restore_all or attr in restored
                if is_exported and is_restored:
                    continue
                if is_exported and export_site is not None:
                    findings.append(
                        {
                            "module": export_site[0],
                            "line": export_site[1],
                            "col": 0,
                            "lines": [],
                            "message": (
                                f"{basename}.extra_state() exports '{attr}' but "
                                "load_extra_state() never restores it — resume "
                                "would silently drop the value"
                            ),
                        }
                    )
                else:
                    findings.append(
                        {
                            "module": module,
                            "line": line,
                            "col": 0,
                            "lines": [],
                            "message": (
                                f"{basename}.{mname} mutates 'self.{attr}' but "
                                "extra_state()/load_extra_state() does not "
                                "round-trip it — exact resume would diverge"
                            ),
                        }
                    )
        findings = _dedupe(findings)
        self._analyses["extra_state"] = findings
        return findings

    def state_dict_findings(self) -> List[dict]:
        """Optimizer/LRScheduler family state not covered by state_dict."""
        if "state_dict" in self._analyses:
            return self._analyses["state_dict"]
        # attribute writes applied through an annotated handle on another
        # class: owner class fullname → attr → (writer label, line)
        external: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for fullname, entry in sorted(self.classes.items()):
            module = entry["module"]
            basename = fullname.rsplit(".", 1)[-1]
            for mname, ms in sorted(entry["summary"].get("methods", {}).items()):
                for store in ms["nested_stores"]:
                    ann = ms["attr_types"].get(store["owner"]) or self._class_attr_type(
                        fullname, store["owner"]
                    )
                    if ann is None:
                        continue
                    target = self.resolve_class(module, ann.split("."))
                    if target is None:
                        continue
                    external.setdefault(target, {}).setdefault(
                        store["attr"], (f"{basename}.{mname}", store["line"])
                    )

        findings: List[dict] = []
        for fullname, entry in sorted(self.classes.items()):
            basename = fullname.rsplit(".", 1)[-1]
            if not (
                basename in _OPTIM_BASE_NAMES
                or any(self.is_subclass_of(fullname, b) for b in _OPTIM_BASE_NAMES)
            ):
                continue
            module = entry["module"]
            mutable = self._mutable_attrs(fullname, _STATE_DICT_EXEMPT_METHODS)
            exempt = self._ancestor_stored(fullname)
            mutable = {a: v for a, v in mutable.items() if a not in exempt}
            (exported, export_all, export_site), (restored, restore_all) = (
                self._round_trip_sets(fullname, "state_dict", "load_state_dict")
            )
            for attr, (line, mname) in sorted(mutable.items()):
                if (export_all or attr in exported) and (
                    restore_all or attr in restored
                ):
                    continue
                findings.append(
                    {
                        "module": module,
                        "line": line,
                        "col": 0,
                        "lines": [],
                        "message": (
                            f"{basename}.{mname} mutates 'self.{attr}' but "
                            "state_dict()/load_state_dict() does not round-trip "
                            "it — optimizer resume would diverge"
                        ),
                    }
                )
            for attr, (writer, _) in sorted(external.get(fullname, {}).items()):
                if (export_all or attr in exported) and (
                    restore_all or attr in restored
                ):
                    continue
                anchor = export_site or (
                    module,
                    entry["summary"]["line"],
                )
                if anchor[0] != module:
                    anchor = (module, entry["summary"]["line"])
                findings.append(
                    {
                        "module": anchor[0],
                        "line": anchor[1],
                        "col": 0,
                        "lines": [],
                        "message": (
                            f"'{attr}' is written onto {basename} by {writer} "
                            "but state_dict()/load_state_dict() does not "
                            "round-trip it — optimizer resume would diverge"
                        ),
                    }
                )
        findings = _dedupe(findings)
        self._analyses["state_dict"] = findings
        return findings

    # ------------------------------------------------------------------
    # config / run-key drift
    # ------------------------------------------------------------------
    def run_key_findings(self) -> List[dict]:
        if "run_key" in self._analyses:
            return self._analyses["run_key"]
        findings: List[dict] = []
        config = None  # (module, class summary)
        for module, summary in sorted(self.summaries.items()):
            cls = summary.get("classes", {}).get("FederationConfig")
            if cls is not None and cls.get("is_dataclass"):
                config = (module, cls)
                break
        classification = None  # (module, const)
        for module, summary in sorted(self.summaries.items()):
            const = summary.get("constants", {}).get("CONFIG_FIELD_CLASSIFICATION")
            if const is not None and const["kind"] == "dict":
                classification = (module, const)
                break
        if config is None:
            self._analyses["run_key"] = findings
            return findings
        config_module, config_cls = config
        fields = {f["name"]: f["line"] for f in config_cls.get("fields", [])}
        if classification is None:
            findings.append(
                {
                    "module": config_module,
                    "line": config_cls["line"],
                    "col": 0,
                    "lines": [],
                    "message": (
                        "FederationConfig has no CONFIG_FIELD_CLASSIFICATION "
                        "dict — every field must be classified as "
                        "key/runtime/managed/derived/pinned so run-key drift "
                        "is impossible"
                    ),
                }
            )
            self._analyses["run_key"] = findings
            return findings
        spec_module, const = classification
        entries = const["entries"]
        tuples = {
            category: {
                item["value"]
                for item in self.summaries[spec_module]
                .get("constants", {})
                .get(tuple_name, {"items": []})
                .get("items", [])
            }
            for category, tuple_name in _CONFIG_CATEGORY_TUPLES.items()
        }
        for name, line in sorted(fields.items()):
            if name not in entries:
                findings.append(
                    {
                        "module": config_module,
                        "line": line,
                        "col": 0,
                        "lines": [],
                        "message": (
                            f"FederationConfig field '{name}' is not classified "
                            f"in CONFIG_FIELD_CLASSIFICATION ({spec_module}) — "
                            "new fields must be declared key/runtime/managed/"
                            "derived/pinned so sweep run keys cannot drift"
                        ),
                    }
                )
        for name, entry in sorted(entries.items()):
            if name not in fields:
                findings.append(
                    {
                        "module": spec_module,
                        "line": entry["line"],
                        "col": 0,
                        "lines": [],
                        "message": (
                            f"CONFIG_FIELD_CLASSIFICATION classifies '{name}' "
                            "which is not a FederationConfig field — remove the "
                            "stale entry"
                        ),
                    }
                )
                continue
            category = entry["value"]
            if category not in _CONFIG_CATEGORIES:
                findings.append(
                    {
                        "module": spec_module,
                        "line": entry["line"],
                        "col": 0,
                        "lines": [],
                        "message": (
                            f"CONFIG_FIELD_CLASSIFICATION['{name}'] = "
                            f"'{category}' is not one of "
                            f"{'/'.join(_CONFIG_CATEGORIES)}"
                        ),
                    }
                )
                continue
            tuple_name = _CONFIG_CATEGORY_TUPLES.get(category)
            if tuple_name is not None and name not in tuples[category]:
                findings.append(
                    {
                        "module": spec_module,
                        "line": entry["line"],
                        "col": 0,
                        "lines": [],
                        "message": (
                            f"field '{name}' is classified as '{category}' but "
                            f"missing from {tuple_name} — the run-key "
                            "normalisation would not see it"
                        ),
                    }
                )
        findings = _dedupe(findings)
        self._analyses["run_key"] = findings
        return findings

    # ------------------------------------------------------------------
    # async protocol conformance
    # ------------------------------------------------------------------
    def async_protocol_findings(self) -> List[dict]:
        if "async" in self._analyses:
            return self._analyses["async"]
        findings: List[dict] = []
        for fullname, entry in sorted(self.classes.items()):
            assign = entry["summary"].get("class_assigns", {}).get("supports_async")
            if assign is None or assign.get("const") is not True:
                continue
            basename = fullname.rsplit(".", 1)[-1]
            for mname, expected in sorted(ASYNC_PROTOCOL.items()):
                found = self.find_method(fullname, mname)
                if found is None:
                    findings.append(
                        {
                            "module": entry["module"],
                            "line": assign["line"],
                            "col": 0,
                            "lines": [],
                            "message": (
                                f"{basename} sets supports_async = True but does "
                                f"not define {mname}({', '.join(expected)}) — the "
                                "async engine would fail at dispatch"
                            ),
                        }
                    )
                    continue
                cls, _ = found
                ms = self.classes[cls]["summary"]["methods"][mname]
                if tuple(ms["params"]) != expected:
                    findings.append(
                        {
                            "module": self.classes[cls]["module"],
                            "line": ms["line"],
                            "col": 0,
                            "lines": [],
                            "message": (
                                f"{cls.rsplit('.', 1)[-1]}.{mname} signature "
                                f"({', '.join(ms['params'])}) does not match the "
                                f"async protocol ({', '.join(expected)})"
                            ),
                        }
                    )
        findings = _dedupe(findings)
        self._analyses["async"] = findings
        return findings


def _dedupe(findings: List[dict]) -> List[dict]:
    seen: Set[tuple] = set()
    out: List[dict] = []
    for f in sorted(findings, key=lambda f: (f["module"], f["line"], f["col"], f["message"])):
        key = (f["module"], f["line"], f["message"])
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out
