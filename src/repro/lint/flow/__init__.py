"""repro.lint.flow — whole-program analysis behind the flow rule packs.

The syntactic rules in :mod:`repro.lint.rules` each look at one module in
isolation.  This package adds the project layer:

- :mod:`.summary` extracts a JSON-serialisable :class:`ModuleSummary` per
  module — imports, class/attribute model, dataclass fields, module-level
  constants, and a per-function dataflow summary (implicit-float64
  allocation sites and the edges along which their values escape);
- :mod:`.project` assembles summaries into a :class:`ProjectModel`:
  resolved base-class hierarchy, call-graph edges, and the
  interprocedural float64 taint propagation the ``flow-*`` rules query.

Summaries are deliberately self-contained dicts so the incremental cache
(:mod:`repro.lint.cache`) can persist them per file: a warm lint pass
reloads summaries for unchanged files and only re-runs the cheap global
propagation, which is what keeps whole-program analysis inside the CI
wall-time budget.
"""

from .project import (
    ALWAYS_DTYPE_MODULES,
    DTYPE_ZONE,
    HOT_MODULE_PREFIXES,
    ProjectModel,
)
from .summary import SUMMARY_VERSION, ModuleSummary, summarize_module

__all__ = [
    "ModuleSummary",
    "ProjectModel",
    "SUMMARY_VERSION",
    "summarize_module",
    "HOT_MODULE_PREFIXES",
    "ALWAYS_DTYPE_MODULES",
    "DTYPE_ZONE",
]
