"""Per-module extraction for the whole-program flow analyses.

One pass over a module's AST produces a :class:`ModuleSummary` — a plain
JSON-shaped dict bundle that captures everything the project-level
analyses need, so the original source never has to be re-parsed:

- the import table (local name → dotted target, relative imports
  resolved against the module's own dotted name);
- a class model: bases, decorators, dataclass fields, class-level
  constant assignments (``supports_async = True``), and per-method
  ``self.*`` stores/loads including nested ``self.owner.attr`` writes
  and dynamic ``__dict__``/``setattr`` escapes;
- module-level tuple/dict constants (run-key field lists, the config
  field classification) with per-entry line numbers;
- a per-function **dataflow summary** for the dtype pass: implicit
  float64 allocation sites (``np.zeros(...)`` with no ``dtype=``) plus
  the local escape edges of every tainted value — returns, call
  arguments, ``self`` attribute stores, and direct wire sinks
  (``channel.upload/download/broadcast``).

The intra-function analysis is a two-pass abstract interpretation over
statements: sets of taint labels flow through names, arithmetic,
containers and numpy passthrough calls, and die at explicit conversions
(``.astype``, ``np.asarray(..., dtype=...)``, ``float()``/``int()`` and
index-producing reductions).  Precision is deliberately modest — the
point is that a float64 buffer which *can* reach a wire payload or the
training hot path is flagged, with pragmas/baseline as the escape hatch
for deliberate exceptions.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..pragmas import PragmaIndex

__all__ = ["SUMMARY_VERSION", "ModuleSummary", "summarize_module"]

#: Bump whenever the summary schema or the extraction logic changes —
#: the incremental cache folds this into its signature, so stale
#: summaries are discarded wholesale instead of mixing schemas.
SUMMARY_VERSION = 1

_NP_NAMES = {"np", "numpy"}
_NP_ALLOC_FNS = {"full", "zeros", "ones", "empty"}
#: Calls whose result cannot carry a float64 taint: explicit conversions,
#: index/bool-producing reductions, and Python scalar constructors (a
#: Python float is "weak" in numpy promotion and never upcasts float32).
_KILL_CALLS = {
    "astype",
    "argmax",
    "argmin",
    "argsort",
    "nonzero",
    "flatnonzero",
    "searchsorted",
    "float",
    "int",
    "bool",
    "len",
    "range",
    "float32",
    "int64",
    "int32",
}
#: Attribute reads that produce metadata, not array contents.
_KILL_ATTRS = {"shape", "ndim", "size", "dtype", "nbytes", "itemsize"}
_WIRE_METHODS = {"upload", "download", "broadcast"}
_COMPOUND_STMTS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.If,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_chain(node: Optional[ast.AST]) -> Optional[str]:
    """A simple ``Name``/``Attribute`` annotation as a dotted string."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    chain = _dotted(node)
    return ".".join(chain) if chain else None


def _module_imports(tree: ast.AST, module: str) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".")
                parent = parts[: max(len(parts) - node.level, 0)]
                if node.module:
                    parent = parent + [node.module]
                base = ".".join(parent)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


# ----------------------------------------------------------------------
# per-function dataflow
# ----------------------------------------------------------------------
class _FunctionFlow:
    """Two-pass taint analysis of one function body.

    Labels are hashable tuples: ``("alloc", i)`` for implicit-float64
    allocation site ``i``, ``("param", i)`` for parameter ``i``,
    ``("sattr", name)``/``("oattr", name)`` for attribute loads off
    ``self``/an unknown object, and ``("cret", j)`` for the result of
    interned callee ``j``.  Escapes are recorded as (src-label, dst)
    edges the project model later resolves against the call graph.
    """

    def __init__(
        self,
        fnode: ast.AST,
        qualname: str,
        module_defs: Set[str],
        imports: Dict[str, str],
    ) -> None:
        self.fnode = fnode
        self.qualname = qualname
        self.module_defs = module_defs
        self.imports = imports
        args = fnode.args
        self.params: List[str] = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        self.env: Dict[str, Set[tuple]] = {
            p: {("param", i)} for i, p in enumerate(self.params)
        }
        self.allocs: List[dict] = []
        self._alloc_at: Dict[Tuple[int, int], int] = {}
        self.edges: Set[tuple] = set()
        self.callees: List[dict] = []
        self._callee_ids: Dict[tuple, int] = {}
        self._span: Tuple[int, int] = (fnode.lineno, fnode.lineno)

    def run(self) -> dict:
        for _ in range(2):  # second pass feeds loop-carried values back in
            self._block(self.fnode.body)
        return {
            "name": self.qualname,
            "line": self.fnode.lineno,
            "params": self.params,
            "allocs": self.allocs,
            "callees": self.callees,
            "edges": sorted(
                [list(src), list(dst)] for src, dst in self.edges
            ),
        }

    # -- plumbing ------------------------------------------------------
    def _edge(self, src: tuple, dst: tuple) -> None:
        self.edges.add((src, dst))

    def _edges(self, labels: Set[tuple], dst: tuple) -> None:
        for label in labels:
            self._edge(label, dst)

    def _intern(self, chain: Tuple[str, ...], kind: str) -> int:
        key = (chain, kind)
        if key not in self._callee_ids:
            self._callee_ids[key] = len(self.callees)
            self.callees.append({"chain": list(chain), "kind": kind})
        return self._callee_ids[key]

    # -- statements ----------------------------------------------------
    def _block(self, stmts) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _snapshot(self) -> Dict[str, Set[tuple]]:
        return {name: set(labels) for name, labels in self.env.items()}

    def _merge(self, *envs: Dict[str, Set[tuple]]) -> None:
        """Join point: a name may hold any branch's value."""
        merged: Dict[str, Set[tuple]] = {}
        for env in envs:
            for name, labels in env.items():
                merged.setdefault(name, set()).update(labels)
        self.env = merged

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _COMPOUND_STMTS):
            self._span = (stmt.lineno, stmt.lineno)
        else:
            self._span = (stmt.lineno, getattr(stmt, "end_lineno", stmt.lineno))
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, labels)
        elif isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value) | self._target_labels(stmt.target)
            self._assign(stmt.target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._edges(self._eval(stmt.value), ("ret",))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            before = self._snapshot()
            self._assign(stmt.target, self._eval(stmt.iter))
            self._block(stmt.body)
            self._block(stmt.orelse)
            self._merge(before, self.env)  # the loop may not execute
        elif isinstance(stmt, ast.While):
            before = self._snapshot()
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            self._merge(before, self.env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            base = self._snapshot()
            self._block(stmt.body)
            taken = self._snapshot()
            self.env = base
            self._block(stmt.orelse)
            self._merge(taken, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, labels)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            after_body = self._snapshot()
            branches = [after_body]
            for handler in stmt.handlers:
                self.env = {k: set(v) for k, v in after_body.items()}
                self._block(handler.body)
                branches.append(self._snapshot())
            self._merge(*branches)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # closures: analyse the nested body in the enclosing env so
            # captured tainted values still reach their sinks
            for arg in stmt.args.posonlyargs + stmt.args.args + stmt.args.kwonlyargs:
                self.env[arg.arg] = set()
            self._block(stmt.body)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Import/Pass/Global/Nonlocal/Delete/ClassDef: nothing to track

    def _target_labels(self, target: ast.expr) -> Set[tuple]:
        if isinstance(target, ast.Name):
            return set(self.env.get(target.id, ()))
        if isinstance(target, ast.Attribute):
            chain = _dotted(target)
            if chain and chain[0] == "self" and len(chain) == 2:
                return {("sattr", chain[1])}
        return set()

    def _assign(self, target: ast.expr, labels: Set[tuple]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, labels)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, labels)
        elif isinstance(target, ast.Attribute):
            chain = _dotted(target)
            if chain and chain[0] == "self":
                if len(chain) == 2:
                    self._edges(labels, ("sstore", chain[1]))
                elif len(chain) == 3:
                    self._edges(labels, ("nstore", chain[1], chain[2]))
        elif isinstance(target, ast.Subscript):
            self._eval(target.slice)
            value = target.value
            chain = _dotted(value)
            if chain and chain[0] == "self" and len(chain) == 2:
                self._edges(labels, ("sstore", chain[1]))
            elif isinstance(value, ast.Name):
                self.env.setdefault(value.id, set()).update(labels)

    # -- expressions ---------------------------------------------------
    def _eval_many(self, exprs) -> Set[tuple]:
        labels: Set[tuple] = set()
        for expr in exprs:
            labels |= self._eval(expr)
        return labels

    def _eval(self, node: ast.expr) -> Set[tuple]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Attribute):
            chain = _dotted(node)
            if chain and chain[0] == "self" and len(chain) == 2:
                return {("sattr", chain[1])}
            base = self._eval(node.value)
            if node.attr in _KILL_ATTRS:
                return set()
            return base | {("oattr", node.attr)}
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            return self._eval_many(node.values)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            self._eval_many(node.comparators)
            return set()
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            return self._eval_many(node.values)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return self._eval_many(node.elts)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval_generators(node.generators)
            return self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            self._eval_generators(node.generators)
            return self._eval(node.key) | self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value) if node.value is not None else set()
        if isinstance(node, ast.Yield):
            if node.value is not None:
                labels = self._eval(node.value)
                self._edges(labels, ("ret",))
            return set()
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value)
            self.env[node.target.id] = set(labels)
            return labels
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value)
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return set()
        return set()

    def _eval_generators(self, generators) -> None:
        for gen in generators:
            self._assign(gen.target, self._eval(gen.iter))
            for cond in gen.ifs:
                self._eval(cond)

    def _eval_call(self, call: ast.Call) -> Set[tuple]:
        chain = _dotted(call.func)
        arg_labels = [self._eval(arg) for arg in call.args]
        kw_labels = [(kw.arg, self._eval(kw.value)) for kw in call.keywords]
        all_args: Set[tuple] = set()
        for labels in arg_labels:
            all_args |= labels
        for _, labels in kw_labels:
            all_args |= labels
        kw_names = {kw.arg for kw in call.keywords if kw.arg}

        # 1. implicit float64 allocation sites
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in _NP_NAMES
            and chain[1] in _NP_ALLOC_FNS
        ):
            if "dtype" in kw_names:
                return set()
            key = (call.lineno, call.col_offset)
            if key in self._alloc_at:  # second analysis pass
                return {("alloc", self._alloc_at[key])}
            alloc_id = len(self.allocs)
            self._alloc_at[key] = alloc_id
            self.allocs.append(
                {
                    "id": alloc_id,
                    "line": call.lineno,
                    "col": call.col_offset,
                    "fn": chain[1],
                    "lines": list(range(self._span[0], self._span[1] + 1)),
                }
            )
            return {("alloc", alloc_id)}

        # 2. np.asarray/np.array with an explicit dtype is a conversion
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in _NP_NAMES
            and chain[1] in ("asarray", "array", "ascontiguousarray")
            and "dtype" in kw_names
        ):
            return set()

        # 3. direct wire sinks: anything through a CommChannel method
        if (
            chain is not None
            and chain[-1] in _WIRE_METHODS
            and any("channel" in part for part in chain[:-1])
        ):
            self._edges(all_args, ("sink", "wire"))
            return set()

        # 4. taint-killing conversions / index producers
        if chain is not None and chain[-1] in _KILL_CALLS:
            return set()
        if (
            chain is None
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _KILL_CALLS
        ):
            self._eval(call.func.value)
            return set()

        # 5. string-dispatched per-client work: map_clients(ps, "m", {kwargs})
        if (
            chain is not None
            and chain[-1] == "map_clients"
            and len(call.args) >= 2
            and isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            callee = self._intern(("<client>", call.args[1].value), "method")
            if len(call.args) >= 3 and isinstance(call.args[2], ast.Dict):
                payload = call.args[2]
                for key, value in zip(payload.keys, payload.values):
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        self._edges(
                            self._eval(value), ("arg", callee, ("kw", key.value))
                        )
            return {("cret", callee)}

        # 6. project-resolvable callees
        if chain is not None:
            root = chain[0]
            kind = None
            if root in ("self", "cls"):
                kind = "self"
            elif root in self.module_defs:
                kind = "local"
            elif root in self.imports and self.imports[root].startswith("repro"):
                kind = "import"
            elif len(chain) >= 2 and root in self.env:
                kind = "method"
            if kind is not None:
                callee = self._intern(chain, kind)
                for i, labels in enumerate(arg_labels):
                    self._edges(labels, ("arg", callee, ("pos", i)))
                for name, labels in kw_labels:
                    if name is not None:
                        self._edges(labels, ("arg", callee, ("kw", name)))
                result: Set[tuple] = {("cret", callee)}
                if kind == "method":
                    base = set(self.env.get(root, ()))
                    for attr in chain[1:-1]:
                        if attr in _KILL_ATTRS:
                            base = set()
                        else:
                            base = base | {("oattr", attr)}
                    result |= base
                return result

        # 7. opaque calls (numpy, builtins, chained expressions): the
        # result inherits its inputs' taint — float64 is contagious
        passthrough = set(all_args)
        if chain is None:
            if isinstance(call.func, ast.Attribute):
                passthrough |= self._eval(call.func.value)
            else:
                passthrough |= self._eval(call.func)
        elif chain[0] in self.env:
            passthrough |= self.env[chain[0]]
        return passthrough


# ----------------------------------------------------------------------
# class model
# ----------------------------------------------------------------------
def _method_summary(fnode) -> dict:
    args = fnode.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    annotations = {}
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        ann = _annotation_chain(arg.annotation)
        if ann:
            annotations[arg.arg] = ann
    stores: Dict[str, List[List[int]]] = {}
    nested: List[dict] = []
    loads: Set[str] = set()
    attr_types: Dict[str, str] = {}
    dynamic_store = dynamic_load = False

    for node in ast.walk(fnode):
        if isinstance(node, ast.Attribute):
            chain = _dotted(node)
            if not chain or chain[0] != "self":
                continue
            if isinstance(node.ctx, ast.Store):
                if len(chain) == 2:
                    stores.setdefault(chain[1], []).append(
                        [node.lineno, node.col_offset]
                    )
                elif len(chain) == 3:
                    nested.append(
                        {"owner": chain[1], "attr": chain[2], "line": node.lineno}
                    )
            elif isinstance(node.ctx, ast.Load):
                if len(chain) >= 2:
                    loads.add(chain[1])
                if chain[1] == "__dict__":
                    dynamic_load = True
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            chain = _dotted(node.value)
            if chain and chain[0] == "self" and len(chain) == 2:
                stores.setdefault(chain[1], []).append(
                    [node.lineno, node.col_offset]
                )
        elif isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if (
                chain == ("setattr",)
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
            ):
                dynamic_store = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                chain = _dotted(target)
                if (
                    chain
                    and chain[0] == "self"
                    and len(chain) == 2
                    and isinstance(node.value, ast.Name)
                ):
                    ann = annotations.get(node.value.id)
                    if ann:
                        attr_types.setdefault(chain[1], ann)
        elif isinstance(node, ast.AnnAssign):
            chain = _dotted(node.target)
            if chain and chain[0] == "self" and len(chain) == 2:
                ann = _annotation_chain(node.annotation)
                if ann:
                    attr_types.setdefault(chain[1], ann)

    return {
        "line": fnode.lineno,
        "params": params,
        "annotations": annotations,
        "stores": {k: v for k, v in sorted(stores.items())},
        "nested_stores": nested,
        "loads": sorted(loads),
        "attr_types": attr_types,
        "dynamic_store": dynamic_store,
        "dynamic_load": dynamic_load,
    }


def _class_summary(cnode: ast.ClassDef) -> dict:
    bases = []
    for base in cnode.bases:
        chain = _dotted(base)
        if chain:
            bases.append(list(chain))
    decorators = []
    for dec in cnode.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = _dotted(target)
        if chain:
            decorators.append(list(chain))
    is_dataclass = any(dec and dec[-1] == "dataclass" for dec in decorators)

    fields: List[dict] = []
    class_assigns: Dict[str, dict] = {}
    methods: Dict[str, dict] = {}
    for stmt in cnode.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append({"name": stmt.target.id, "line": stmt.lineno})
        elif isinstance(stmt, ast.Assign):
            const = (
                stmt.value.value
                if isinstance(stmt.value, ast.Constant)
                else None
            )
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    class_assigns[target.id] = {
                        "line": stmt.lineno,
                        "const": const,
                    }
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = _method_summary(stmt)

    return {
        "name": cnode.name,
        "line": cnode.lineno,
        "bases": bases,
        "decorators": decorators,
        "is_dataclass": is_dataclass,
        "fields": fields,
        "class_assigns": class_assigns,
        "methods": methods,
    }


# ----------------------------------------------------------------------
# module constants (run-key tuples, the config classification dict)
# ----------------------------------------------------------------------
def _module_constants(tree: ast.Module) -> Dict[str, dict]:
    constants: Dict[str, dict] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List)):
            items = []
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    items.append({"value": elt.value, "line": elt.lineno})
                else:
                    items = None
                    break
            if items is not None:
                constants[target.id] = {
                    "kind": "tuple",
                    "line": stmt.lineno,
                    "items": items,
                }
        elif isinstance(value, ast.Dict):
            entries = {}
            ok = True
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                ):
                    entries[key.value] = {"value": val.value, "line": key.lineno}
                else:
                    ok = False
                    break
            if ok and entries:
                constants[target.id] = {
                    "kind": "dict",
                    "line": stmt.lineno,
                    "entries": entries,
                }
    return constants


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
class ModuleSummary:
    """Thin named wrapper so call sites read ``summary.data["classes"]``."""

    __slots__ = ("data",)

    def __init__(self, data: dict) -> None:
        self.data = data

    @property
    def module(self) -> str:
        return self.data["module"]


def summarize_module(
    tree: ast.Module, module: str, path: str, source: str
) -> dict:
    """Extract the whole-program summary of one parsed module."""
    imports = _module_imports(tree, module)
    module_defs = {
        stmt.name
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    classes: Dict[str, dict] = {}
    functions: Dict[str, dict] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = _FunctionFlow(
                stmt, stmt.name, module_defs, imports
            ).run()
        elif isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = _class_summary(stmt)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{sub.name}"
                    functions[qualname] = _FunctionFlow(
                        sub, qualname, module_defs, imports
                    ).run()

    pragmas = PragmaIndex.from_source(source)
    return {
        "version": SUMMARY_VERSION,
        "module": module,
        "path": path,
        "imports": imports,
        "defs": sorted(module_defs),
        "classes": classes,
        "functions": functions,
        "constants": _module_constants(tree),
        "pragmas": {
            "by_line": {
                str(line): sorted(rules)
                for line, rules in pragmas.by_line.items()
            },
            "file_wide": sorted(pragmas.file_wide),
        },
    }
