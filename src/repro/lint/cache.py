"""Incremental lint cache: mtime fast-path, content-hash slow-path.

Per file the cache stores the **module-local** analysis products — the
syntactic findings, the suppression count, and the flow summary
(:mod:`repro.lint.flow.summary`).  Whole-program propagation is *never*
cached: it is rebuilt from summaries on every pass, so a warm run is
guaranteed to produce the same flow findings as a cold one — the cache
can only skip work whose inputs are provably unchanged, not change
results.

Validation is two-tier: ``st_mtime_ns + st_size`` matching the stored
entry skips even reading the file; on mtime mismatch the content hash
decides (a ``touch`` re-validates cheaply and the entry's stat is
refreshed in place).  The whole cache is keyed by a *signature* of the
rule set and the analysis versions — any mismatch discards every entry,
so schema or rule changes can never replay stale findings.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional, Sequence

from .flow.summary import SUMMARY_VERSION

__all__ = ["CACHE_VERSION", "LintCache", "cache_signature", "content_hash"]

CACHE_VERSION = 1


def cache_signature(rules: Sequence) -> str:
    """Hash of everything that could change a cached per-file record."""
    payload = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "rules": sorted(
            (rule.id, rule.severity, rule.requires_project) for rule in rules
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class LintCache:
    """A JSON-backed per-file record store for one lint configuration."""

    def __init__(self, path: str, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.entries: Dict[str, dict] = {}
        self.dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("signature") != self.signature
        ):
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    # ------------------------------------------------------------------
    def get(self, display: str) -> Optional[dict]:
        return self.entries.get(display)

    def touch(self, display: str, mtime_ns: int, size: int) -> None:
        """Refresh stat info after a content-hash revalidation."""
        entry = self.entries.get(display)
        if entry is not None:
            entry["mtime_ns"] = mtime_ns
            entry["size"] = size
            self.dirty = True

    def put(
        self,
        display: str,
        sha256: str,
        mtime_ns: int,
        size: int,
        record: dict,
    ) -> None:
        self.entries[display] = {
            "sha256": sha256,
            "mtime_ns": mtime_ns,
            "size": size,
            "record": record,
        }
        self.dirty = True

    def prune(self, keep: Sequence[str]) -> None:
        """Drop entries for files no longer part of the linted set."""
        wanted = set(keep)
        stale = [display for display in self.entries if display not in wanted]
        for display in stale:
            del self.entries[display]
            self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "entries": self.entries,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".reprolint-cache.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f, sort_keys=True)
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        else:
            self.dirty = False


def content_hash(source_bytes: bytes) -> str:
    return hashlib.sha256(source_bytes).hexdigest()
