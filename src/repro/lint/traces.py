"""Trace/metrics schema validation behind ``repro lint --traces``.

This is the importable core of what ``scripts/validate_trace.py`` does:
validate a JSONL trace (and optionally a metrics export) against the
:mod:`repro.obs` schema, then check that expected scopes and span/event
names actually occur.  CI exercises it through the same ``repro lint``
entrypoint as the static rules, so there is one gate to wire, not two.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["TraceValidation", "validate_traces"]


@dataclass
class TraceValidation:
    """Outcome of one ``--traces`` validation pass."""

    ok: bool
    messages: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)


def validate_traces(
    trace_path: str,
    metrics_path: Optional[str] = None,
    expect_scopes: Sequence[str] = (),
    expect_events: Sequence[str] = (),
) -> TraceValidation:
    """Validate ``trace_path`` (and optionally ``metrics_path``).

    Returns a :class:`TraceValidation`; ``ok`` is False on any schema
    violation, unreadable file, or missing expectation.
    """
    from ..obs import SchemaError, validate_metrics_file, validate_trace_file

    result = TraceValidation(ok=True)

    try:
        count = validate_trace_file(trace_path)
    except (SchemaError, OSError) as exc:
        result.ok = False
        result.errors.append(f"INVALID {trace_path}: {exc}")
        return result
    result.messages.append(f"ok {trace_path}: {count} records")

    if expect_scopes or expect_events:
        with open(trace_path) as f:
            records = [json.loads(line) for line in f if line.strip()]
        scopes = {r.get("scope") for r in records} - {None}
        names = {r["name"] for r in records}
        missing_scopes = sorted(set(expect_scopes) - scopes)
        missing_events = sorted(set(expect_events) - names)
        if missing_scopes:
            result.ok = False
            result.errors.append(f"missing scopes: {missing_scopes}")
        if missing_events:
            result.ok = False
            result.errors.append(f"missing events: {missing_events}")
        if not missing_scopes and not missing_events:
            result.messages.append(f"ok expectations: scopes={sorted(scopes)}")

    if metrics_path:
        try:
            count = validate_metrics_file(metrics_path)
        except (SchemaError, OSError) as exc:
            result.ok = False
            result.errors.append(f"INVALID {metrics_path}: {exc}")
            return result
        result.messages.append(f"ok {metrics_path}: {count} metrics")

    return result
