"""Checked-in baseline of grandfathered findings.

The baseline lets the linter be adopted on a codebase with pre-existing,
deliberate violations without weakening the rules: every entry names the
rule, file, and exact message it grandfathers, plus a human
justification.  A finding that matches an entry is reported as
*baselined* and does not fail the run; a finding with no entry fails it.
Line numbers are deliberately not part of the match (unrelated edits move
code), so a baselined finding survives reformatting but not a content
change.

Format (``.reprolint-baseline.json`` at the repo root)::

    {"version": 1,
     "entries": [{"rule": "...", "path": "...", "message": "...",
                  "justification": "why this is intentional"}]}
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    justification: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


class Baseline:
    """An ordered set of grandfathered findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            e.key(): e for e in self.entries
        }

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding.key() in self._by_key

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split ``findings`` into (new, baselined) and report stale entries.

        A stale entry matched nothing this run — the violation it
        grandfathered was fixed, so the entry should be deleted.
        """
        new: List[Finding] = []
        baselined: List[Finding] = []
        hit = set()
        for finding in findings:
            if self.matches(finding):
                baselined.append(finding)
                hit.add(finding.key())
            else:
                new.append(finding)
        stale = [e for e in self.entries if e.key() not in hit]
        return new, baselined, stale

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str = "grandfathered"
    ) -> "Baseline":
        seen = set()
        entries = []
        for f in sorted(findings, key=Finding.key):
            if f.key() in seen:
                continue
            seen.add(f.key())
            entries.append(
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    message=f.message,
                    justification=justification,
                )
            )
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path) as f:
            data = json.load(f)
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=e["rule"],
                path=e["path"],
                message=e["message"],
                justification=e.get("justification", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: str) -> None:
        """Write atomically with stable ordering (reviewable diffs)."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                e.to_dict() for e in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, indent=2, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
