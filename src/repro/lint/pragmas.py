"""Inline suppression pragmas.

Two forms, both ordinary comments:

- ``# lint: disable=rule-id[,other-rule]`` suppresses those rules for
  one statement: put it at the end of the flagged line, or on its own
  comment line directly above (it then applies to the next code line).
  Put a short justification in the same comment — the pragma is a
  reviewed exception, not an off switch.
- ``# lint: disable-file=rule-id[,other-rule]`` anywhere in the file
  suppresses those rules for the whole module.

``all`` is accepted as a rule id and matches every rule.
"""

from __future__ import annotations

import re
from typing import Dict, Set

__all__ = ["PragmaIndex"]

_LINE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")
_FILE_RE = re.compile(
    r"#\s*lint:\s*disable-file=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def _split(spec: str) -> Set[str]:
    return {part.strip() for part in spec.split(",") if part.strip()}


class PragmaIndex:
    """Per-file index of suppression pragmas, built once per lint pass."""

    def __init__(self) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        index = cls()
        # Rules from standalone pragma comment lines waiting for the next
        # code line to attach to.
        pending: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            stripped = line.strip()
            is_comment_only = stripped.startswith("#")
            rules: Set[str] = set()
            if "#" in line and "lint:" in line:
                file_match = _FILE_RE.search(line)
                if file_match:
                    index.file_wide |= _split(file_match.group(1))
                line_match = _LINE_RE.search(line)
                if line_match:
                    rules = _split(line_match.group(1))
            if is_comment_only:
                pending |= rules
                continue
            if not stripped:
                continue
            # A code line: same-line pragmas plus any pending from the
            # comment block directly above.
            if rules or pending:
                index.by_line.setdefault(lineno, set()).update(rules | pending)
            pending = set()
        return index

    def suppresses(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return bool(rules) and ("all" in rules or rule_id in rules)

    def suppresses_any(self, rule_id: str, lines) -> bool:
        """Suppressed on *any* candidate line (statement span, decorators)."""
        return any(self.suppresses(rule_id, line) for line in lines)

    # -- (de)serialisation so the incremental cache can replay pragma
    # -- decisions for flow findings without re-reading the source
    def to_dict(self) -> dict:
        return {
            "by_line": {
                str(line): sorted(rules) for line, rules in self.by_line.items()
            },
            "file_wide": sorted(self.file_wide),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PragmaIndex":
        index = cls()
        index.by_line = {
            int(line): set(rules)
            for line, rules in data.get("by_line", {}).items()
        }
        index.file_wide = set(data.get("file_wide", []))
        return index
