"""repro.lint — AST-based static analysis for the repo's own invariants.

The headline guarantees (bit-identical serial/parallel histories, exact
resume, obs-off invariance, honest communication accounting) rest on
coding conventions; this package machine-checks them.  Zero third-party
dependencies: parsing is stdlib :mod:`ast`.

Pieces:

- :class:`LintEngine` — walks files, parses, dispatches registered rules,
  honours ``# lint: disable=`` pragmas;
- rule packs under :mod:`repro.lint.rules` (determinism, comm, autograd,
  obs, hygiene, flow), self-registered with catalog metadata;
- :mod:`repro.lint.flow` — the whole-program layer: per-module summaries
  assembled into a :class:`ProjectModel` (class hierarchy, call graph,
  interprocedural float64 taint) that the ``flow-*`` packs query;
- :class:`LintCache` — mtime+content-hash incremental cache so warm
  full-repo passes skip re-parsing unchanged files;
- :class:`Baseline` — checked-in grandfathered findings
  (``.reprolint-baseline.json``) with per-entry justifications;
- reporters (text with ``file:line:col`` output, JSON, SARIF for GitHub
  code-scanning annotations);
- :mod:`repro.lint.traces` — trace/metrics schema validation, exposed as
  ``repro lint --traces`` so CI has one lint entrypoint.

Quickstart::

    repro lint src/ --baseline .reprolint-baseline.json

See ``docs/LINT.md`` for the rule catalog and the pragma/baseline
workflow.
"""

from .baseline import Baseline, BaselineEntry
from .cache import LintCache, cache_signature
from .engine import LintEngine, LintResult, ModuleContext, module_name_for
from .findings import SEVERITIES, Finding
from .flow import ProjectModel, summarize_module
from .pragmas import PragmaIndex
from .registry import Rule, all_rules, get_rule, packs, register
from .reporters import render_json, render_sarif, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "SEVERITIES",
    "LintCache",
    "LintEngine",
    "LintResult",
    "ModuleContext",
    "ProjectModel",
    "module_name_for",
    "cache_signature",
    "summarize_module",
    "PragmaIndex",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "packs",
    "render_text",
    "render_json",
    "render_sarif",
]
