"""Flow rule packs — findings computed on the whole-program model.

These rules set ``requires_project=True``: the engine calls them once
per module *after* every file has been summarised, with ``ctx.project``
holding the assembled :class:`~repro.lint.flow.ProjectModel`.  Each rule
filters the relevant global analysis down to the module it is currently
reporting on, and yields ``(line, col, extra_lines)`` position tuples so
pragma suppression covers the whole flagged statement.

Packs:

- ``flow-dtype`` — interprocedural float64 taint: an implicit
  allocation is flagged where it is *created*, with the reason being
  what it can *reach* (wire payload / training hot path);
- ``flow-checkpoint`` — exact-resume completeness for
  ``FederatedAlgorithm`` (``extra_state`` round-trip) and the
  optimizer/scheduler family (``state_dict`` round-trip);
- ``flow-config`` — sweep run-key drift for ``FederationConfig`` fields
  and async-protocol signature conformance for ``supports_async``
  implementors.
"""

from __future__ import annotations

from ..registry import register

__all__ = []


def _module_findings(ctx, findings):
    for finding in findings:
        if finding["module"] != ctx.module:
            continue
        yield (
            (finding["line"], finding["col"], tuple(finding["lines"])),
            finding["message"],
        )


@register(
    "flow-implicit-float64",
    pack="flow-dtype",
    severity="error",
    summary="implicit float64 allocation that can reach the wire or hot path",
    description=(
        "`np.full`/`np.zeros`/`np.ones`/`np.empty` default to float64. The "
        "flow analysis tracks each dtype-less allocation through local "
        "dataflow, function calls, returns, and `self.*` attributes; a "
        "buffer that can reach a `CommChannel` upload/download/broadcast "
        "payload or the `repro.nn`/`repro.fl.training` hot path violates "
        "the float32 wire discipline (`repro.nn.serialize.WIRE_DTYPE`) or "
        "silently doubles training memory. In the always-strict modules "
        "(prototypes, client knowledge, compression, nn, training) every "
        "implicit allocation is flagged. Pass `dtype=` explicitly — "
        "`np.float32` for wire payloads, or a deliberate `np.float64` "
        "where accumulation precision demands it."
    ),
    packages=("repro.core", "repro.fl", "repro.baselines", "repro.nn"),
    requires_project=True,
)
def check_flow_implicit_float64(ctx):
    yield from _module_findings(ctx, ctx.project.dtype_findings())


@register(
    "flow-extra-state",
    pack="flow-checkpoint",
    severity="error",
    summary="algorithm state not round-tripped by extra_state/load_extra_state",
    description=(
        "Exact resume (PR 2) requires every mutable `self.*` attribute a "
        "`FederatedAlgorithm` subclass writes outside `__init__` to be "
        "exported by `extra_state()` and restored by `load_extra_state()`. "
        "The analysis diffs attributes assigned anywhere in the class "
        "(minus base-managed plumbing and attributes owned by project "
        "ancestors) against the round-trip pair, resolving the pair "
        "through the inheritance chain; `self.__dict__` exports and "
        "`setattr` restores count as covering everything. A miss here is "
        "a checkpoint that resumes to a diverging run."
    ),
    packages=("repro.core", "repro.baselines", "repro.fl"),
    requires_project=True,
)
def check_flow_extra_state(ctx):
    yield from _module_findings(ctx, ctx.project.extra_state_findings())


@register(
    "flow-state-dict",
    pack="flow-checkpoint",
    severity="error",
    summary="optimizer/scheduler state not covered by state_dict",
    description=(
        "`Optimizer` and `LRScheduler` subclasses must persist every "
        "mutable attribute through `state_dict()`/`load_state_dict()`, "
        "including attributes written onto them from *other* classes "
        "through annotated handles (e.g. a scheduler assigning "
        "`self.optimizer.scheduled_base_lr`). Those external writes are "
        "attributed to the owning class via `__init__` parameter "
        "annotations, so the finding lands in the file that must add the "
        "state_dict entry. Uncovered state makes optimizer resume "
        "diverge from an uninterrupted run."
    ),
    packages=("repro.nn",),
    requires_project=True,
)
def check_flow_state_dict(ctx):
    yield from _module_findings(ctx, ctx.project.state_dict_findings())


@register(
    "flow-run-key-drift",
    pack="flow-config",
    severity="error",
    summary="FederationConfig field missing from run-key classification",
    description=(
        "Sweep run keys (PR 6/7) are content hashes over normalised "
        "config settings; a `FederationConfig` field that is neither "
        "hashed nor explicitly excluded silently aliases distinct runs "
        "into one cache entry. Every field must appear in "
        "`CONFIG_FIELD_CLASSIFICATION` as key/runtime/managed/derived/"
        "pinned, and key/runtime/managed entries must be listed in the "
        "corresponding `_KEY_SETTING_FIELDS`/`_RUNTIME_SETTING_FIELDS`/"
        "`_MANAGED_FIELDS` normalisation tuples. Stale entries for "
        "removed fields are flagged too."
    ),
    packages=("repro.fl", "repro.sweep"),
    requires_project=True,
)
def check_flow_run_key_drift(ctx):
    yield from _module_findings(ctx, ctx.project.run_key_findings())


@register(
    "flow-async-protocol",
    pack="flow-config",
    severity="error",
    summary="supports_async implementor does not match the engine protocol",
    description=(
        "The async round engine dispatches to exactly three methods: "
        "`async_dispatch_state(self)`, `async_client_work(self, "
        "participants, snapshot)` and `async_server_update(self, "
        "contributions, client_weights, contributors)`. A class that "
        "declares `supports_async = True` but is missing one of them, or "
        "defines it with renamed/re-ordered parameters, fails at dispatch "
        "time deep inside a run. Signatures are checked through the "
        "inheritance chain against the exact protocol parameter names."
    ),
    packages=("repro.core", "repro.baselines", "repro.fl"),
    requires_project=True,
)
def check_flow_async_protocol(ctx):
    yield from _module_findings(ctx, ctx.project.async_protocol_findings())
