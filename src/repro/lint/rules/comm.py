"""Comm-accounting pack: no "free bytes" past the CommChannel ledger.

The paper's Table 1 / Fig. 3 communication numbers are only honest if
every simulated transfer is metered.  In a simulation nothing physically
stops an algorithm from reading another party's state directly, so these
rules police the two holes: harvesting client knowledge without an
``upload``/``download`` in the same routine, and reaching straight into a
client's private training data.

Scope is deliberately ``repro.core`` and ``repro.baselines`` — the
algorithm implementations whose comm totals are reported.  Experiment
drivers and diagnostics may inspect clients freely.
"""

from __future__ import annotations

import ast

from ..registry import register
from ._ast_utils import dotted_chain

#: FLClient methods whose return value is uplink payload by definition.
KNOWLEDGE_METHODS = {"logits_on", "public_knowledge", "compute_prototypes"}

#: Per-client private training data an algorithm must never touch.
PRIVATE_CLIENT_ATTRS = {"x_train", "y_train", "x_test", "y_test"}

#: CommChannel recording calls that count as metering.
_CHANNEL_CALLS = {"upload", "download", "broadcast"}


@register(
    "comm-private-client-state",
    pack="comm",
    severity="error",
    summary="algorithm reads a client's private dataset directly",
    description=(
        "Accessing `client.x_train` / `y_train` / `x_test` / `y_test` from "
        "algorithm code is the simulation equivalent of the server reading "
        "a device's disk: no real deployment could do it, and no bytes are "
        "metered. Exchange knowledge (logits, prototypes, weights) through "
        "the CommChannel instead."
    ),
    packages=("repro.core", "repro.baselines"),
)
def check_private_client_state(ctx):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in PRIVATE_CLIENT_ATTRS:
            continue
        chain = dotted_chain(node)
        if chain and chain[0] == "self" and len(chain) == 2:
            # an algorithm's own attribute of that name, not a client's
            continue
        yield node, (
            f"direct read of private client data `.{node.attr}`; "
            "clients only share knowledge through the channel"
        )


def _is_knowledge_map_clients(call: ast.Call) -> bool:
    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "map_clients"):
        return False
    method = None
    if len(call.args) >= 2:
        method = call.args[1]
    for kw in call.keywords:
        if kw.arg == "method":
            method = kw.value
    return (
        isinstance(method, ast.Constant)
        and isinstance(method.value, str)
        and method.value in KNOWLEDGE_METHODS
    )


def _is_foreign_state_dict(call: ast.Call) -> bool:
    """``<not-self>.model.state_dict()`` — pulling another party's weights."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "state_dict"):
        return False
    base = func.value
    if not (isinstance(base, ast.Attribute) and base.attr == "model"):
        return False
    chain = dotted_chain(base)
    return chain is not None and chain[0] != "self"


@register(
    "comm-unmetered-exchange",
    pack="comm",
    severity="error",
    summary="client knowledge harvested with no channel call in the routine",
    description=(
        "A routine that collects client payloads — `map_clients` with a "
        "knowledge method (`logits_on`, `public_knowledge`, "
        "`compute_prototypes`) or `<client>.model.state_dict()` — must "
        "meter the transfer with `channel.upload` / `download` / "
        "`broadcast` in the same routine; otherwise those bytes are free "
        "and the Table-1 comparison is wrong. Validation-only reads that "
        "move no payload get an inline pragma with a justification."
    ),
    packages=("repro.core", "repro.baselines"),
)
def check_unmetered_exchange(ctx):
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        acquisitions = []
        metered = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in _CHANNEL_CALLS:
                metered = True
            if _is_knowledge_map_clients(node) or _is_foreign_state_dict(node):
                acquisitions.append(node)
        if metered:
            continue
        for node in acquisitions:
            yield node, (
                f"`{func.name}` collects client payloads but never calls "
                "channel.upload/download/broadcast"
            )
