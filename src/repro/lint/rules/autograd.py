"""Autograd-discipline pack for the ``repro.nn`` substrate.

``repro.nn`` tensors alias numpy arrays into backward closures at forward
time (``out_data``, masks, parent ``.data`` references).  Mutating one of
those buffers in place after graph construction silently corrupts the
gradients computed later — the forward already captured the array object,
not a copy.  These rules keep the substrate honest: no in-place mutation
of autograd-visible buffers, every backward closure paired with the
forward bookkeeping that wires it into the graph, and every trainable
parameter registered where ``Module.named_parameters`` can find it.
"""

from __future__ import annotations

import ast

from ..registry import register
from ._ast_utils import contains_attribute

_AUTOGRAD_ATTRS = {"data", "grad"}


@register(
    "ag-inplace-tensor-mutation",
    pack="autograd",
    severity="error",
    summary="in-place mutation of a Tensor .data/.grad buffer",
    description=(
        "`t.data += x`, `t.grad *= s`, `t.data[...] = v`, and numpy calls "
        "with `out=t.data` mutate an array that backward closures may "
        "already alias, corrupting gradients computed afterwards. Rebind "
        "instead (`t.data = t.data - ...`) so old graph references keep "
        "their values. Owned accumulation buffers that are never aliased "
        "(e.g. gradient accumulation itself) get an inline pragma."
    ),
    packages=("repro.nn",),
)
def check_inplace_tensor_mutation(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AugAssign):
            if contains_attribute(node.target, _AUTOGRAD_ATTRS):
                yield node, (
                    "augmented assignment mutates an autograd-visible "
                    "buffer in place"
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and contains_attribute(
                    target.value, _AUTOGRAD_ATTRS
                ):
                    yield target, (
                        "slice assignment mutates an autograd-visible "
                        "buffer in place"
                    )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out" and contains_attribute(kw.value, _AUTOGRAD_ATTRS):
                    yield node, (
                        "out= targets an autograd-visible buffer; "
                        "allocate a fresh array instead"
                    )


def _registers_backward(func: ast.AST) -> bool:
    """Does this forward-op function wire its closure into the graph?"""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr == "_make":
            return True
        if any(kw.arg == "_backward" for kw in node.keywords):
            return True
    return False


@register(
    "ag-backward-missing-bookkeeping",
    pack="autograd",
    severity="error",
    summary="backward closure defined but never wired into the graph",
    description=(
        "An op that defines a `backward(grad)` closure must hand it to "
        "`Tensor._make(...)` or `Tensor(..., _backward=...)` in the same "
        "function; otherwise the forward returns a leaf and the closure "
        "is dead code — gradients silently stop flowing through the op."
    ),
    packages=("repro.nn",),
)
def check_backward_missing_bookkeeping(ctx):
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name == "backward":
            continue
        inner_backwards = [
            node
            for node in ast.walk(func)
            if isinstance(node, ast.FunctionDef) and node.name == "backward"
        ]
        if inner_backwards and not _registers_backward(func):
            for node in inner_backwards:
                yield node, (
                    f"`{func.name}` defines backward() but never passes it "
                    "to _make/_backward"
                )


def _tensor_requires_grad_call(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return False
    if node.func.id != "Tensor":
        return False
    for kw in node.keywords:
        if kw.arg == "requires_grad":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    if len(node.args) >= 2:
        arg = node.args[1]
        return isinstance(arg, ast.Constant) and arg.value is True
    return False


@register(
    "ag-unregistered-parameter",
    pack="autograd",
    severity="error",
    summary="trainable Tensor created in __init__ but not bound to self",
    description=(
        "`Module.named_parameters` discovers parameters by attribute "
        "inspection, so a `Tensor(..., requires_grad=True)` built in "
        "`__init__` must be assigned to `self.<name>` directly. Parameters "
        "stashed in locals, lists, or dicts are invisible to optimisers "
        "and `state_dict`, and silently never train."
    ),
    packages=("repro.nn",),
)
def check_unregistered_parameter(ctx):
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        init = next(
            (
                node
                for node in cls.body
                if isinstance(node, ast.FunctionDef) and node.name == "__init__"
            ),
            None,
        )
        if init is None:
            continue
        registered = set()
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                if all(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets
                ) and _tensor_requires_grad_call(node.value):
                    registered.add(id(node.value))
            elif isinstance(node, ast.AnnAssign):
                if (
                    node.value is not None
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                    and _tensor_requires_grad_call(node.value)
                ):
                    registered.add(id(node.value))
        for node in ast.walk(init):
            if _tensor_requires_grad_call(node) and id(node) not in registered:
                yield node, (
                    f"trainable Tensor in {cls.name}.__init__ is not assigned "
                    "to a self attribute; named_parameters will miss it"
                )
