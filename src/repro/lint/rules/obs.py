"""Obs-hygiene pack: metric naming and span lifecycle discipline.

The metrics registry rejects malformed names at runtime — but only on
code paths a test actually exercises with observability enabled, which
is exactly the configuration most tests skip.  Checking the literal
names statically catches the typo before it hides behind a disabled
registry.  Likewise a span created and immediately discarded can never
be closed, so the trace's open/close balance breaks the first time that
line runs with tracing on.
"""

from __future__ import annotations

import ast
import re

from ..registry import register

#: Mirrors ``repro.obs.metrics._NAME_RE`` — scope/name with at least one
#: slash, lowercase segments.
_METRIC_NAME_RE = re.compile(r"^[a-z0-9_.-]+(/[a-z0-9_.-]+)+$")
_METRIC_CHUNK_RE = re.compile(r"^[a-z0-9_./-]*$")

_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}


@register(
    "obs-metric-name",
    pack="obs",
    severity="error",
    summary="metric name violates the scope/name convention",
    description=(
        "Instrument names must match `scope/name` (lowercase segments of "
        "`[a-z0-9_.-]`, at least one `/`), mirroring the registry's "
        "runtime check. For f-string names, every literal chunk must use "
        "the allowed charset and some literal chunk must contain the "
        "`/` so the scope cannot be forged by interpolation."
    ),
    packages=("repro",),
)
def check_metric_name(ctx):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _INSTRUMENT_METHODS):
            continue
        if not node.args:
            continue
        name = node.args[0]
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            if not _METRIC_NAME_RE.match(name.value):
                yield name, (
                    f"metric name '{name.value}' does not match the "
                    "scope/name convention"
                )
        elif isinstance(name, ast.JoinedStr):
            literal = ""
            ok_chunks = True
            for part in name.values:
                if isinstance(part, ast.Constant) and isinstance(part.value, str):
                    literal += part.value
                    if not _METRIC_CHUNK_RE.match(part.value):
                        ok_chunks = False
            if "/" not in literal or not ok_chunks:
                yield name, (
                    "f-string metric name needs a literal 'scope/' prefix "
                    "with the scope/name charset"
                )


@register(
    "obs-span-discarded",
    pack="obs",
    severity="error",
    summary="tracer span created and immediately discarded",
    description=(
        "A bare `tracer.span(...)` expression statement opens a span whose "
        "handle is dropped, so it can never be closed and the trace's "
        "open/close balance breaks. Use `with tracer.span(...):`, or "
        "return/assign the span when a caller manages its lifetime."
    ),
    packages=("repro",),
)
def check_span_discarded(ctx):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "span"
        ):
            yield call, "span handle discarded; open/close cannot balance"
