"""Determinism pack: RNG, clock, and ordering discipline.

The repo's serial/parallel bit-identity and exact-resume guarantees hold
only if every random draw flows through a seeded
``numpy.random.Generator`` whose stream is owned, checkpointed, and
restored by the federation.  A single call into numpy's *global* RNG, the
stdlib ``random`` module, or the OS entropy pool silently breaks all of
them.  Wall-clock reads are results-affecting unless confined to
observability (``repro.obs`` stamps trace records), and iterating a
``set`` leaks hash ordering into whatever is built from it.
"""

from __future__ import annotations

import ast

from ..registry import register
from ._ast_utils import call_chain

#: numpy.random attributes that are constructors/types, not draws from the
#: shared global stream.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "MT19937",
    "SFC64",
}


def _np_random_fn(chain) -> str:
    """Return the ``numpy.random`` member a call chain targets, or ''."""
    if chain is None or len(chain) < 2:
        return ""
    if chain[0] in ("np", "numpy") and chain[1] == "random":
        return chain[2] if len(chain) > 2 else ""
    return ""


@register(
    "det-banned-np-random",
    pack="determinism",
    severity="error",
    summary="call into numpy's global RNG (np.random.<fn>)",
    description=(
        "Draws from `np.random.<fn>` use the process-global RNG stream, "
        "which is invisible to checkpointing and differs between the "
        "serial and parallel runtimes. Take an explicit seeded "
        "`np.random.Generator` (see `repro.nn.init.ensure_rng`) and draw "
        "from it instead. Constructors (`default_rng`, `Generator`, "
        "`SeedSequence`, bit generators) are allowed."
    ),
    packages=("repro",),
)
def check_banned_np_random(ctx):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = _np_random_fn(call_chain(node))
        if fn and fn not in _NP_RANDOM_ALLOWED:
            yield node, (
                f"np.random.{fn}() draws from the global RNG stream; "
                "use a seeded Generator"
            )


@register(
    "det-unseeded-rng",
    pack="determinism",
    severity="warning",
    summary="np.random.default_rng() constructed without a seed",
    description=(
        "`np.random.default_rng()` with no arguments pulls OS entropy, so "
        "two runs of the same experiment diverge. Thread a seed (or an "
        "existing Generator) through instead. Intentional fresh-entropy "
        "fallbacks belong in the baseline with a justification."
    ),
    packages=("repro",),
)
def check_unseeded_rng(ctx):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = call_chain(node)
        if chain and chain[-1] == "default_rng" and not node.args and not node.keywords:
            yield node, "default_rng() without a seed is nondeterministic"


@register(
    "det-stdlib-random",
    pack="determinism",
    severity="error",
    summary="import of the stdlib `random` module",
    description=(
        "The stdlib `random` module is a process-global, non-checkpointable "
        "RNG; nothing in this repo may depend on it. Use a seeded "
        "`np.random.Generator` owned by the caller."
    ),
    packages=("repro",),
)
def check_stdlib_random(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node, "stdlib random is banned; use a seeded Generator"
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield node, "stdlib random is banned; use a seeded Generator"


@register(
    "det-os-urandom",
    pack="determinism",
    severity="error",
    summary="os.urandom() pulls unseedable OS entropy",
    description=(
        "`os.urandom` cannot be seeded or checkpointed, so any value "
        "derived from it breaks exact resume and run-to-run identity."
    ),
    packages=("repro",),
)
def check_os_urandom(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and call_chain(node) == ("os", "urandom"):
            yield node, "os.urandom() is unseedable entropy"


@register(
    "det-wallclock-time",
    pack="determinism",
    severity="error",
    summary="time.time() outside the observability layer",
    description=(
        "Wall-clock reads make results depend on when a run happens. Only "
        "`repro.obs` (trace timestamps) may call `time.time()`; durations "
        "elsewhere use `time.perf_counter()` and stay out of results."
    ),
    packages=("repro",),
    exclude=("repro.obs",),
)
def check_wallclock_time(ctx):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and call_chain(node) == ("time", "time"):
            yield node, "time.time() outside repro.obs leaks wall-clock into the run"


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register(
    "det-set-iteration",
    pack="determinism",
    severity="error",
    summary="iteration over a set in aggregation/serialization paths",
    description=(
        "Set iteration order follows hash seeds, so anything built from it "
        "(aggregates, payload layouts, serialized key order) can differ "
        "between processes. Wrap the set in `sorted(...)` before iterating."
    ),
    packages=("repro.core", "repro.baselines", "repro.fl", "repro.nn", "repro.sweep"),
)
def check_set_iteration(ctx):
    def flag(iter_node):
        if _is_set_expr(iter_node):
            yield iter_node, (
                "iterating a set leaks hash order into results; "
                "wrap it in sorted(...)"
            )

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield from flag(gen.iter)
