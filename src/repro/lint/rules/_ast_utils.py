"""Small shared AST helpers for rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

__all__ = [
    "dotted_chain",
    "call_chain",
    "iter_functions",
    "contains_attribute",
    "attribute_chain_names",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve a ``Name``/``Attribute`` chain to its dotted parts.

    ``np.random.shuffle`` → ``("np", "random", "shuffle")``; returns
    ``None`` when the chain is interrupted by calls, subscripts, etc.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_chain(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """``dotted_chain`` of a call's function expression."""
    return dotted_chain(call.func)


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every (possibly nested) function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def contains_attribute(node: ast.AST, attrs) -> bool:
    """Whether any ``Attribute`` in the subtree has one of these names."""
    return any(
        isinstance(sub, ast.Attribute) and sub.attr in attrs
        for sub in ast.walk(node)
    )


def attribute_chain_names(node: ast.AST) -> Tuple[str, ...]:
    """All attribute names appearing anywhere in the subtree."""
    return tuple(
        sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)
    )
