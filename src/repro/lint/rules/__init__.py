"""Rule packs — importing this package registers every rule.

Packs:

- :mod:`.determinism` — RNG/clock/set-ordering discipline behind the
  repo's bit-identical-history guarantees;
- :mod:`.comm` — every cross-party byte in ``repro.core`` /
  ``repro.baselines`` goes through :class:`~repro.fl.channel.CommChannel`;
- :mod:`.autograd` — no in-place mutation of autograd-visible buffers in
  ``repro.nn``, backward closures paired with forward bookkeeping,
  parameters registered on modules;
- :mod:`.obs` — ``scope/name`` metric naming and span lifecycle hygiene;
- :mod:`.hygiene` — unused imports, shadowed builtins, dead assignments;
- :mod:`.flow` — whole-program packs (``flow-dtype``,
  ``flow-checkpoint``, ``flow-config``) computed on the
  :class:`~repro.lint.flow.ProjectModel` instead of a single module.
"""

from . import autograd, comm, determinism, flow, hygiene, obs  # noqa: F401

__all__ = ["autograd", "comm", "determinism", "flow", "hygiene", "obs"]
