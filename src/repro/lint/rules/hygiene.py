"""Hygiene pack: unused imports, shadowed builtins, dead assignments.

These are the auto-fixable findings — they never change behaviour, only
remove noise that hides real problems (an unused import keeps a
dependency edge alive; a dead assignment usually marks a refactor that
forgot half of itself; a shadowed builtin turns a later `list(...)` call
into a crash at a distance).

The checks are deliberately conservative: re-export modules
(``__init__.py``) are exempt from unused-import, imports gated behind
``try``/``if`` blocks are treated as intentional, and string annotations
count as uses.  A missed finding is cheap; a false positive erodes trust
in the whole linter.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from ..registry import register

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Builtins whose shadowing reliably causes action-at-a-distance bugs.
SHADOWABLE_BUILTINS = frozenset(
    {
        "all", "any", "bool", "bytes", "callable", "compile", "dict", "dir",
        "eval", "exec", "filter", "float", "format", "hash", "id", "input",
        "int", "iter", "len", "list", "map", "max", "min", "next", "object",
        "open", "print", "property", "range", "repr", "round", "set",
        "sorted", "str", "sum", "tuple", "type", "vars", "zip",
    }
)


def _scope_children(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _annotation_string_words(tree: ast.AST) -> Set[str]:
    """Identifiers inside string annotations (``x: "Tensor"``)."""
    words: Set[str] = set()

    def collect(annotation) -> None:
        if annotation is None:
            return
        for node in ast.walk(annotation):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                words.update(_WORD_RE.findall(node.value))

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                collect(arg.annotation)
            collect(node.returns)
        elif isinstance(node, ast.AnnAssign):
            collect(node.annotation)
    return words


def _dunder_all_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                names.add(sub.value)
    return names


@register(
    "hyg-unused-import",
    pack="hygiene",
    severity="warning",
    summary="module-level import never referenced",
    description=(
        "A top-level import whose bound name is never used anywhere in the "
        "module (including `__all__` and string annotations). Re-export "
        "modules (`__init__.py`) and imports gated behind `try`/`if` "
        "blocks are exempt. Fix by deleting the import."
    ),
)
def check_unused_import(ctx):
    if ctx.is_package_init():
        return
    bindings = []
    for node in ctx.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings.append((name, node))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings.append((alias.asname or alias.name, node))
    if not bindings:
        return
    used = {
        node.id for node in ast.walk(ctx.tree) if isinstance(node, ast.Name)
    }
    used |= _dunder_all_names(ctx.tree)
    used |= _annotation_string_words(ctx.tree)
    for name, node in bindings:
        if name not in used:
            yield node, f"import '{name}' is unused"


@register(
    "hyg-shadowed-builtin",
    pack="hygiene",
    severity="warning",
    summary="binding shadows a python builtin",
    description=(
        "A parameter, assignment, loop variable, or def/class name reusing "
        "a builtin (`id`, `list`, `filter`, ...) makes later calls to the "
        "builtin in the same scope fail or — worse — succeed with the "
        "wrong object. Rename the binding. Class-body bindings (fields, "
        "methods like `Module.eval` or `Gauge.set`) are exempt: class "
        "scope does not leak into method bodies, and attribute-style APIs "
        "legitimately reuse these names."
    ),
)
def check_shadowed_builtin(ctx):
    exempt = set()
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                exempt.add(id(stmt))
            elif isinstance(stmt, ast.Assign):
                exempt.update(
                    id(t) for t in stmt.targets if isinstance(t, ast.Name)
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                exempt.add(id(stmt.target))

    def flag(name: str, node):
        if name in SHADOWABLE_BUILTINS and id(node) not in exempt:
            yield node, f"'{name}' shadows the builtin"

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from flag(node.name, node)
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                yield from flag(arg.arg, arg)
        elif isinstance(node, ast.Lambda):
            for arg in node.args.args:
                yield from flag(arg.arg, arg)
        elif isinstance(node, ast.ClassDef):
            yield from flag(node.name, node)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            yield from flag(node.name, node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield from flag(node.id, node)


@register(
    "hyg-dead-assignment",
    pack="hygiene",
    severity="warning",
    summary="local variable assigned but never read",
    description=(
        "A function-local `name = expr` whose name is never loaded "
        "anywhere in the function (closures included) is a dead store — "
        "usually the leftover half of a refactor. Delete the binding (keep "
        "the expression if it has side effects) or prefix the name with "
        "`_` when the discard is intentional."
    ),
)
def check_dead_assignment(ctx):
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared_global: Set[str] = set()
        for node in _scope_children(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared_global.update(node.names)
        loads = {
            node.id
            for node in ast.walk(func)
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store)
        }
        for node in _scope_children(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if (
                name.startswith("_")
                or name in declared_global
                or name in loads
            ):
                continue
            yield node, f"'{name}' is assigned but never read in {func.name}()"
