"""Fig. 8 — ablation of FedPKD's two prototype mechanisms.

Arms (highly non-IID settings):

- ``fedpkd``        — the full method;
- ``w/o Pro``       — prototype loss removed from the server objective
  (``server_prototype_loss=False``);
- ``w/o D.F.``      — data filtering disabled (``use_filtering=False``).

Extended arms (DESIGN.md extras, off by default):

- ``equal-agg``     — variance weighting replaced by equal averaging;
- ``random-filter`` — prototype filtering replaced by random subsampling.

The claim to reproduce: removing either mechanism lowers server accuracy.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .harness import (
    ExperimentSetting,
    format_table,
    make_bundle,
    run_algorithm,
    save_results,
)

__all__ = ["run", "main", "ARMS", "EXTENDED_ARMS"]

ARMS = {
    "fedpkd": {},
    "w/o Pro": {"server_prototype_loss": False},
    "w/o D.F.": {"use_filtering": False},
}

EXTENDED_ARMS = {
    **ARMS,
    "equal-agg": {"aggregation": "equal"},
    "random-filter": {"filter_mode": "random"},
}


def run(
    scale: str = "tiny",
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10",),
    partitions: Sequence[str] = ("dir0.1",),
    arms: Dict[str, dict] = None,
) -> Dict:
    """Return ``{dataset: {partition: {arm: (S_acc, C_acc)}}}``."""
    arms = arms or ARMS
    results: Dict = {}
    for dataset in datasets:
        results[dataset] = {}
        for partition in partitions:
            setting = ExperimentSetting(
                dataset=dataset, partition=partition, scale=scale, seed=seed
            )
            # every arm is FedPKD with different switches, on the same bundle
            bundle = make_bundle(setting)
            cell = {}
            for arm_name, overrides in arms.items():
                hist = run_algorithm(setting, "fedpkd", bundle=bundle, **overrides)
                cell[arm_name] = (hist.best_server_acc, hist.best_client_acc)
            results[dataset][partition] = cell
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_partition in results.items():
        for partition, cell in by_partition.items():
            for arm, (s_acc, c_acc) in cell.items():
                rows.append([dataset, partition, arm, s_acc, c_acc])
    return format_table(
        ["dataset", "partition", "arm", "S_acc", "C_acc"],
        rows,
        title="Fig. 8 — FedPKD ablation (highly non-IID)",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed, datasets=("cifar10", "cifar100"))
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig8")
    return results


if __name__ == "__main__":
    main()
