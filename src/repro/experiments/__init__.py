"""Experiment runners regenerating every figure and table of the paper.

Each module exposes ``run(scale=..., seed=...) -> dict`` returning raw
numbers and ``main()`` printing a formatted table.  The ``benchmarks/``
tree wraps these with pytest-benchmark; the per-experiment index lives in
DESIGN.md.
"""

from . import (
    fig1_motivation,
    fig2_logit_quality,
    fig3_comm_vs_publicsize,
    fig5_homogeneous,
    fig6_curves,
    fig7_heterogeneous,
    fig8_ablation,
    fig9_theta,
    fig10_delta,
    table1_comm,
)
from .harness import (
    PARTITIONS,
    SCALES,
    ExperimentSetting,
    ScaleConfig,
    compare_algorithms,
    federation_for,
    format_table,
    make_bundle,
    model_roles,
    run_algorithm,
)

__all__ = [
    "ExperimentSetting",
    "ScaleConfig",
    "SCALES",
    "PARTITIONS",
    "make_bundle",
    "model_roles",
    "federation_for",
    "run_algorithm",
    "compare_algorithms",
    "format_table",
    "fig1_motivation",
    "fig2_logit_quality",
    "fig3_comm_vs_publicsize",
    "fig5_homogeneous",
    "fig6_curves",
    "fig7_heterogeneous",
    "fig8_ablation",
    "fig9_theta",
    "fig10_delta",
    "table1_comm",
]
