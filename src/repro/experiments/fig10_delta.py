"""Fig. 10 — sensitivity to the server loss mix δ.

δ weights classifier learning (KL + CE on aggregated logits) against
feature learning (prototype MSE) in the server objective (Eq. 13).  The
paper finds CIFAR-10 peaking near δ=0.5 while CIFAR-100 prefers small δ
(more feature learning for the harder task).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .harness import ExperimentSetting, format_table, make_bundle, run_algorithm, save_results

__all__ = ["run", "main", "DEFAULT_DELTAS"]

DEFAULT_DELTAS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run(
    scale: str = "tiny",
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10",),
    partition: str = "dir0.1",
    deltas: Sequence[float] = DEFAULT_DELTAS,
) -> Dict:
    """Return ``{dataset: {delta: S_acc}}``."""
    results: Dict = {}
    for dataset in datasets:
        setting = ExperimentSetting(
            dataset=dataset, partition=partition, scale=scale, seed=seed
        )
        bundle = make_bundle(setting)
        results[dataset] = {}
        for delta in deltas:
            hist = run_algorithm(setting, "fedpkd", bundle=bundle, delta=delta)
            results[dataset][delta] = hist.best_server_acc
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_delta in results.items():
        for delta, acc in by_delta.items():
            rows.append([dataset, delta, acc])
    return format_table(
        ["dataset", "delta", "S_acc"],
        rows,
        title="Fig. 10 — server accuracy vs loss mix δ",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed, datasets=("cifar10", "cifar100"))
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig10")
    return results


if __name__ == "__main__":
    main()
