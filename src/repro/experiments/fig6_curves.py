"""Fig. 6 — accuracy vs communication round under highly non-IID data.

Reproduces the training curves: FedPKD's server and client accuracy should
dominate the benchmarks across rounds when the partition is highly skewed
(shards k=3 / Dirichlet α=0.1).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .fig5_homogeneous import ALL_ALGORITHMS
from .harness import ExperimentSetting, compare_algorithms, format_table, save_results

__all__ = ["run", "main"]


def run(
    scale: str = "tiny",
    seed: int = 0,
    dataset: str = "cifar10",
    partition: str = "dir0.1",
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    rounds: int = None,
) -> Dict:
    """Return per-algorithm accuracy curves.

    ``{algorithm: {"server": [...], "client": [...], "rounds": [...]}}``.
    """
    setting = ExperimentSetting(
        dataset=dataset, partition=partition, scale=scale, seed=seed
    )
    histories = compare_algorithms(setting, algorithms, rounds=rounds)
    return {
        name: {
            "rounds": [r.round_index for r in hist.records],
            "server": hist.server_acc_curve(),
            "client": hist.client_acc_curve(),
        }
        for name, hist in histories.items()
    }


def as_table(results: Dict) -> str:
    rows = []
    for name, curves in results.items():
        for i, rnd in enumerate(curves["rounds"]):
            rows.append([name, rnd, curves["server"][i], curves["client"][i]])
    return format_table(
        ["algorithm", "round", "S_acc", "C_acc"],
        rows,
        title="Fig. 6 — accuracy vs round (highly non-IID)",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed)
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig6")
    return results


if __name__ == "__main__":
    main()
