"""Table I — communication overhead to reach a target accuracy.

Under weakly non-IID settings the paper measures the cumulative MB each
method needs before its client/server accuracy first reaches a target
(60% on CIFAR-10, 25% on CIFAR-100), reporting N/A for metrics a method
does not support or never reaches.  The claim to reproduce: FedPKD reaches
the targets with substantially less traffic than every benchmark, because
it ships logits (not weights) and filtering shrinks the downlink.

Absolute targets depend on the data substrate, so at reduced scales the
targets are set relative to FedPKD's achieved accuracy (``target_fraction``
of its best) — preserving the comparison's meaning: "traffic until a fixed,
commonly reachable accuracy level".
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..algorithms import algorithm_supports
from .harness import ExperimentSetting, compare_algorithms, format_table, save_results

__all__ = ["run", "main", "TABLE_ALGORITHMS"]

TABLE_ALGORITHMS = ("fedavg", "fedprox", "feddf", "fedmd", "dsfl", "fedpkd")


def run(
    scale: str = "tiny",
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10",),
    partitions: Sequence[str] = ("dir0.5",),
    algorithms: Sequence[str] = TABLE_ALGORITHMS,
    target_fraction: float = 0.8,
    explicit_targets: Optional[Dict[str, float]] = None,
) -> Dict:
    """Return comm-to-target for each cell.

    ``{dataset: {partition: {"targets": (client, server),
    "mb": {algorithm: {"client": mb|None, "server": mb|None}}}}}``
    """
    results: Dict = {}
    for dataset in datasets:
        results[dataset] = {}
        for partition in partitions:
            setting = ExperimentSetting(
                dataset=dataset, partition=partition, scale=scale, seed=seed
            )
            histories = compare_algorithms(setting, algorithms)
            if explicit_targets and dataset in explicit_targets:
                client_target = server_target = explicit_targets[dataset]
            else:
                anchor = histories["fedpkd"]
                server_target = target_fraction * anchor.best_server_acc
                client_target = target_fraction * anchor.best_client_acc
            cell_mb: Dict[str, Dict[str, Optional[float]]] = {}
            for name, hist in histories.items():
                client_mb = (
                    hist.comm_to_reach(client_target, metric="client")
                    if algorithm_supports(name, "client_metric")
                    else None
                )
                server_mb = (
                    hist.comm_to_reach(server_target, metric="server")
                    if algorithm_supports(name, "server_model")
                    else None
                )
                cell_mb[name] = {"client": client_mb, "server": server_mb}
            results[dataset][partition] = {
                "targets": (client_target, server_target),
                "mb": cell_mb,
            }
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_partition in results.items():
        for partition, cell in by_partition.items():
            c_target, s_target = cell["targets"]
            for name, mbs in cell["mb"].items():
                rows.append(
                    [
                        dataset,
                        partition,
                        name,
                        f"{c_target:.3f}",
                        mbs["client"],
                        f"{s_target:.3f}",
                        mbs["server"],
                    ]
                )
    return format_table(
        [
            "dataset",
            "partition",
            "algorithm",
            "C target",
            "C_acc MB",
            "S target",
            "S_acc MB",
        ],
        rows,
        title="Table I — communication (MB) to reach target accuracy",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(
        scale=scale, seed=seed, datasets=("cifar10", "cifar100")
    )
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "table1")
    return results


if __name__ == "__main__":
    main()
