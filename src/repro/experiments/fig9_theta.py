"""Fig. 9 — sensitivity to the filter select-ratio θ.

Under highly non-IID settings, a smaller θ discards more public samples.
The paper observes accuracy declining from θ=70% down to θ=30%: dropping
the *worst* samples helps (vs no filtering), but discarding too many
removes useful training signal.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .harness import ExperimentSetting, format_table, make_bundle, run_algorithm, save_results

__all__ = ["run", "main", "DEFAULT_THETAS"]

DEFAULT_THETAS = (0.3, 0.5, 0.7)


def run(
    scale: str = "tiny",
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10",),
    partition: str = "dir0.1",
    thetas: Sequence[float] = DEFAULT_THETAS,
) -> Dict:
    """Return ``{dataset: {theta: S_acc}}``."""
    results: Dict = {}
    for dataset in datasets:
        setting = ExperimentSetting(
            dataset=dataset, partition=partition, scale=scale, seed=seed
        )
        bundle = make_bundle(setting)
        results[dataset] = {}
        for theta in thetas:
            hist = run_algorithm(
                setting, "fedpkd", bundle=bundle, select_ratio=theta
            )
            results[dataset][theta] = hist.best_server_acc
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_theta in results.items():
        for theta, acc in by_theta.items():
            rows.append([dataset, f"{theta:.0%}", acc])
    return format_table(
        ["dataset", "theta", "S_acc"],
        rows,
        title="Fig. 9 — server accuracy vs select ratio θ",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed, datasets=("cifar10", "cifar100"))
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig9")
    return results


if __name__ == "__main__":
    main()
