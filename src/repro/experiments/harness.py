"""Shared experiment harness: scales, settings, runners, and formatting.

Every figure/table module builds on this.  The paper's experiments are GPU-
scale; the harness exposes three scale presets so the same code runs as a
seconds-long benchmark (``tiny``), a minutes-long trend check (``small``),
or the full paper configuration (``paper``) given enough compute.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..algorithms import algorithm_supports, build_algorithm
from ..data.datasets import FederatedDataBundle, make_task
from ..fl.async_engine import AsyncRoundEngine
from ..fl.checkpoint import load_checkpoint, load_history, read_checkpoint_meta
from ..fl.config import FederationConfig
from ..fl.metrics import RunHistory
from ..fl.simulation import build_federation

__all__ = [
    "ScaleConfig",
    "SCALES",
    "ExperimentSetting",
    "make_bundle",
    "model_roles",
    "federation_for",
    "run_algorithm",
    "compare_algorithms",
    "format_table",
    "save_results",
    "PARTITIONS",
]


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs that trade fidelity for runtime."""

    n_train: int
    n_test: int
    n_public: int
    num_clients: int
    rounds: int
    epoch_scale: float
    model_family: str  # "mlp" (fast) or "resnet" (faithful to the paper)
    cifar100_data_factor: float = 2.5  # 100-class runs need more samples

    def sized_for(self, dataset: str) -> "ScaleConfig":
        if dataset != "cifar100":
            return self
        f = self.cifar100_data_factor
        return replace(
            self,
            n_train=int(self.n_train * f),
            n_test=int(self.n_test * f),
            n_public=int(self.n_public * f),
        )


SCALES: Dict[str, ScaleConfig] = {
    # seconds per run — used by the pytest benchmarks and tests
    "tiny": ScaleConfig(800, 300, 200, 4, 3, 0.2, "mlp"),
    # a minute or two per run — shows the paper's trends clearly
    "small": ScaleConfig(2000, 600, 500, 6, 6, 0.3, "mlp"),
    # the paper's configuration (CIFAR-scale, ResNets, 70 rounds)
    "paper": ScaleConfig(20000, 4000, 5000, 10, 70, 1.0, "resnet"),
}

# Partition shorthand used across the figure modules: name -> (kind, kwargs)
PARTITIONS: Dict[str, Tuple[str, dict]] = {
    "iid": ("iid", {}),
    "dir0.1": ("dirichlet", {"alpha": 0.1}),
    "dir0.3": ("dirichlet", {"alpha": 0.3}),
    "dir0.5": ("dirichlet", {"alpha": 0.5}),
    # paper: CIFAR-10 shards with k in {3, 5}; CIFAR-100 with k in {30, 50}
    "shards3": ("shards", {"classes_per_client": 3}),
    "shards5": ("shards", {"classes_per_client": 5}),
    "shards30": ("shards", {"classes_per_client": 30}),
    "shards50": ("shards", {"classes_per_client": 50}),
}


@dataclass
class ExperimentSetting:
    """One experimental cell: dataset × partition × model setting × scale."""

    dataset: str = "cifar10"
    partition: str = "dir0.5"
    heterogeneous: bool = False
    scale: str = "tiny"
    seed: int = 0
    scale_overrides: dict = field(default_factory=dict)
    # cohort simulation at scale (see repro.fl.registry / docs/SCALE.md):
    # sample a sub-cohort per round, cap carried-over materialised clients,
    # and evaluate C_acc on a seeded per-round sample
    clients_per_round: Optional[int] = None
    max_live_clients: Optional[int] = None
    eval_clients: Optional[int] = None
    # client-execution runtime (see repro.runtime)
    executor: str = "serial"
    max_workers: Optional[int] = None
    task_timeout_s: Optional[float] = None
    retry_backoff_s: float = 0.0
    # round engine (see repro.fl.async_engine / docs/ASYNC.md); the async
    # knobs are ignored under the default sync engine
    engine: str = "sync"
    max_staleness: int = 0
    staleness_alpha: float = 0.5
    buffer_size: Optional[int] = None
    fault_plan: Optional[object] = None  # JSON path, dict, or FaultPlan
    # exact-resume autosave (see repro.fl.checkpoint / docs/CHECKPOINT.md)
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None
    # observability (see repro.obs / docs/OBSERVABILITY.md)
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    profile: bool = False
    # artifact root: relative checkpoint/trace/metrics paths resolve under
    # this directory, so a sweep (or any caller) can redirect a run's
    # artifacts without chdir tricks.  None keeps paths as given.
    out_dir: Optional[str] = None

    def scale_config(self) -> ScaleConfig:
        base = SCALES[self.scale].sized_for(self.dataset)
        if self.scale_overrides:
            base = replace(base, **self.scale_overrides)
        return base

    def resolve_artifact(self, path: Optional[str]) -> Optional[str]:
        """Resolve an artifact path against ``out_dir``.

        Absolute paths (and every path when ``out_dir`` is unset) pass
        through unchanged; relative ones land under ``out_dir``.
        """
        if path is None or self.out_dir is None or os.path.isabs(path):
            return path
        return os.path.join(self.out_dir, path)


def make_bundle(setting: ExperimentSetting) -> FederatedDataBundle:
    """Generate the data bundle for a setting (deterministic in the seed)."""
    sc = setting.scale_config()
    task = make_task(setting.dataset, seed=setting.seed)
    return task.make_bundle(sc.n_train, sc.n_test, sc.n_public, seed=setting.seed + 1)


def model_roles(family: str, heterogeneous: bool) -> Dict[str, object]:
    """Map the paper's model roles onto a family.

    Returns ``client_models`` (str or list), ``big_server`` (for KD-based
    algorithms) and ``peer_server`` (for weight-averaging algorithms whose
    server must match the clients).
    """
    if family == "resnet":
        if heterogeneous:
            return {
                "client_models": ["resnet11", "resnet20", "resnet29"],
                "big_server": "resnet56",
                "peer_server": None,  # weight averaging impossible
            }
        return {
            "client_models": "resnet20",
            "big_server": "resnet56",
            "peer_server": "resnet20",
        }
    if family == "mlp":
        if heterogeneous:
            return {
                "client_models": ["mlp_small", "mlp_medium", "mlp_large"],
                "big_server": "mlp_xlarge",
                "peer_server": None,
            }
        return {
            "client_models": "mlp_medium",
            "big_server": "mlp_large",
            "peer_server": "mlp_medium",
        }
    raise ValueError(f"unknown model family '{family}'")


def federation_for(
    setting: ExperimentSetting,
    algorithm: str,
    bundle: Optional[FederatedDataBundle] = None,
):
    """Build the federation an algorithm needs under a setting.

    Weight-averaging algorithms (FedAvg/FedProx/FedDF) get a server matching
    the client architecture; KD-based ones get the big server; FedMD/DS-FL
    get none.
    """
    if bundle is None:
        bundle = make_bundle(setting)
    sc = setting.scale_config()
    roles = model_roles(sc.model_family, setting.heterogeneous)

    if not algorithm_supports(algorithm, "heterogeneous") and setting.heterogeneous:
        raise ValueError(
            f"{algorithm} does not support heterogeneous client models"
        )

    if not algorithm_supports(algorithm, "server_model"):
        server_model = None
    elif algorithm in ("fedavg", "fedprox", "feddf"):
        server_model = roles["peer_server"]
    else:
        server_model = roles["big_server"]

    config = FederationConfig(
        num_clients=sc.num_clients,
        partition=PARTITIONS[setting.partition],
        client_models=roles["client_models"],
        server_model=server_model,
        seed=setting.seed,
        clients_per_round=setting.clients_per_round,
        max_live_clients=setting.max_live_clients,
        eval_clients=setting.eval_clients,
        executor=setting.executor,
        max_workers=setting.max_workers,
        task_timeout_s=setting.task_timeout_s,
        retry_backoff_s=setting.retry_backoff_s,
        engine=setting.engine,
        max_staleness=setting.max_staleness,
        staleness_alpha=setting.staleness_alpha,
        buffer_size=setting.buffer_size,
        fault_plan=setting.fault_plan,
        checkpoint_every=setting.checkpoint_every,
        checkpoint_path=setting.resolve_artifact(setting.checkpoint_path),
        trace_path=setting.resolve_artifact(setting.trace_path),
        metrics_path=setting.resolve_artifact(setting.metrics_path),
        profile=setting.profile,
    )
    return build_federation(bundle, config)


def run_algorithm(
    setting: ExperimentSetting,
    algorithm: str,
    bundle: Optional[FederatedDataBundle] = None,
    rounds: Optional[int] = None,
    eval_every: int = 1,
    resume: bool = False,
    **config_overrides,
) -> RunHistory:
    """Run one algorithm under a setting and return its history.

    With ``resume=True`` and an existing ``setting.checkpoint_path`` file,
    the full training state (weights, RNG streams, comm ledgers, history)
    is restored and only the remaining rounds run — bit-identical to having
    never stopped.  A missing checkpoint file starts from scratch.
    """
    sc = setting.scale_config()
    federation = federation_for(setting, algorithm, bundle)
    try:
        algo = build_algorithm(
            algorithm,
            federation,
            seed=setting.seed,
            epoch_scale=sc.epoch_scale,
            **config_overrides,
        )
        total_rounds = rounds or sc.rounds
        # the engine must exist before load_checkpoint: async checkpoints
        # carry pipeline state the loader hands to algo.async_engine
        runner = algo
        if setting.engine == "async":
            runner = AsyncRoundEngine(
                algo,
                max_staleness=setting.max_staleness,
                staleness_alpha=setting.staleness_alpha,
                buffer_size=setting.buffer_size,
                fault_plan=setting.fault_plan,
            )
        history: Optional[RunHistory] = None
        rounds_done = 0
        if resume:
            if not setting.checkpoint_path:
                raise ValueError("resume=True requires setting.checkpoint_path")
            ckpt_path = setting.resolve_artifact(setting.checkpoint_path)
            if os.path.exists(ckpt_path):
                # the trace file survives the restart: append to it behind a
                # `resume` marker.  This must precede load_checkpoint, whose
                # checkpoint/load event is otherwise the tracer's first write
                # and would truncate the existing trace.
                meta = read_checkpoint_meta(ckpt_path)
                federation.obs.mark_resume(meta["round_index"])
                rounds_done = load_checkpoint(algo, ckpt_path)
                history = load_history(ckpt_path)
        remaining = max(0, total_rounds - rounds_done)
        if remaining > 0:
            history = runner.run(remaining, eval_every=eval_every, history=history)
        elif history is None:
            history = RunHistory(
                algo.name, dataset=setting.dataset, config={"rounds": total_rounds}
            )
    finally:
        federation.close()
    history.dataset = setting.dataset
    history.config.update(
        {
            "partition": setting.partition,
            "heterogeneous": setting.heterogeneous,
            "scale": setting.scale,
            "seed": setting.seed,
        }
    )
    return history


def compare_algorithms(
    setting: ExperimentSetting,
    algorithms: Sequence[str],
    rounds: Optional[int] = None,
    eval_every: int = 1,
    per_algorithm_overrides: Optional[Dict[str, dict]] = None,
) -> Dict[str, RunHistory]:
    """Run several algorithms on the *same* data bundle for fair comparison."""
    bundle = make_bundle(setting)
    per_algorithm_overrides = per_algorithm_overrides or {}
    results: Dict[str, RunHistory] = {}
    for name in algorithms:
        overrides = per_algorithm_overrides.get(name, {})
        results[name] = run_algorithm(
            setting, name, bundle=bundle, rounds=rounds, eval_every=eval_every,
            **overrides,
        )
    return results


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (the harness's human-readable output)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        if np.isnan(value):
            return "N/A"
        return f"{value:.3f}"
    return str(value)


def save_results(results: object, out_dir: str, name: str) -> str:
    """Write an experiment's raw result dict as ``<out_dir>/<name>.json``.

    The shared artifact sink of every fig/table module's ``main(out_dir=)``
    — the directory is injected, so callers (the sweep scheduler, CI, the
    CLI ``--out-dir`` flag) redirect artifacts without chdir tricks.
    Non-JSON scalars (numpy floats/arrays) are coerced via ``default``.
    """
    import json

    def _default(value):
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (np.floating, np.integer)):
            return value.item()
        return float(value)

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=1, default=_default)
    os.replace(tmp, path)
    return path
