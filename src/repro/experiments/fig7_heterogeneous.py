"""Fig. 7 — accuracy comparison with heterogeneous client models.

Clients run three different architectures (the paper's ResNet-11/20/29
roles) and only the KD-based methods that tolerate heterogeneity compete:
FedMD, DS-FL, FedET, and FedPKD.  The claims to reproduce:

1. FedPKD outperforms the heterogeneity-capable benchmarks on both metrics;
2. FedPKD benefits from the larger client models relative to its own
   homogeneous-setting results under high skew.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..algorithms import algorithm_supports
from .harness import ExperimentSetting, compare_algorithms, format_table, save_results

__all__ = ["run", "main", "HETERO_ALGORITHMS"]

HETERO_ALGORITHMS = ("fedpkd", "fedmd", "dsfl", "fedet")

PARTITIONS_FOR = {
    "cifar10": ("shards3", "shards5", "dir0.1", "dir0.5"),
    "cifar100": ("shards30", "shards50", "dir0.1", "dir0.5"),
}


def run(
    scale: str = "tiny",
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10",),
    partitions: Sequence[str] = None,
    algorithms: Sequence[str] = HETERO_ALGORITHMS,
) -> Dict:
    """Return ``{dataset: {partition: {algorithm: (S_acc, C_acc)}}}``."""
    results: Dict = {}
    for dataset in datasets:
        parts = partitions or PARTITIONS_FOR[dataset]
        results[dataset] = {}
        for partition in parts:
            setting = ExperimentSetting(
                dataset=dataset,
                partition=partition,
                heterogeneous=True,
                scale=scale,
                seed=seed,
            )
            histories = compare_algorithms(setting, algorithms)
            cell = {}
            for name, hist in histories.items():
                s_acc = (
                    hist.best_server_acc
                    if algorithm_supports(name, "server_model")
                    else None
                )
                cell[name] = (s_acc, hist.best_client_acc)
            results[dataset][partition] = cell
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_partition in results.items():
        for partition, cell in by_partition.items():
            for name, (s_acc, c_acc) in cell.items():
                rows.append([dataset, partition, name, s_acc, c_acc])
    return format_table(
        ["dataset", "partition", "algorithm", "S_acc", "C_acc"],
        rows,
        title="Fig. 7 — heterogeneous-model accuracy comparison",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed, datasets=("cifar10", "cifar100"))
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig7")
    return results


if __name__ == "__main__":
    main()
