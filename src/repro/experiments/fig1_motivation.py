"""Fig. 1 — motivation: FedAvg vs plain KD-based FL, IID vs non-IID.

The paper selects 10000 samples, splits them equally (IID) or by
Dirichlet(α=0.3) (non-IID), and reports the *server* accuracy of FedAvg and
of the naive KD-based method on CIFAR-10/100.  The claims to reproduce:

1. the KD-based method trails FedAvg in both IID and non-IID settings;
2. non-IID data degrades both methods substantially.
"""

from __future__ import annotations

from typing import Dict

from .harness import ExperimentSetting, compare_algorithms, format_table, save_results

__all__ = ["run", "main"]

ALGORITHMS = ("fedavg", "naive_kd")
SETTINGS = ("iid", "dir0.3")


def run(scale: str = "tiny", seed: int = 0, datasets=("cifar10", "cifar100")) -> Dict:
    """Return ``{dataset: {partition: {algorithm: server_acc}}}``."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset in datasets:
        results[dataset] = {}
        for partition in SETTINGS:
            setting = ExperimentSetting(
                dataset=dataset, partition=partition, scale=scale, seed=seed
            )
            # The pilot's KD arm only distils the aggregated logits into the
            # server model — no server-to-client feedback loop.
            histories = compare_algorithms(
                setting,
                ALGORITHMS,
                per_algorithm_overrides={"naive_kd": {"distill_to_clients": False}},
            )
            results[dataset][partition] = {
                name: hist.best_server_acc for name, hist in histories.items()
            }
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_partition in results.items():
        for partition, accs in by_partition.items():
            rows.append(
                [dataset, partition, accs.get("fedavg"), accs.get("naive_kd")]
            )
    return format_table(
        ["dataset", "partition", "FedAvg S_acc", "KD-based S_acc"],
        rows,
        title="Fig. 1 — server accuracy, FedAvg vs KD-based, IID vs non-IID",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed)
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig1")
    return results


if __name__ == "__main__":
    main()
