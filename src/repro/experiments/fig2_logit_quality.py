"""Fig. 2 — why naive logit averaging fails under non-IID data.

Two clients split CIFAR-10 by class (client 1: classes 0–4, client 2:
classes 5–9), train locally, and we measure per-class accuracy of each
client's logits on the public set, plus the per-class accuracy of the
equal-average aggregate.  The claims to reproduce:

1. each client's logit accuracy is high on its own classes, low elsewhere;
2. the equally-averaged logits are mediocre across the board, so they make
   a poor sole supervision signal for server training.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.aggregation import equal_average_aggregate, variance_weighted_aggregate
from ..fl.config import FederationConfig, TrainingConfig
from ..fl.simulation import build_federation
from .harness import ExperimentSetting, make_bundle, model_roles, save_results

__all__ = ["run", "main"]


def _per_class_accuracy(
    logits: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    predictions = logits.argmax(axis=1)
    accs = np.full(num_classes, np.nan)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            accs[cls] = float((predictions[mask] == cls).mean())
    return accs


def run(scale: str = "tiny", seed: int = 0, local_epochs: int = 10) -> Dict:
    """Return per-class logit accuracies and data distribution.

    Keys: ``class_counts`` (2, C), ``client_acc`` (2, C),
    ``aggregated_acc`` (C,), ``variance_weighted_acc`` (C,).
    """
    setting = ExperimentSetting(dataset="cifar10", scale=scale, seed=seed)
    bundle = make_bundle(setting)
    sc = setting.scale_config()
    roles = model_roles(sc.model_family, heterogeneous=False)
    config = FederationConfig(
        num_clients=2,
        partition=("by_classes", {"class_groups": [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]}),
        client_models=roles["client_models"],
        server_model=None,
        seed=seed,
    )
    federation = build_federation(bundle, config)
    train_cfg = TrainingConfig(
        epochs=max(1, int(round(local_epochs * sc.epoch_scale))), batch_size=32
    )
    logits = []
    for client in federation.clients:
        client.train_local(train_cfg)
        logits.append(client.logits_on(bundle.public))
    labels = bundle.public_true_labels
    num_classes = bundle.num_classes
    return {
        "class_counts": np.stack(
            [c.class_counts() for c in federation.clients]
        ),
        "client_acc": np.stack(
            [_per_class_accuracy(l, labels, num_classes) for l in logits]
        ),
        "aggregated_acc": _per_class_accuracy(
            equal_average_aggregate(logits), labels, num_classes
        ),
        "variance_weighted_acc": _per_class_accuracy(
            variance_weighted_aggregate(logits), labels, num_classes
        ),
    }


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed)
    np.set_printoptions(precision=2, suppress=True)
    print("Fig. 2 — per-class logit accuracy under class-disjoint non-IID")
    print("client train counts:\n", results["class_counts"])
    print("client 1 acc per class:", results["client_acc"][0])
    print("client 2 acc per class:", results["client_acc"][1])
    print("equal-average acc     :", results["aggregated_acc"])
    print("variance-weighted acc :", results["variance_weighted_acc"])
    if out_dir:
        save_results(
            {k: np.asarray(v).tolist() for k, v in results.items()},
            out_dir,
            "fig2",
        )
    return results


if __name__ == "__main__":
    main()
