"""Fig. 3 — communication overhead and accuracy vs public-dataset size.

For the KD-based method, the per-round per-client uplink is one logit
vector per public sample, so communication grows linearly with the public
set, eventually crossing the cost of sending model updates instead; but a
bigger public set also raises server accuracy.  The claims to reproduce:

1. per-client logit traffic is proportional to public-set size;
2. past some size it exceeds the model-update payload;
3. server accuracy increases with public-set size.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List


from ..nn.models import build_model
from ..nn.serialize import WIRE_DTYPE
from .harness import ExperimentSetting, format_table, model_roles, run_algorithm, save_results

__all__ = ["run", "main", "DEFAULT_SIZES"]

DEFAULT_SIZES = (100, 200, 400, 800)


def run(
    scale: str = "tiny",
    seed: int = 0,
    public_sizes=DEFAULT_SIZES,
    rounds: int = None,
) -> Dict:
    """Sweep the public-set size with the naive KD method.

    Returns per size: final server accuracy, per-client uplink MB per round,
    plus the model-update payload (MB) for comparison.
    """
    base = ExperimentSetting(dataset="cifar10", partition="dir0.3", scale=scale, seed=seed)
    sc = base.scale_config()
    roles = model_roles(sc.model_family, heterogeneous=False)
    model = build_model(roles["client_models"], 10, (3, 8, 8), rng=seed)
    model_update_mb = model.num_parameters() * WIRE_DTYPE().itemsize / (1024.0**2)

    sizes_out: List[Dict] = []
    for n_public in public_sizes:
        setting = replace(base, scale_overrides={"n_public": int(n_public)})
        history = run_algorithm(setting, "naive_kd", rounds=rounds)
        total_rounds = len(history)
        last = history.records[-1]
        uplink_mb = last.comm_uplink_bytes / (1024.0**2)
        per_client_per_round = uplink_mb / (sc.num_clients * total_rounds)
        sizes_out.append(
            {
                "n_public": int(n_public),
                "server_acc": history.best_server_acc,
                "uplink_mb_per_client_round": per_client_per_round,
            }
        )
    return {"sweep": sizes_out, "model_update_mb": model_update_mb}


def as_table(results: Dict) -> str:
    rows = [
        [
            point["n_public"],
            point["server_acc"],
            point["uplink_mb_per_client_round"],
            results["model_update_mb"],
        ]
        for point in results["sweep"]
    ]
    return format_table(
        ["public size", "S_acc", "logit MB/client/round", "model-update MB"],
        rows,
        title="Fig. 3 — accuracy & per-client communication vs public-set size",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed)
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig3")
    return results


if __name__ == "__main__":
    main()
