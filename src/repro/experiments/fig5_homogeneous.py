"""Fig. 5 — accuracy comparison with homogeneous client models.

Six benchmarks plus FedPKD across {shards-k, Dirichlet-α} × {CIFAR-10,
CIFAR-100}, reporting server accuracy (``S_acc``) and mean personalised
client accuracy (``C_acc``).  FedMD/DS-FL have no server model; FedDF and
FedET do not target client performance (reported anyway, flagged N/A in
the paper's bars).  The claim to reproduce: FedPKD attains the best server
accuracy in every cell and competitive client accuracy, with the gap
widening as the setting becomes more non-IID.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..algorithms import algorithm_supports
from .harness import ExperimentSetting, compare_algorithms, format_table, save_results

__all__ = ["run", "main", "ALL_ALGORITHMS", "PARTITIONS_FOR"]

ALL_ALGORITHMS = ("fedpkd", "fedavg", "fedprox", "feddf", "fedmd", "dsfl", "fedet")

# paper: highly non-IID = {k=3 / k=30, α=0.1}; weakly = {k=5 / k=50, α=0.5}
PARTITIONS_FOR = {
    "cifar10": ("shards3", "shards5", "dir0.1", "dir0.5"),
    "cifar100": ("shards30", "shards50", "dir0.1", "dir0.5"),
}


def run(
    scale: str = "tiny",
    seed: int = 0,
    datasets: Sequence[str] = ("cifar10",),
    partitions: Sequence[str] = None,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
) -> Dict:
    """Return ``{dataset: {partition: {algorithm: (S_acc, C_acc)}}}``."""
    results: Dict = {}
    for dataset in datasets:
        parts = partitions or PARTITIONS_FOR[dataset]
        results[dataset] = {}
        for partition in parts:
            setting = ExperimentSetting(
                dataset=dataset, partition=partition, scale=scale, seed=seed
            )
            histories = compare_algorithms(setting, algorithms)
            cell = {}
            for name, hist in histories.items():
                s_acc = (
                    hist.best_server_acc
                    if algorithm_supports(name, "server_model")
                    else None
                )
                cell[name] = (s_acc, hist.best_client_acc)
            results[dataset][partition] = cell
    return results


def as_table(results: Dict) -> str:
    rows = []
    for dataset, by_partition in results.items():
        for partition, cell in by_partition.items():
            for name, (s_acc, c_acc) in cell.items():
                rows.append([dataset, partition, name, s_acc, c_acc])
    return format_table(
        ["dataset", "partition", "algorithm", "S_acc", "C_acc"],
        rows,
        title="Fig. 5 — homogeneous-model accuracy comparison",
    )


def main(scale: str = "small", seed: int = 0, out_dir: str = None) -> Dict:
    results = run(scale=scale, seed=seed, datasets=("cifar10", "cifar100"))
    print(as_table(results))
    if out_dir:
        save_results(results, out_dir, "fig5")
    return results


if __name__ == "__main__":
    main()
