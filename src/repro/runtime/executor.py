"""Client-execution runtime: serial and process-parallel executors.

The round engine expresses per-client work as *stages* — "run this client
method with these kwargs across these participants".  An :class:`Executor`
runs one stage and reports per-stage wall time plus any irrecoverable task
failures.  Two implementations:

- :class:`SerialExecutor` — inline, in participant order; exactly the
  behaviour of the historical per-client ``for`` loops.
- :class:`ParallelExecutor` — fans tasks out to a process pool.  Model
  state and RNG state travel with each task (see :mod:`repro.runtime.task`),
  so results are bit-identical to serial execution; the driver folds the
  returned state back into its clients in participant order.

Fault tolerance (parallel only): each task gets ``task_timeout_s`` to
deliver a result and ``task_retries`` extra attempts.  A worker death
(:class:`~concurrent.futures.process.BrokenProcessPool`) recycles the pool
and retries; a task that keeps killing workers is re-executed inline.  A
task that exhausts its timeout budget becomes a :class:`TaskFailure` — the
round engine records the client as a runtime dropout and the round goes on.
If the pool keeps collapsing, the executor degrades to inline execution for
the rest of the stage rather than aborting the run.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import nullcontext
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn.serialize import deserialize_state, serialize_state
from ..obs import NULL_OBS
from ..obs.metrics import DEFAULT_TIME_BUCKETS
from .task import ClientSpec, ClientTask, TaskFailure, TaskResult
from .worker import init_worker, resolve_kwargs, run_task

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "make_executor"]

Outcome = Union[TaskResult, TaskFailure]


class Executor:
    """Runs per-client stages and accounts per-stage wall time."""

    name = "base"

    def __init__(self) -> None:
        self._federation = None
        self._stage_times: Dict[str, float] = {}
        self._obs = NULL_OBS

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, federation) -> "Executor":
        """Attach the federation whose clients this executor will drive.

        Also adopts the federation's observability bundle, so stages are
        traced and task metrics published when the run is instrumented.
        """
        self._federation = federation
        self._obs = getattr(federation, "obs", None) or NULL_OBS
        return self

    def close(self) -> None:
        """Release worker resources (no-op for inline executors)."""

    # ------------------------------------------------------------------
    # the stage contract
    # ------------------------------------------------------------------
    def run_stage(
        self,
        clients: Sequence,
        method: str,
        kwargs: Optional[dict] = None,
        stage: Optional[str] = None,
    ) -> Tuple[List[Any], List[TaskFailure]]:
        """Run ``method(**kwargs)`` on every client.

        Returns ``(values, failures)``: ``values`` holds the return values
        of the clients whose task succeeded, in input order; ``failures``
        lists the clients that irrecoverably failed (always empty for
        inline execution).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # timing hooks
    # ------------------------------------------------------------------
    def _record_time(self, stage: str, seconds: float) -> None:
        self._stage_times[stage] = self._stage_times.get(stage, 0.0) + seconds

    # ------------------------------------------------------------------
    # observability hooks (all no-ops unless the run is instrumented)
    # ------------------------------------------------------------------
    def _profile_stage(self, stage: str):
        """Stage-attribution context for the op profiler (no-op when off)."""
        profiler = self._obs.profiler
        if profiler is None:
            return nullcontext()
        return profiler.stage(stage)

    def _stage_span(self, stage: str, num_clients: int):
        return self._obs.tracer.span(
            "stage",
            scope="stage",
            attrs={"stage": stage, "clients": num_clients, "executor": self.name},
        )

    def _publish_outcomes(self, stage: str, outcomes: Sequence[Outcome]) -> None:
        """Emit one client-scoped trace event per task outcome, plus the
        ``runtime/client_task_seconds`` histogram and failure counters."""
        obs = self._obs
        if not obs.enabled:
            return
        metrics = obs.metrics
        hist = (
            metrics.histogram(
                "runtime/client_task_seconds", buckets=DEFAULT_TIME_BUCKETS
            )
            if metrics.enabled
            else None
        )
        for outcome in outcomes:
            if isinstance(outcome, TaskFailure):
                obs.tracer.event(
                    "task_failure",
                    scope="client",
                    attrs={
                        "stage": stage,
                        "client_id": outcome.client_id,
                        "reason": outcome.reason,
                        "detail": outcome.detail,
                    },
                )
                if metrics.enabled:
                    metrics.counter("runtime/task_failures").inc()
            else:
                obs.tracer.event(
                    "client_task",
                    scope="client",
                    attrs={
                        "stage": stage,
                        "client_id": outcome.client_id,
                        "dur_s": outcome.duration_s,
                    },
                )
                if hist is not None:
                    hist.observe(outcome.duration_s)

    def pop_stage_times(self) -> Dict[str, float]:
        """Return accumulated per-stage seconds and reset the ledger."""
        times, self._stage_times = self._stage_times, {}
        return times

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _resolve_inline_kwargs(self, kwargs: Optional[dict]) -> dict:
        shared = {}
        if self._federation is not None:
            shared["public_x"] = self._federation.public_x
        return resolve_kwargs(dict(kwargs or {}), shared)

    def _run_inline(self, client, method: str, kwargs: Optional[dict]) -> TaskResult:
        """Execute one stage entry directly on the driver's client object."""
        start = time.perf_counter()
        with self._obs.profile_model(getattr(client, "model_name", None)):
            value = getattr(client, method)(**self._resolve_inline_kwargs(kwargs))
        return TaskResult(
            client_id=client.client_id,
            value=value,
            duration_s=time.perf_counter() - start,
        )


class SerialExecutor(Executor):
    """Inline execution in participant order — the historical behaviour."""

    name = "serial"

    def run_stage(self, clients, method, kwargs=None, stage=None):
        stage = stage or method
        clients = list(clients)
        start = time.perf_counter()
        with self._stage_span(stage, len(clients)), self._profile_stage(stage):
            results = [self._run_inline(c, method, kwargs) for c in clients]
            self._publish_outcomes(stage, results)
        self._record_time(stage, time.perf_counter() - start)
        return [r.value for r in results], []


class ParallelExecutor(Executor):
    """Process-pool execution with fault-tolerant workers.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``min(num_clients, os.cpu_count())``.
    task_timeout_s:
        Seconds to wait for each task's result while collecting; ``None``
        waits indefinitely.  On timeout the pool is recycled and the task
        retried; once retries are exhausted the client becomes a runtime
        dropout for the round.
    task_retries:
        Extra attempts after the first, for timeouts and worker deaths.
    retry_backoff_s:
        Base of the capped exponential backoff slept before each retry
        resubmission: attempt ``k`` waits
        ``min(cap, retry_backoff_s * 2**(k-1))`` scaled into ``[50%,
        100%]`` by a *seeded* jitter draw, so retry timing is reproducible
        for a fixed ``backoff_seed`` yet never synchronises colliding
        retries.  0 (the default) retries immediately — the historical
        behaviour.
    backoff_seed:
        Seed of the jitter stream (defaults to the federation seed via
        :func:`make_executor`).
    """

    name = "parallel"
    # pool collapses tolerated per stage before degrading to inline
    _MAX_RECYCLES_PER_STAGE = 3
    # ceiling on a single backoff sleep, however many retries accumulate
    _BACKOFF_CAP_S = 30.0

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout_s: Optional[float] = None,
        task_retries: int = 1,
        retry_backoff_s: float = 0.0,
        backoff_seed: int = 0,
    ) -> None:
        super().__init__()
        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.max_workers = max_workers
        self.task_timeout_s = task_timeout_s
        self.task_retries = task_retries
        self.retry_backoff_s = retry_backoff_s
        self._backoff_rng = np.random.default_rng(backoff_seed)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._warned_inline = False

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _build_specs(self) -> Tuple[Dict[int, ClientSpec], Dict[str, Any]]:
        specs: Dict[int, ClientSpec] = {}
        for client in self._federation.clients:
            if client.model_name is None:
                continue
            specs[client.client_id] = ClientSpec(
                client_id=client.client_id,
                model_name=client.model_name,
                num_classes=client.num_classes,
                image_shape=tuple(client.x_train.shape[1:]),
                feature_dim=client.model.feature_dim,
                x_train=client.x_train,
                y_train=client.y_train,
                x_test=client.x_test,
                y_test=client.y_test,
            )
        shared = {"public_x": self._federation.public_x}
        return specs, shared

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._federation is None:
                raise RuntimeError("ParallelExecutor must be bound to a federation")
            specs, shared = self._build_specs()
            workers = self.max_workers or min(
                len(self._federation.clients), os.cpu_count() or 1
            )
            self._pool = ProcessPoolExecutor(
                max_workers=max(1, workers),
                initializer=init_worker,
                initargs=(specs, shared),
            )
        return self._pool

    def _recycle_pool(self) -> None:
        if self._pool is not None:
            # cancel_futures drops queued work; a worker stuck in a hung
            # task is abandoned (it exits once the task returns).
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    # task construction / result application
    # ------------------------------------------------------------------
    def _make_task(self, client, method: str, kwargs: dict, stage: str) -> ClientTask:
        return ClientTask(
            client_id=client.client_id,
            method=method,
            kwargs=kwargs,
            state_blob=serialize_state(client.model.state_dict(), dtype=None),
            rng_state=client.rng_state(),
            stage=stage,
            profile=self._obs.profiler is not None,
        )

    def _apply_result(self, client, result: TaskResult) -> None:
        """Fold a worker's state (and profile aggregate) back into the driver."""
        if result.state_blob is not None:
            client.model.load_state_dict(
                deserialize_state(result.state_blob, dtype=None)
            )
        if result.rng_state is not None:
            client.set_rng_state(result.rng_state)
        if result.profile and self._obs.profiler is not None:
            self._obs.profiler.merge(result.profile)

    # ------------------------------------------------------------------
    # the stage
    # ------------------------------------------------------------------
    def run_stage(self, clients, method, kwargs=None, stage=None):
        stage = stage or method
        clients = list(clients)
        if not clients:
            return [], []
        start = time.perf_counter()
        by_id = {c.client_id: c for c in clients}
        if any(c.model_name is None for c in clients):
            # hand-built clients without a registry spec cannot be shipped
            if not self._warned_inline:
                warnings.warn(
                    "ParallelExecutor: client(s) without model_name; "
                    "running stages inline",
                    RuntimeWarning,
                )
                self._warned_inline = True
            with self._stage_span(stage, len(clients)), self._profile_stage(
                stage
            ):
                results = [self._run_inline(c, method, kwargs) for c in clients]
                self._publish_outcomes(stage, results)
            self._record_time(stage, time.perf_counter() - start)
            return [r.value for r in results], []

        with self._stage_span(stage, len(clients)), self._profile_stage(stage):
            tasks = [
                self._make_task(c, method, dict(kwargs or {}), stage)
                for c in clients
            ]
            outcomes = self._collect(tasks, by_id)
            self._publish_outcomes(stage, outcomes)
            values: List[Any] = []
            failures: List[TaskFailure] = []
            for outcome, client in zip(outcomes, clients):
                if isinstance(outcome, TaskFailure):
                    failures.append(outcome)
                else:
                    self._apply_result(client, outcome)
                    values.append(outcome.value)
            if failures and not values:
                # a stage must not lose every participant: rerun inline (the
                # driver clients are untouched, so this is exactly serial
                # semantics).  A deterministic task exception still propagates.
                results = [self._run_inline(c, method, kwargs) for c in clients]
                self._publish_outcomes(stage, results)
                values = [r.value for r in results]
                failures = []
        self._record_time(stage, time.perf_counter() - start)
        return values, failures

    def _collect(self, tasks: List[ClientTask], by_id: dict) -> List[Outcome]:
        n = len(tasks)
        outcomes: List[Optional[Outcome]] = [None] * n
        attempts = [0] * n
        recycles = 0
        futures = self._submit(tasks, [i for i in range(n)])
        pending = [i for i in range(n)]
        while pending:
            i = pending[0]
            try:
                outcomes[i] = futures[i].result(timeout=self.task_timeout_s)
                pending.pop(0)
                continue
            except FuturesTimeout:
                attempts[i] += 1
                self._harvest(futures, pending, outcomes)
                if attempts[i] > self.task_retries:
                    outcomes[i] = TaskFailure(
                        client_id=tasks[i].client_id,
                        stage=tasks[i].stage,
                        reason="timeout",
                        detail=f"no result within {self.task_timeout_s}s "
                        f"after {attempts[i]} attempt(s)",
                    )
                    pending.pop(0)
            except BrokenExecutor:
                attempts[i] += 1
                self._harvest(futures, pending, outcomes)
                if attempts[i] > self.task_retries:
                    # this task keeps killing workers — run it inline
                    outcomes[i] = self._run_inline(
                        by_id[tasks[i].client_id],
                        tasks[i].method,
                        tasks[i].kwargs,
                    )
                    pending.pop(0)
            # anything else is a genuine task exception raised by client
            # code; it propagates exactly as it would under SerialExecutor

            recycles += 1
            if self._obs.enabled:
                self._obs.tracer.event(
                    "pool_recycle",
                    scope="stage",
                    attrs={"stage": tasks[i].stage, "recycles": recycles},
                )
                if self._obs.metrics.enabled:
                    self._obs.metrics.counter("runtime/pool_recycles").inc()
            self._recycle_pool()
            remaining = [j for j in pending if outcomes[j] is None]
            if recycles > self._MAX_RECYCLES_PER_STAGE:
                # the pool keeps collapsing: finish the stage inline
                for j in remaining:
                    outcomes[j] = self._run_inline(
                        by_id[tasks[j].client_id], tasks[j].method, tasks[j].kwargs
                    )
                break
            self._backoff_sleep(max(attempts[i], 1), tasks[i].stage)
            futures = self._submit(tasks, remaining, futures)
        return [o for o in outcomes if o is not None]

    def _backoff_sleep(self, attempt: int, stage: str) -> float:
        """Sleep the capped exponential backoff before a retry resubmission.

        Returns the seconds slept (0.0 when backoff is disabled).  The
        jitter draw comes from the executor's seeded stream, so the exact
        delay sequence of a run is reproducible.
        """
        if self.retry_backoff_s <= 0:
            return 0.0
        base = min(
            self._BACKOFF_CAP_S, self.retry_backoff_s * (2.0 ** (attempt - 1))
        )
        # "equal jitter": half the delay is deterministic, half scaled by a
        # seeded uniform draw — spreads retries without collapsing to zero
        delay = base * (0.5 + 0.5 * float(self._backoff_rng.random()))
        if self._obs.enabled:
            self._obs.tracer.event(
                "retry_backoff",
                scope="stage",
                attrs={"stage": stage, "attempt": attempt, "backoff_s": delay},
            )
            if self._obs.metrics.enabled:
                self._obs.metrics.counter("runtime/retry_backoffs").inc()
        time.sleep(delay)
        return delay

    def _submit(self, tasks, indices, futures=None):
        futures = dict(futures or {})
        pool = self._ensure_pool()
        for i in indices:
            futures[i] = pool.submit(run_task, tasks[i])
        return futures

    @staticmethod
    def _harvest(futures, pending, outcomes) -> None:
        """Bank results of already-finished tasks before recycling the pool."""
        for j in list(pending):
            fut = futures.get(j)
            if (
                outcomes[j] is None
                and fut is not None
                and fut.done()
                and not fut.cancelled()
                and fut.exception() is None
            ):
                outcomes[j] = fut.result()
                pending.remove(j)

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass


def make_executor(config) -> Executor:
    """Build the executor a :class:`~repro.fl.config.FederationConfig` asks for."""
    kind = getattr(config, "executor", "serial")
    if kind == "parallel":
        return ParallelExecutor(
            max_workers=getattr(config, "max_workers", None),
            task_timeout_s=getattr(config, "task_timeout_s", None),
            task_retries=getattr(config, "task_retries", 1),
            retry_backoff_s=getattr(config, "retry_backoff_s", 0.0),
            backoff_seed=getattr(config, "seed", 0),
        )
    if kind == "serial":
        return SerialExecutor()
    raise ValueError(f"unknown executor kind '{kind}'")
