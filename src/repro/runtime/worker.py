"""Worker-process side of the parallel runtime.

Each worker keeps a per-client cache of rebuilt :class:`~repro.fl.client.
FLClient` objects (model topology + private data, installed once at pool
start-up via :func:`init_worker`).  Every incoming :class:`ClientTask`
overwrites the cached client's weights and RNG from the task payload, runs
the requested method, and ships back the value plus (for mutating methods)
the updated state — so a task is a pure function of its payload and the
static spec, regardless of which worker runs it or in what order.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from ..nn.serialize import deserialize_state, serialize_state
from .task import PUBLIC_X, ClientSpec, ClientTask, TaskResult

__all__ = ["init_worker", "run_task", "FAULT_HOOK"]

# Test-only fault-injection hook.  Assign a callable taking the ClientTask
# in the *parent* process before the pool is created (workers inherit it
# through fork); it runs before every task and may sleep, raise, or kill
# the process to exercise the executor's fault tolerance.
FAULT_HOOK: Optional[Callable[[ClientTask], None]] = None

_SPECS: Dict[int, ClientSpec] = {}
_SHARED: Dict[str, np.ndarray] = {}
_CLIENTS: Dict[int, object] = {}


def init_worker(specs: Dict[int, ClientSpec], shared: Dict[str, np.ndarray]) -> None:
    """Pool initializer: install the static per-client and shared context."""
    _SPECS.clear()
    _SPECS.update(specs)
    _SHARED.clear()
    _SHARED.update(shared)
    _CLIENTS.clear()


def _client_for(client_id: int):
    """Rebuild (and cache) the worker-local client for ``client_id``."""
    client = _CLIENTS.get(client_id)
    if client is not None:
        return client
    spec = _SPECS.get(client_id)
    if spec is None:
        raise KeyError(f"worker has no spec for client {client_id}")
    # imported lazily to keep worker start-up (and the fl<->runtime import
    # graph) light
    from ..fl.client import FLClient
    from ..nn.models import build_model

    model = build_model(
        spec.model_name,
        spec.num_classes,
        tuple(spec.image_shape),
        feature_dim=spec.feature_dim,
        rng=0,  # placeholder weights; every task ships the real state
    )
    client = FLClient(
        client_id=spec.client_id,
        model=model,
        x_train=spec.x_train,
        y_train=spec.y_train,
        x_test=spec.x_test,
        y_test=spec.y_test,
        num_classes=spec.num_classes,
    )
    _CLIENTS[client_id] = client
    return client


def resolve_kwargs(kwargs: dict, shared: Dict[str, np.ndarray]) -> dict:
    """Replace shared-data sentinels (e.g. :data:`PUBLIC_X`) with arrays."""
    resolved = {}
    for key, value in kwargs.items():
        if isinstance(value, str) and value == PUBLIC_X:
            value = shared["public_x"]
        resolved[key] = value
    return resolved


def run_task(task: ClientTask) -> TaskResult:
    """Execute one task against the worker's cached client.

    With ``task.profile`` set, the method runs under a worker-local
    :class:`~repro.obs.profile.OpProfiler` (attributed to the task's
    stage and the client's model) whose aggregate ships back in
    ``TaskResult.profile`` for the driver to merge — per-op attribution
    survives process-pool dispatch.
    """
    if FAULT_HOOK is not None:
        FAULT_HOOK(task)
    start = time.perf_counter()
    client = _client_for(task.client_id)
    if task.state_blob:
        client.model.load_state_dict(deserialize_state(task.state_blob, dtype=None))
    if task.rng_state is not None:
        client.rng.bit_generator.state = task.rng_state
    kwargs = resolve_kwargs(task.kwargs, _SHARED)
    profile_payload = None
    if task.profile:
        from ..obs.profile import OpProfiler, activate

        profiler = OpProfiler()
        spec = _SPECS.get(task.client_id)
        model_name = spec.model_name if spec is not None else None
        with activate(profiler), profiler.stage(
            task.stage or task.method
        ), profiler.model(model_name):
            value = getattr(client, task.method)(**kwargs)
        profile_payload = profiler.to_payload()
    else:
        value = getattr(client, task.method)(**kwargs)
    state_blob = (
        serialize_state(client.model.state_dict(), dtype=None)
        if task.mutates
        else None
    )
    return TaskResult(
        client_id=task.client_id,
        value=value,
        state_blob=state_blob,
        rng_state=client.rng.bit_generator.state,
        duration_s=time.perf_counter() - start,
        profile=profile_payload,
    )
