"""Task specifications shipped between the round engine and workers.

A :class:`ClientTask` is a self-contained description of one unit of
per-client work (local training, public-set inference, ...).  It carries
the client's model state as an npz blob produced by
:mod:`repro.nn.serialize` — live model objects are never pickled — plus
the client's RNG state, so a worker process reproduces exactly the
computation inline execution would have performed.  The worker answers
with a :class:`TaskResult` holding the method's return value and, for
mutating methods, the updated model/RNG state to fold back into the
driver's client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "PUBLIC_X",
    "TASK_METHODS",
    "MUTATING_METHODS",
    "ClientSpec",
    "ClientTask",
    "TaskResult",
    "TaskFailure",
]

# Sentinel kwarg value resolved worker-side to the federation's public set,
# so the (potentially large) public array is shipped once at pool start-up
# instead of once per task.  A plain string keeps it trivially picklable.
PUBLIC_X = "__repro.runtime.public_x__"

# FLClient methods the runtime may dispatch.  Whitelisting keeps the wire
# protocol auditable: a task can only invoke known, side-effect-understood
# entry points.
TASK_METHODS = frozenset(
    {
        "train_local",
        "train_public_distill",
        "logits_on",
        "compute_prototypes",
        "public_knowledge",
        "evaluate",
    }
)

# Methods that update model weights (and always consume the client RNG);
# only these need to ship state back to the driver.
MUTATING_METHODS = frozenset({"train_local", "train_public_distill"})


@dataclass
class ClientSpec:
    """Static per-client context installed in every worker at pool start.

    Holds everything needed to rebuild a structurally identical client
    (the weights are overwritten by each task's ``state_blob``).
    """

    client_id: int
    model_name: str
    num_classes: int
    image_shape: Tuple[int, ...]
    feature_dim: int
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray


@dataclass
class ClientTask:
    """One unit of per-client work, fully serialisable."""

    client_id: int
    method: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    state_blob: bytes = b""
    rng_state: Optional[dict] = None
    stage: str = ""
    # ask the worker to run its own OpProfiler around the task and ship
    # the aggregate back in TaskResult.profile (repro.obs.profile)
    profile: bool = False

    def __post_init__(self) -> None:
        if self.method not in TASK_METHODS:
            raise ValueError(
                f"method '{self.method}' is not a dispatchable client task; "
                f"choose from {sorted(TASK_METHODS)}"
            )

    @property
    def mutates(self) -> bool:
        return self.method in MUTATING_METHODS


@dataclass
class TaskResult:
    """Worker answer: the method's value plus any state to fold back."""

    client_id: int
    value: Any
    state_blob: Optional[bytes] = None
    rng_state: Optional[dict] = None
    duration_s: float = 0.0
    # worker-local OpProfiler aggregate (OpProfiler.to_payload form),
    # merged into the driver profiler by ParallelExecutor._apply_result
    profile: Optional[Dict[str, Any]] = None


@dataclass
class TaskFailure:
    """Terminal failure of one task after retries; the client misses the round."""

    client_id: int
    stage: str
    reason: str  # "timeout" | "worker_death" | "error"
    detail: str = ""
