"""Parallel client-execution runtime with fault-tolerant workers.

Per-client work in synchronous FL (local training, public-set inference)
is embarrassingly parallel.  This package provides the execution substrate
the round engine fans that work out with:

- :class:`SerialExecutor` — inline execution, the default;
- :class:`ParallelExecutor` — a process pool with per-task timeouts,
  bounded retries, and inline fallback, producing bit-identical results
  to serial execution (see ``docs/RUNTIME.md`` for the determinism and
  failure contracts);
- :class:`ClientTask` / :class:`TaskResult` — the serialisable task wire
  format (model state ships via :mod:`repro.nn.serialize`).

Select an executor per experiment through
:class:`~repro.fl.config.FederationConfig` (``executor="parallel"``,
``max_workers``, ``task_timeout_s``, ``task_retries``).
"""

from .executor import Executor, ParallelExecutor, SerialExecutor, make_executor
from .task import (
    MUTATING_METHODS,
    PUBLIC_X,
    TASK_METHODS,
    ClientSpec,
    ClientTask,
    TaskFailure,
    TaskResult,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "ClientSpec",
    "ClientTask",
    "TaskResult",
    "TaskFailure",
    "PUBLIC_X",
    "TASK_METHODS",
    "MUTATING_METHODS",
]
