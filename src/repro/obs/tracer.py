"""Structured event tracer emitting JSONL span/event/marker records.

Design constraints (see ``docs/OBSERVABILITY.md``):

- **append-only, crash-safe** — every record is one complete JSON line
  written and flushed immediately, so a killed run leaves a valid prefix,
  never a torn record;
- **monotonic timestamps** — ``ts`` is seconds since the tracer's epoch
  (``time.monotonic``), immune to wall-clock jumps; markers additionally
  carry ``unix_ts`` for cross-process alignment;
- **nesting via context managers** — ``with tracer.span("round", ...)``
  maintains a span stack, so records carry ``parent_id`` links that
  reconstruct the run → round → stage → client tree;
- **resume-aware** — a resumed run calls :meth:`Tracer.set_resume` before
  the first write; the tracer then appends to the existing file behind a
  ``resume`` marker instead of truncating it;
- **zero overhead when disabled** — :class:`NullTracer` (the default
  everywhere) is falsy and all its methods are no-ops, so call sites can
  gate expensive attribute computation on ``if tracer:``.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from typing import Any, Dict, List, Optional

from .schema import SCHEMA_VERSION

__all__ = ["Tracer", "NullTracer", "Span", "configure_logging"]


def _jsonify(value: Any) -> Any:
    """Coerce an attribute value into the schema's scalar-or-flat-list form."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item") and not hasattr(value, "__len__"):  # numpy scalar
        return _jsonify(value.item())
    if isinstance(value, (list, tuple)) or hasattr(value, "tolist"):
        items = value.tolist() if hasattr(value, "tolist") else list(value)
        return [_jsonify(v) for v in items]
    return str(value)


def _jsonify_attrs(attrs: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    if not attrs:
        return {}
    return {str(key): _jsonify(value) for key, value in attrs.items()}


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer — the default; keeps instrumented code paths free.

    Falsy, so ``if tracer:`` guards any attribute computation that would
    only feed the trace.
    """

    enabled = False
    path: Optional[str] = None

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, scope: str = "stage", attrs=None) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, scope: str = "stage", attrs=None) -> None:
        pass

    def marker(self, name: str, attrs=None) -> None:
        pass

    def set_resume(self, attrs=None) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Span:
    """One timed region; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "scope", "attrs", "span_id", "parent_id", "t_start")

    def __init__(self, tracer: "Tracer", name: str, scope: str, attrs) -> None:
        self._tracer = tracer
        self.name = name
        self.scope = scope
        self.attrs = dict(attrs or {})
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.t_start = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._new_span_id()
        self.parent_id = tracer._stack[-1].span_id if tracer._stack else None
        self.t_start = tracer._now()
        tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._write(
            {
                "v": SCHEMA_VERSION,
                "type": "span",
                "name": self.name,
                "scope": self.scope,
                "ts": self.t_start,
                "dur_s": max(0.0, tracer._now() - self.t_start),
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "attrs": _jsonify_attrs(self.attrs),
            }
        )
        return False


class Tracer:
    """JSONL tracer writing schema-conformant records to ``path``.

    The file opens lazily on the first record: fresh runs truncate and
    start with a ``run_start`` marker; after :meth:`set_resume` the tracer
    appends behind a ``resume`` marker instead, so an interrupted +
    resumed run yields a single continuous trace.
    """

    enabled = True

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        self._resume = resume
        self._resume_attrs: Dict[str, Any] = {}
        self._file = None
        self._seq = 0
        self._stack: List[Span] = []
        self._next_span_id = 1
        self._t0 = time.monotonic()

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _new_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def _ensure_open(self):
        if self._file is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            append = (
                self._resume
                and os.path.exists(self.path)
                and os.path.getsize(self.path) > 0
            )
            self._file = open(self.path, "a" if append else "w", encoding="utf-8")
            self._emit_marker(
                "resume" if append else "run_start", self._resume_attrs
            )
        return self._file

    def _write(self, record: Dict[str, Any]) -> None:
        f = self._ensure_open()
        record["seq"] = self._seq
        self._seq += 1
        f.write(json.dumps(record, separators=(",", ":")) + "\n")
        f.flush()

    def _emit_marker(self, name: str, attrs) -> None:
        self._write(
            {
                "v": SCHEMA_VERSION,
                "type": "marker",
                "name": name,
                "ts": self._now(),
                "unix_ts": time.time(),
                "attrs": _jsonify_attrs(attrs),
            }
        )

    # ------------------------------------------------------------------
    # the emitting API
    # ------------------------------------------------------------------
    def span(self, name: str, scope: str = "stage", attrs=None) -> Span:
        """A context manager recording a timed region on exit."""
        return Span(self, name, scope, attrs)

    def event(self, name: str, scope: str = "stage", attrs=None) -> None:
        """Record a point-in-time observation under the current span."""
        self._write(
            {
                "v": SCHEMA_VERSION,
                "type": "event",
                "name": name,
                "scope": scope,
                "ts": self._now(),
                "parent_id": self._stack[-1].span_id if self._stack else None,
                "attrs": _jsonify_attrs(attrs),
            }
        )

    def marker(self, name: str, attrs=None) -> None:
        """Record a lifecycle marker (``run_start`` / ``resume`` / ``run_end``)."""
        self._ensure_open()
        self._emit_marker(name, attrs)

    def set_resume(self, attrs=None) -> None:
        """Declare this process a resume: append to an existing trace.

        Must run before the first record is emitted; the opening marker
        then becomes ``resume`` (carrying ``attrs``, e.g. the restored
        round index) and the existing file is appended to, not truncated.
        If records were already written, a ``resume`` marker is emitted
        in place instead.
        """
        if self._file is not None:
            self._emit_marker("resume", attrs)
            return
        self._resume = True
        self._resume_attrs = dict(attrs or {})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Close the file; later emissions reopen in append mode."""
        if self._file is not None:
            self._file.close()
            self._file = None
            # never truncate a trace we already wrote to
            self._resume = True

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass


def configure_logging(level: str = "warning") -> logging.Logger:
    """Set the verbosity of the ``repro`` logger hierarchy.

    Attaches one stderr handler (idempotent) and returns the root
    ``repro`` logger; the CLI maps ``--log-level`` here.
    """
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level '{level}'")
    logger = logging.getLogger("repro")
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(numeric)
    return logger
