"""Post-hoc analytics over JSONL traces and metrics exports.

Everything here consumes *files already on disk* — the trace a run wrote
through :class:`repro.obs.Tracer` and the metrics export from
:class:`repro.obs.MetricsRegistry` — and reduces them to the tables the
``repro trace`` CLI prints:

* stage-time aggregation (count / mean / p50 / p95 / total per stage),
* top-K hot ops from ``profile/op`` events with cumulative coverage of
  the owning stage's wall time,
* critical-path reconstruction for async-engine runs (per-client
  dispatch→arrival timelines, staleness distributions, fault causes),
* cohort registry summaries from ``registry/*`` metric records,
* benchmark comparison against a checked-in ``BENCH_N.json`` trajectory
  (the perf-regression gate).

Imports only the stdlib and numpy: the analysis layer must not pull in
the experiment harness (which imports ``repro.nn`` and would create an
import cycle through the profiler hooks).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "load_trace",
    "load_metrics",
    "stage_summary",
    "profile_rows",
    "hot_ops",
    "stage_coverage",
    "critical_path",
    "registry_summary",
    "compare_benchmarks",
]


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_trace(path: str) -> List[dict]:
    """Parse a JSONL trace file into a list of event dicts."""
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def load_metrics(path: str) -> List[dict]:
    """Parse a ``.json``/``.jsonl`` metrics export into record dicts."""
    return load_trace(path)


# ----------------------------------------------------------------------
# stage timing
# ----------------------------------------------------------------------
def _stage_name(event: dict) -> str:
    """Stage spans are named ``stage`` with the real name in attrs."""
    attrs = event.get("attrs") or {}
    return str(attrs.get("stage", event.get("name", "?")))


def stage_summary(events: Sequence[dict]) -> List[Dict[str, Any]]:
    """Per-stage wall-time statistics over all rounds.

    One row per distinct stage with ``count``/``total_s``/``mean_s``/
    ``p50_s``/``p95_s`` computed from the stage-span durations.  Rows are
    sorted by descending total time.
    """
    durations: Dict[str, List[float]] = {}
    for e in events:
        if e.get("scope") == "stage" and e.get("dur_s") is not None:
            durations.setdefault(_stage_name(e), []).append(float(e["dur_s"]))
    rows = []
    for name, vals in durations.items():
        arr = np.asarray(vals, dtype=np.float64)
        rows.append(
            {
                "stage": name,
                "count": int(arr.size),
                "total_s": float(arr.sum()),
                "mean_s": float(arr.mean()),
                "p50_s": float(np.percentile(arr, 50)),
                "p95_s": float(np.percentile(arr, 95)),
            }
        )
    rows.sort(key=lambda r: -r["total_s"])
    return rows


def _stage_wall(events: Sequence[dict]) -> Dict[str, float]:
    """Summed stage-span wall seconds keyed by stage name."""
    wall: Dict[str, float] = {}
    for e in events:
        if e.get("scope") == "stage" and e.get("dur_s") is not None:
            name = _stage_name(e)
            wall[name] = wall.get(name, 0.0) + float(e["dur_s"])
    return wall


# ----------------------------------------------------------------------
# profiled ops
# ----------------------------------------------------------------------
def profile_rows(events: Sequence[dict]) -> List[Dict[str, Any]]:
    """Final per-op aggregates from ``profile/op`` events.

    The profiler publishes *cumulative* aggregates (possibly more than
    once if a run publishes mid-flight), so only the **last** event per
    ``(stage, model, op)`` key counts.  Rows sort by descending seconds.
    """
    latest: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    for e in events:
        if e.get("scope") != "profile" or e.get("name") != "profile/op":
            continue
        a = e.get("attrs") or {}
        key = (str(a.get("stage")), str(a.get("model")), str(a.get("op")))
        latest[key] = {
            "stage": key[0],
            "model": key[1],
            "op": key[2],
            "calls": int(a.get("calls", 0)),
            "seconds": float(a.get("seconds", 0.0)),
            "flops": float(a.get("flops", 0.0)),
            "bytes": float(a.get("bytes", 0.0)),
        }
    rows = list(latest.values())
    rows.sort(key=lambda r: (-r["seconds"], r["stage"], r["model"], r["op"]))
    return rows


def hot_ops(
    events: Sequence[dict],
    stage: Optional[str] = None,
    top_k: int = 10,
) -> List[Dict[str, Any]]:
    """Top-K ops by time, with cumulative share of the stage wall time.

    ``cum_frac`` is measured against the *stage-span wall time* (the
    honest denominator: it includes any glue the profiler missed), or
    against total profiled seconds when no stage spans exist / when
    aggregating across all stages.
    """
    rows = profile_rows(events)
    if stage is not None:
        rows = [r for r in rows if r["stage"] == stage]
    wall = _stage_wall(events)
    if stage is not None and wall.get(stage, 0.0) > 0.0:
        denom = wall[stage]
    else:
        denom = sum(r["seconds"] for r in rows)
    out = []
    cum = 0.0
    for r in rows[: max(top_k, 0)]:
        cum += r["seconds"]
        row = dict(r)
        row["frac"] = r["seconds"] / denom if denom > 0 else 0.0
        row["cum_frac"] = cum / denom if denom > 0 else 0.0
        if r["seconds"] > 0:
            row["gflops_per_s"] = r["flops"] / r["seconds"] / 1e9
        else:
            row["gflops_per_s"] = 0.0
        out.append(row)
    return out


def stage_coverage(events: Sequence[dict]) -> List[Dict[str, Any]]:
    """Per-stage profiled-op seconds vs. stage-span wall seconds.

    ``coverage`` near 1.0 means the profiler accounts for essentially
    all of the stage's wall time; a low value flags untimed glue.
    """
    wall = _stage_wall(events)
    prof: Dict[str, float] = {}
    for r in profile_rows(events):
        prof[r["stage"]] = prof.get(r["stage"], 0.0) + r["seconds"]
    rows = []
    for name, wall_s in wall.items():
        ops_s = prof.get(name, 0.0)
        rows.append(
            {
                "stage": name,
                "wall_s": wall_s,
                "ops_s": ops_s,
                "coverage": ops_s / wall_s if wall_s > 0 else 0.0,
            }
        )
    rows.sort(key=lambda r: -r["wall_s"])
    return rows


# ----------------------------------------------------------------------
# async critical path
# ----------------------------------------------------------------------
def critical_path(events: Sequence[dict]) -> Dict[str, Any]:
    """Reconstruct async-engine dispatch/arrival behaviour from a trace.

    Returns per-client timelines (dispatch count, delay stats, last
    arrival on the virtual clock), the staleness distribution of dropped
    contributions, injected-fault causes, and the overall critical path:
    the clients whose arrivals gated the run (largest total delay).
    Returns an empty dict when the trace has no engine events (sync run).
    """
    dispatches: Dict[int, List[dict]] = {}
    stale: List[int] = []
    faults: Dict[str, int] = {}
    for e in events:
        if e.get("scope") != "engine":
            continue
        a = e.get("attrs") or {}
        name = e.get("name")
        if name == "engine/dispatch":
            dispatches.setdefault(int(a["client_id"]), []).append(a)
        elif name == "engine/stale_drop":
            stale.append(int(a.get("staleness", 0)))
        elif name in ("engine/fault", "engine/timeout"):
            cause = str(a.get("cause", "unknown"))
            faults[cause] = faults.get(cause, 0) + 1
    if not dispatches and not stale and not faults:
        return {}

    clients = []
    for cid in sorted(dispatches):
        rows = dispatches[cid]
        delays = np.asarray([float(r.get("delay", 0.0)) for r in rows])
        arrivals = [float(r.get("arrival", 0.0)) for r in rows]
        clients.append(
            {
                "client_id": cid,
                "dispatches": len(rows),
                "mean_delay": float(delays.mean()) if delays.size else 0.0,
                "max_delay": float(delays.max()) if delays.size else 0.0,
                "total_delay": float(delays.sum()) if delays.size else 0.0,
                "last_arrival": max(arrivals) if arrivals else 0.0,
            }
        )
    # the critical path is the set of slowest clients: they bound the
    # virtual clock and therefore every version bump behind them
    ranked = sorted(clients, key=lambda c: -c["total_delay"])
    summary: Dict[str, Any] = {
        "clients": clients,
        "critical_clients": [c["client_id"] for c in ranked[:3]],
        "stale_drops": len(stale),
        "faults": faults,
    }
    if stale:
        arr = np.asarray(stale, dtype=np.float64)
        summary["staleness"] = {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "max": int(arr.max()),
            "p95": float(np.percentile(arr, 95)),
        }
    return summary


# ----------------------------------------------------------------------
# registry / cohort memory
# ----------------------------------------------------------------------
def registry_summary(metric_records: Sequence[dict]) -> Dict[str, float]:
    """Extract ``registry/*`` counters and gauges from a metrics export.

    These come from :meth:`repro.fl.registry.ClientRegistry.attach_metrics`
    (spill writes, hydrations, clean rebuilds, live-set size, shard
    bytes); absent keys simply don't appear.
    """
    out: Dict[str, float] = {}
    for record in metric_records:
        name = record.get("metric", "")
        if not name.startswith("registry/"):
            continue
        if record.get("kind") == "histogram":
            out[name + "/count"] = float(record.get("count", 0))
            out[name + "/sum"] = float(record.get("sum", 0.0))
        elif record.get("value") is not None:
            out[name] = float(record["value"])
    return out


# ----------------------------------------------------------------------
# perf-regression gate
# ----------------------------------------------------------------------
def compare_benchmarks(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = 0.2,
) -> Dict[str, Any]:
    """Diff two bench-trajectory dicts (``scripts/bench_trajectory.py``).

    Compares ``ops.<name>.ops_per_sec`` for every op present in *both*
    files.  An op has **regressed** when its throughput dropped by more
    than ``threshold`` (fractional: 0.2 = 20%).  Ops only in one file
    are listed but never regress.  Returns::

        {"rows": [...], "regressed": bool, "threshold": float}
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    cur_ops = current.get("ops", {}) or {}
    base_ops = baseline.get("ops", {}) or {}
    rows = []
    regressed = False
    for name in sorted(set(cur_ops) | set(base_ops)):
        cur = cur_ops.get(name, {}).get("ops_per_sec")
        base = base_ops.get(name, {}).get("ops_per_sec")
        row: Dict[str, Any] = {
            "op": name,
            "baseline_ops_per_sec": base,
            "current_ops_per_sec": cur,
            "delta_frac": None,
            "regressed": False,
        }
        if cur is not None and base is not None and base > 0:
            delta = (float(cur) - float(base)) / float(base)
            row["delta_frac"] = delta
            row["regressed"] = delta < -threshold
            regressed = regressed or row["regressed"]
        rows.append(row)
    return {"rows": rows, "regressed": regressed, "threshold": threshold}
