"""The trace/metrics wire schema and its validator.

Every line a :class:`~repro.obs.tracer.Tracer` writes is one JSON object
with ``"v": SCHEMA_VERSION`` and one of three record types:

``span``
    A completed timed region.  Fields: ``name``, ``scope`` (one of
    :data:`SCOPES`), ``ts`` (monotonic start, seconds since the tracer
    epoch), ``dur_s``, ``span_id``, ``parent_id`` (``null`` at top level),
    ``seq``, ``attrs``.
``event``
    A point-in-time observation.  Fields: ``name``, ``scope``, ``ts``,
    ``parent_id`` (the enclosing span, or ``null``), ``seq``, ``attrs``.
``marker``
    A file-level lifecycle record.  ``name`` is one of :data:`MARKERS`;
    fields: ``ts``, ``unix_ts`` (wall clock, for cross-process alignment),
    ``seq``, ``attrs``.  Every process that writes to a trace file opens it
    with a marker (``run_start`` for a fresh file, ``resume`` when
    appending to an existing one), and ``seq`` restarts at 0 there.

``attrs`` values are JSON scalars (string / bool / int / float / null) or
flat lists of scalars — nothing deeper, so any line-oriented tool can
consume a trace without recursion.

Metric export lines (see :meth:`~repro.obs.metrics.MetricsRegistry.export`)
are validated by :func:`validate_metrics_record`.

The validator raises :class:`SchemaError` with a message naming the
offending field; the CI smoke job runs it over every line of a real traced
run (``scripts/validate_trace.py``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional

__all__ = [
    "SCHEMA_VERSION",
    "RECORD_TYPES",
    "SCOPES",
    "MARKERS",
    "METRIC_KINDS",
    "SchemaError",
    "validate_record",
    "validate_trace_lines",
    "validate_trace_file",
    "validate_metrics_record",
    "validate_metrics_file",
]

SCHEMA_VERSION = 1

RECORD_TYPES = ("span", "event", "marker")

#: Granularity levels of spans/events, outermost first.  ``engine`` covers
#: the async round engine's dispatch/arrival/fault events
#: (:mod:`repro.fl.async_engine`).
SCOPES = (
    "run",
    "round",
    "stage",
    "client",
    "server",
    "checkpoint",
    "engine",
    "profile",
)

#: Allowed marker names.
MARKERS = ("run_start", "resume", "run_end")

METRIC_KINDS = ("counter", "gauge", "histogram")

_SCALAR_TYPES = (str, bool, int, float, type(None))


class SchemaError(ValueError):
    """A trace/metrics record violates the documented schema."""


def _fail(message: str, line: Optional[int]) -> None:
    prefix = f"line {line}: " if line is not None else ""
    raise SchemaError(prefix + message)


def _require(record: Dict[str, Any], key: str, line: Optional[int]) -> Any:
    if key not in record:
        _fail(f"missing required field '{key}'", line)
    return record[key]


def _check_number(value: Any, key: str, line: Optional[int], minimum=None) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"field '{key}' must be a number, got {type(value).__name__}", line)
    if value != value:  # NaN
        _fail(f"field '{key}' must be finite, got NaN", line)
    if minimum is not None and value < minimum:
        _fail(f"field '{key}' must be >= {minimum}, got {value}", line)


def _check_attrs(value: Any, line: Optional[int]) -> None:
    if not isinstance(value, dict):
        _fail(f"field 'attrs' must be an object, got {type(value).__name__}", line)
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(f"attrs key {key!r} must be a string", line)
        if isinstance(item, list):
            for element in item:
                if not isinstance(element, _SCALAR_TYPES):
                    _fail(
                        f"attrs['{key}'] list elements must be JSON scalars, "
                        f"got {type(element).__name__}",
                        line,
                    )
        elif not isinstance(item, _SCALAR_TYPES):
            _fail(
                f"attrs['{key}'] must be a JSON scalar or a flat list, got "
                f"{type(item).__name__}",
                line,
            )


def validate_record(record: Any, line: Optional[int] = None) -> str:
    """Validate one trace record; returns its type.

    ``line`` (1-based) is only used to prefix error messages.
    """
    if not isinstance(record, dict):
        _fail(f"record must be a JSON object, got {type(record).__name__}", line)
    version = _require(record, "v", line)
    if version != SCHEMA_VERSION:
        _fail(f"unknown schema version {version!r} (expected {SCHEMA_VERSION})", line)
    rtype = _require(record, "type", line)
    if rtype not in RECORD_TYPES:
        _fail(f"unknown record type {rtype!r} (expected one of {RECORD_TYPES})", line)
    name = _require(record, "name", line)
    if not isinstance(name, str) or not name:
        _fail("field 'name' must be a non-empty string", line)
    _check_number(_require(record, "ts", line), "ts", line, minimum=0.0)
    seq = _require(record, "seq", line)
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        _fail(f"field 'seq' must be a non-negative integer, got {seq!r}", line)
    _check_attrs(_require(record, "attrs", line), line)

    if rtype == "marker":
        if name not in MARKERS:
            _fail(f"unknown marker {name!r} (expected one of {MARKERS})", line)
        _check_number(_require(record, "unix_ts", line), "unix_ts", line, minimum=0.0)
        return rtype

    scope = _require(record, "scope", line)
    if scope not in SCOPES:
        _fail(f"unknown scope {scope!r} (expected one of {SCOPES})", line)
    parent = _require(record, "parent_id", line)
    if parent is not None and (isinstance(parent, bool) or not isinstance(parent, int)):
        _fail(f"field 'parent_id' must be an integer or null, got {parent!r}", line)

    if rtype == "span":
        span_id = _require(record, "span_id", line)
        if isinstance(span_id, bool) or not isinstance(span_id, int) or span_id < 1:
            _fail(f"field 'span_id' must be a positive integer, got {span_id!r}", line)
        _check_number(_require(record, "dur_s", line), "dur_s", line, minimum=0.0)
    return rtype


def validate_trace_lines(lines: Iterable[str]) -> int:
    """Validate a whole trace, line by line; returns the record count.

    Beyond per-record checks this enforces the file-level invariants: the
    first record of the file is a marker, and ``seq`` increases by exactly
    one between consecutive records except across a marker (each writing
    process restarts its sequence at its opening marker).
    """
    count = 0
    expected_seq: Optional[int] = None
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            _fail("blank line inside trace", lineno)
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            _fail(f"not valid JSON: {exc}", lineno)
        rtype = validate_record(record, line=lineno)
        if count == 0 and rtype != "marker":
            _fail(
                "first record must be a 'run_start' or 'resume' marker, got "
                f"a {rtype}",
                lineno,
            )
        if rtype == "marker":
            expected_seq = record["seq"] + 1
        else:
            if record["seq"] != expected_seq:
                _fail(
                    f"out-of-order seq {record['seq']} (expected "
                    f"{expected_seq}); the trace is corrupt or interleaved",
                    lineno,
                )
            expected_seq += 1
        count += 1
    if count == 0:
        raise SchemaError("trace is empty")
    return count


def validate_trace_file(path: str) -> int:
    """Validate a JSONL trace file; returns the record count."""
    with open(path, "r", encoding="utf-8") as f:
        return validate_trace_lines(f)


def validate_metrics_record(record: Any, line: Optional[int] = None) -> str:
    """Validate one metrics-export JSONL record; returns its kind."""
    if not isinstance(record, dict):
        _fail(f"record must be a JSON object, got {type(record).__name__}", line)
    metric = _require(record, "metric", line)
    if not isinstance(metric, str) or "/" not in metric:
        _fail(f"field 'metric' must be a 'scope/name' string, got {metric!r}", line)
    kind = _require(record, "kind", line)
    if kind not in METRIC_KINDS:
        _fail(f"unknown metric kind {kind!r} (expected one of {METRIC_KINDS})", line)
    if kind in ("counter", "gauge"):
        value = _require(record, "value", line)
        if value is not None:  # a never-set gauge exports null
            _check_number(value, "value", line)
    else:
        _check_number(_require(record, "count", line), "count", line, minimum=0)
        _check_number(_require(record, "sum", line), "sum", line)
        buckets = _require(record, "buckets", line)
        if not isinstance(buckets, list):
            _fail("field 'buckets' must be a list of [le, count] pairs", line)
        for pair in buckets:
            if not isinstance(pair, list) or len(pair) != 2:
                _fail("each histogram bucket must be a [le, count] pair", line)
    return kind


def validate_metrics_file(path: str) -> int:
    """Validate a JSONL metrics export; returns the record count."""
    count = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                _fail("blank line inside metrics export", lineno)
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                _fail(f"not valid JSON: {exc}", lineno)
            validate_metrics_record(record, line=lineno)
            count += 1
    return count
