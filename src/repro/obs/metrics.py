"""Zero-dependency metrics registry: counters, gauges, fixed-bucket histograms.

Metric names follow the ``scope/name`` convention (``channel/uplink_bytes``,
``runtime/client_task_seconds``, ``fedpkd/filter_accepted``); the registry
rejects names that do not.  Producers grab an instrument by name and update
it — instruments are created on first use and cached:

    metrics.counter("channel/uplink_bytes").inc(size)
    metrics.gauge("fedpkd/server_loss").set(loss)
    metrics.histogram("runtime/client_task_seconds").observe(dur)

A **disabled** registry (the default everywhere) hands out a shared no-op
instrument, so instrumented hot paths cost one method call when
observability is off.

Two read paths:

- :meth:`MetricsRegistry.snapshot` — a flat ``{name: float}`` dict suitable
  for merging into ``RoundRecord.extras`` (histograms summarise to
  ``name/count``, ``name/sum``, ``name/max``);
- :meth:`MetricsRegistry.export` — full detail (including histogram
  buckets) written atomically as JSONL or CSV, schema-checked by
  :func:`repro.obs.schema.validate_metrics_record`.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-z0-9_.-]+(/[a-z0-9_.-]+)+$")

#: Latency buckets (seconds) — sub-millisecond inference up to minute-long
#: server distillation phases.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Payload-size buckets (bytes) — prototype uploads (KB) up to model
#: weights (tens of MB).
DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter '{self.name}' cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are cumulative upper bounds (``le``); an implicit ``+inf``
    bucket catches the tail.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram '{name}' needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram '{name}' has duplicate bucket bounds")
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending at +inf."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            pairs.append((bound, running))
        pairs.append((math.inf, self.count))
        return pairs


class _NullInstrument:
    """Shared no-op instrument handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Named instruments with enforced ``scope/name`` naming."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def _get(self, name: str, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"metric name '{name}' violates the 'scope/name' "
                    "convention (lowercase [a-z0-9_.-], '/'-separated)"
                )
            instrument = factory(name)
            self._instruments[name] = instrument
            return instrument
        expected = factory(name).kind
        if instrument.kind != expected:
            raise ValueError(
                f"metric '{name}' already registered as a {instrument.kind}, "
                f"cannot reuse it as a {expected}"
            )
        return instrument

    def counter(self, name: str) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(name, Counter)

    def gauge(self, name: str) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get(
            name, lambda n: Histogram(n, buckets or DEFAULT_TIME_BUCKETS)
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view for ``RoundRecord.extras``.

        Counters and gauges appear under their own name (cumulative totals,
        matching the channel's cumulative byte accounting); histograms
        summarise to ``name/count``, ``name/sum`` and ``name/max``.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[f"{name}/count"] = float(instrument.count)
                out[f"{name}/sum"] = float(instrument.sum)
                if instrument.count:
                    out[f"{name}/max"] = float(instrument.max)
            else:
                out[name] = float(instrument.value)
        return out

    def export_records(self) -> List[dict]:
        """Full-detail records matching the metrics-export schema."""
        records: List[dict] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                records.append(
                    {
                        "metric": name,
                        "kind": "histogram",
                        "count": instrument.count,
                        "sum": instrument.sum,
                        "min": instrument.min if instrument.count else None,
                        "max": instrument.max if instrument.count else None,
                        "buckets": [
                            [("inf" if math.isinf(le) else le), n]
                            for le, n in instrument.cumulative_buckets()
                        ],
                    }
                )
            else:
                value = float(instrument.value)
                records.append(
                    {
                        "metric": name,
                        "kind": instrument.kind,
                        "value": None if math.isnan(value) else value,
                    }
                )
        return records

    def to_csv(self) -> str:
        """Summary CSV: one row per metric (buckets collapse to count/sum)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["metric", "kind", "value", "count", "sum", "min", "max"])
        for record in self.export_records():
            if record["kind"] == "histogram":
                writer.writerow(
                    [
                        record["metric"], "histogram", "",
                        record["count"], record["sum"],
                        "" if record["min"] is None else record["min"],
                        "" if record["max"] is None else record["max"],
                    ]
                )
            else:
                value = record["value"]
                writer.writerow(
                    [record["metric"], record["kind"],
                     "" if value is None else value, "", "", "", ""]
                )
        return buf.getvalue()

    def export(self, path: str) -> None:
        """Atomically write the registry to ``path`` (.jsonl/.json or .csv)."""
        if path.endswith(".csv"):
            payload = self.to_csv()
        elif path.endswith((".jsonl", ".json")):
            payload = "".join(
                json.dumps(record, separators=(",", ":")) + "\n"
                for record in self.export_records()
            )
        else:
            raise ValueError(
                f"metrics export path '{path}' must end in .jsonl, .json or .csv"
            )
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as f:
                f.write(payload)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)

    def reset(self) -> None:
        self._instruments.clear()
