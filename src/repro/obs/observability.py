"""The per-federation observability bundle: one tracer + one registry.

:func:`~repro.fl.simulation.build_federation` constructs an
:class:`Observability` from the :class:`~repro.fl.config.FederationConfig`
(``trace_path`` / ``metrics_path``) and hangs it on the federation; the
round engine, the executors, the communication channel, the dropout log
and the algorithms all publish through it.  When neither path is set the
bundle is fully disabled — a :class:`~repro.obs.tracer.NullTracer` plus a
disabled registry — and every instrumented call site degrades to a no-op.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry
from .tracer import NullTracer, Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Tracer + metrics registry + export destination for one run."""

    def __init__(
        self,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=False)
        )
        self.metrics_path = metrics_path

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "Observability":
        """Build from a config carrying ``trace_path`` / ``metrics_path``.

        Either path switches the whole bundle on (the metrics registry
        feeds ``RoundRecord.extras`` even when only tracing was asked for);
        with neither, the bundle is disabled.
        """
        trace_path = getattr(config, "trace_path", None)
        metrics_path = getattr(config, "metrics_path", None)
        if not trace_path and not metrics_path:
            return cls.disabled()
        tracer = Tracer(trace_path) if trace_path else NullTracer()
        return cls(tracer, MetricsRegistry(enabled=True), metrics_path)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self.tracer) or self.metrics.enabled

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def mark_resume(self, round_index: Optional[int] = None) -> None:
        """Tell the tracer this run continues an earlier one.

        The next trace record then opens the file in append mode behind a
        ``resume`` marker carrying the restored round index.
        """
        attrs = {} if round_index is None else {"round_index": int(round_index)}
        self.tracer.set_resume(attrs)

    def export_metrics(self) -> None:
        """Write the registry to ``metrics_path`` (atomic full rewrite)."""
        if self.metrics_path and self.metrics.enabled:
            self.metrics.export(self.metrics_path)

    def close(self) -> None:
        self.export_metrics()
        self.tracer.close()


#: Shared disabled bundle — safe because a disabled bundle holds no state.
NULL_OBS = Observability()
