"""The per-federation observability bundle: one tracer + one registry.

:func:`~repro.fl.simulation.build_federation` constructs an
:class:`Observability` from the :class:`~repro.fl.config.FederationConfig`
(``trace_path`` / ``metrics_path``) and hangs it on the federation; the
round engine, the executors, the communication channel, the dropout log
and the algorithms all publish through it.  When neither path is set the
bundle is fully disabled — a :class:`~repro.obs.tracer.NullTracer` plus a
disabled registry — and every instrumented call site degrades to a no-op.
"""

from __future__ import annotations

from typing import Optional

from contextlib import nullcontext

from .metrics import MetricsRegistry
from .profile import OpProfiler, activate
from .tracer import NullTracer, Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Tracer + metrics registry + export destination for one run."""

    def __init__(
        self,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_path: Optional[str] = None,
        profiler: Optional[OpProfiler] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=False)
        )
        self.metrics_path = metrics_path
        self.profiler = profiler

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "Observability":
        """Build from a config carrying ``trace_path`` / ``metrics_path``.

        Either path switches the whole bundle on (the metrics registry
        feeds ``RoundRecord.extras`` even when only tracing was asked for);
        with neither, the bundle is disabled.
        """
        trace_path = getattr(config, "trace_path", None)
        metrics_path = getattr(config, "metrics_path", None)
        profile = bool(getattr(config, "profile", False))
        if not trace_path and not metrics_path and not profile:
            return cls.disabled()
        tracer = Tracer(trace_path) if trace_path else NullTracer()
        profiler = OpProfiler() if profile else None
        return cls(tracer, MetricsRegistry(enabled=True), metrics_path, profiler)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return (
            bool(self.tracer)
            or self.metrics.enabled
            or self.profiler is not None
        )

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def mark_resume(self, round_index: Optional[int] = None) -> None:
        """Tell the tracer this run continues an earlier one.

        The next trace record then opens the file in append mode behind a
        ``resume`` marker carrying the restored round index.
        """
        attrs = {} if round_index is None else {"round_index": int(round_index)}
        self.tracer.set_resume(attrs)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def profile_session(self):
        """Activate this bundle's profiler for the duration of the block.

        A no-op (``nullcontext``) when profiling is off, so engines can
        wrap their run loops unconditionally.
        """
        if self.profiler is None:
            return nullcontext()
        return activate(self.profiler)

    def profile_stage(self, name: str):
        """Attribute profiled ops inside the block to stage ``name``."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.stage(name)

    def profile_model(self, name) -> object:
        """Attribute profiled ops inside the block to model ``name``."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.model(name)

    def publish_profile(self) -> None:
        """Export the profiler aggregate into metrics gauges + trace events.

        Idempotent per aggregate state: gauges are overwritten and trace
        consumers keep the last ``profile/op`` event per key, so engines
        can publish at the end of every ``run()`` call.
        """
        if self.profiler is not None and len(self.profiler):
            self.profiler.publish(metrics=self.metrics, tracer=self.tracer)

    def export_metrics(self) -> None:
        """Write the registry to ``metrics_path`` (atomic full rewrite)."""
        if self.metrics_path and self.metrics.enabled:
            self.metrics.export(self.metrics_path)

    def close(self) -> None:
        self.publish_profile()
        self.export_metrics()
        self.tracer.close()


#: Shared disabled bundle — safe because a disabled bundle holds no state.
NULL_OBS = Observability()
