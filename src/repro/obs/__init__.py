"""Observability for the FL stack: structured tracing, metrics, profiling.

Three pieces, all zero-dependency (stdlib + the repo's own numpy):

- :class:`Tracer` — JSONL span/event/marker records at run → round →
  stage → client granularity, crash-safe append-only writes, resume-aware
  (``docs/OBSERVABILITY.md`` documents the schema);
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket histograms
  under a ``scope/name`` naming convention, snapshotted into
  ``RoundRecord.extras`` each round and exportable as JSONL/CSV;
- :class:`Observability` — the per-federation bundle of both, built from
  ``FederationConfig(trace_path=..., metrics_path=...)`` (or the CLI's
  ``--trace`` / ``--metrics-out``) and disabled by default at near-zero
  overhead.

Quickstart::

    config = FederationConfig(num_clients=4, trace_path="run.trace.jsonl",
                              metrics_path="run.metrics.jsonl")
    fed = build_federation(bundle, config)
    build_algorithm("fedpkd", fed).run(rounds=2)
    validate_trace_file("run.trace.jsonl")   # schema-checked JSONL
"""

from .metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .observability import NULL_OBS, Observability
from .profile import OpProfiler, activate, wrap_backward
from .schema import (
    MARKERS,
    METRIC_KINDS,
    RECORD_TYPES,
    SCHEMA_VERSION,
    SCOPES,
    SchemaError,
    validate_metrics_file,
    validate_metrics_record,
    validate_record,
    validate_trace_file,
    validate_trace_lines,
)
from .tracer import NullTracer, Span, Tracer, configure_logging

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "configure_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
    "Observability",
    "NULL_OBS",
    "OpProfiler",
    "activate",
    "wrap_backward",
    "SCHEMA_VERSION",
    "RECORD_TYPES",
    "SCOPES",
    "MARKERS",
    "METRIC_KINDS",
    "SchemaError",
    "validate_record",
    "validate_trace_lines",
    "validate_trace_file",
    "validate_metrics_record",
    "validate_metrics_file",
]
