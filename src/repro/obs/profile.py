"""Opt-in op-level profiler for the numpy substrate.

The profiler attributes wall time, estimated FLOPs, and allocated bytes
to named substrate ops (``matmul``, ``conv2d``, ``relu.bwd``, ...) and
aggregates them along two axes set by the caller: the federated *stage*
(``local_train`` / ``public_train`` / ``server_distill`` / ``eval``) and
the *model* architecture the op ran under.

Design constraints, in order:

1. **Zero cost when off.**  Hooks in ``repro.nn`` check the module
   global ``ACTIVE`` and fall through to the original code path when it
   is ``None`` (the default).  No timing, no allocation, no change to
   numerics — bit-identity of unprofiled runs is by construction, and
   CI enforces it.
2. **No numeric interference when on.**  Profiling only *times* ops; it
   never touches array values, dtypes, or RNG streams, so a profiled
   run produces the same history as an unprofiled one (modulo the
   ``profile/*`` metric gauges that ride along in round extras).
3. **Mergeable across processes.**  The parallel executor ships each
   worker's aggregate back as a plain dict (:meth:`OpProfiler.to_payload`)
   and folds it into the driver profiler (:meth:`OpProfiler.merge`), so
   per-worker attribution survives process-pool dispatch.

FLOPs are *estimates* from shape arithmetic (see docs/OBSERVABILITY.md
for the formulas); bytes are the forward output allocation
(``out.data.nbytes``).  Backward closures are wrapped at forward time
but re-check ``ACTIVE`` when they fire, so a backward pass that happens
outside a profiling session stays untimed and unperturbed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ACTIVE",
    "OpProfiler",
    "activate",
    "wrap_backward",
]

#: The currently-active profiler, or ``None`` (the default: profiling
#: off).  Hooks read this on every call; ``activate`` swaps it.
ACTIVE: Optional["OpProfiler"] = None

#: Fallback attribution for ops recorded outside any stage/model context
#: (e.g. federation build, ad-hoc Tensor math in tests).
UNATTRIBUTED = "unattributed"

# key layout inside OpProfiler._stats values
_CALLS, _SECONDS, _FLOPS, _BYTES = range(4)


class OpProfiler:
    """Aggregates per-op cost keyed by ``(stage, model, op)``.

    Not thread-safe by design: the driver runs client work either inline
    (single thread) or in worker *processes*, each of which owns its own
    profiler instance.
    """

    __slots__ = ("_stats", "_stage_stack", "_model_stack")

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str, str], List[float]] = {}
        self._stage_stack: List[str] = []
        self._model_stack: List[str] = []

    # ------------------------------------------------------------------
    # attribution contexts
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Attribute ops recorded inside the block to stage ``name``."""
        self._stage_stack.append(str(name))
        try:
            yield
        finally:
            self._stage_stack.pop()

    @contextmanager
    def model(self, name: Optional[str]) -> Iterator[None]:
        """Attribute ops recorded inside the block to model ``name``."""
        self._model_stack.append(str(name) if name else UNATTRIBUTED)
        try:
            yield
        finally:
            self._model_stack.pop()

    @property
    def current_stage(self) -> str:
        return self._stage_stack[-1] if self._stage_stack else UNATTRIBUTED

    @property
    def current_model(self) -> str:
        return self._model_stack[-1] if self._model_stack else UNATTRIBUTED

    # ------------------------------------------------------------------
    # recording and aggregation
    # ------------------------------------------------------------------
    def record(
        self, op: str, seconds: float, flops: float = 0.0, nbytes: float = 0.0
    ) -> None:
        """Add one op invocation under the current stage/model context."""
        key = (self.current_stage, self.current_model, op)
        cell = self._stats.get(key)
        if cell is None:
            cell = self._stats[key] = [0.0, 0.0, 0.0, 0.0]
        cell[_CALLS] += 1
        cell[_SECONDS] += seconds
        cell[_FLOPS] += flops
        cell[_BYTES] += nbytes

    def merge(self, payload: Optional[Dict[str, List[float]]]) -> None:
        """Fold a :meth:`to_payload` dict (e.g. from a worker) into this one."""
        if not payload:
            return
        for flat_key, values in payload.items():
            stage, model, op = flat_key.split("|", 2)
            cell = self._stats.get((stage, model, op))
            if cell is None:
                cell = self._stats[(stage, model, op)] = [0.0, 0.0, 0.0, 0.0]
            for i in range(4):
                cell[i] += values[i]

    def to_payload(self) -> Dict[str, List[float]]:
        """JSON/pickle-safe flat form for shipping across processes."""
        return {
            "|".join(key): list(values) for key, values in self._stats.items()
        }

    def reset(self) -> None:
        self._stats.clear()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._stats)

    def total_seconds(self) -> float:
        return sum(cell[_SECONDS] for cell in self._stats.values())

    def rows(self) -> List[Dict[str, Any]]:
        """Aggregate rows sorted by descending total seconds."""
        out = []
        for (stage, model, op), cell in self._stats.items():
            out.append(
                {
                    "stage": stage,
                    "model": model,
                    "op": op,
                    "calls": int(cell[_CALLS]),
                    "seconds": cell[_SECONDS],
                    "flops": cell[_FLOPS],
                    "bytes": cell[_BYTES],
                }
            )
        out.sort(key=lambda r: (-r["seconds"], r["stage"], r["model"], r["op"]))
        return out

    def stage_seconds(self) -> Dict[str, float]:
        """Summed profiled seconds per stage."""
        totals: Dict[str, float] = {}
        for (stage, _model, _op), cell in self._stats.items():
            totals[stage] = totals.get(stage, 0.0) + cell[_SECONDS]
        return totals

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def publish(self, metrics=None, tracer=None) -> None:
        """Export the aggregate into the obs bundle.

        Metrics land as cumulative *gauges* (idempotent — re-publishing
        after more rounds just moves the gauge), one per aggregate cell:
        ``profile/<stage>/<model>/<op>/{calls,seconds,flops,bytes}``.
        Trace output is one ``profile/op`` event per cell under the
        ``profile`` scope; consumers keep the last event per key.
        """
        rows = self.rows()
        if metrics is not None and getattr(metrics, "enabled", False):
            for row in rows:
                base = _metric_base(row["stage"], row["model"], row["op"])
                metrics.gauge(base + "/calls").set(row["calls"])
                metrics.gauge(base + "/seconds").set(round(row["seconds"], 6))
                metrics.gauge(base + "/flops").set(row["flops"])
                metrics.gauge(base + "/bytes").set(row["bytes"])
        if tracer is not None and tracer:
            for row in rows:
                tracer.event(
                    "profile/op",
                    scope="profile",
                    attrs={
                        "stage": row["stage"],
                        "model": row["model"],
                        "op": row["op"],
                        "calls": row["calls"],
                        "seconds": round(row["seconds"], 6),
                        "flops": row["flops"],
                        "bytes": row["bytes"],
                    },
                )


def _metric_base(stage: str, model: str, op: str) -> str:
    """Build a MetricsRegistry-legal name component from attribution keys."""
    return "profile/{}/{}/{}".format(
        _sanitise(stage), _sanitise(model), _sanitise(op)
    )


def _sanitise(part: str) -> str:
    """Lowercase and strip characters the metric-name regex rejects."""
    cleaned = "".join(
        ch if (ch.isalnum() or ch in "_.-") else "-" for ch in str(part).lower()
    )
    return cleaned or UNATTRIBUTED


# ----------------------------------------------------------------------
# activation + backward hooks (used by repro.nn)
# ----------------------------------------------------------------------
@contextmanager
def activate(profiler: Optional[OpProfiler]) -> Iterator[Optional[OpProfiler]]:
    """Install ``profiler`` as the process-wide active profiler.

    Nested activations stack: the previous profiler is restored on exit.
    Passing ``None`` explicitly disables profiling inside the block.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = profiler
    try:
        yield profiler
    finally:
        ACTIVE = previous


def wrap_backward(tensor, op: str, flops: float = 0.0) -> None:
    """Replace ``tensor._backward`` with a timed wrapper.

    The wrapper re-checks :data:`ACTIVE` when the backward pass fires,
    so gradients computed outside a profiling session pay nothing and
    record nothing.  ``flops`` is the *backward* estimate (typically 2x
    the forward estimate: one pass per parent).
    """
    inner = getattr(tensor, "_backward", None)
    if inner is None:
        return
    name = op + ".bwd"

    def timed_backward(grad):
        prof = ACTIVE
        if prof is None:
            inner(grad)
            return
        start = time.perf_counter()
        inner(grad)
        prof.record(
            name, time.perf_counter() - start, flops, getattr(grad, "nbytes", 0)
        )

    tensor._backward = timed_backward
