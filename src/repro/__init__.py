"""FedPKD reproduction: prototype-based knowledge distillation for
heterogeneous federated learning (ICDCS 2023).

Quickstart::

    from repro.data import synthetic_cifar10
    from repro.fl import FederationConfig, build_federation
    from repro.algorithms import build_algorithm

    bundle = synthetic_cifar10(seed=0)
    fed = build_federation(bundle, FederationConfig(num_clients=8))
    algo = build_algorithm("fedpkd", fed, epoch_scale=0.2)
    history = algo.run(rounds=10)
    print(history.final_server_acc, history.final_client_acc)

Subpackages
-----------
``repro.nn``
    From-scratch numpy autograd, layers, models, optimisers, losses.
``repro.data``
    Synthetic CIFAR-like tasks, non-IID partitioners, loaders.
``repro.fl``
    Federated simulation framework with communication accounting.
``repro.runtime``
    Client-execution runtime: serial and process-parallel executors with
    fault-tolerant workers (``FederationConfig(executor="parallel")``).
``repro.core``
    FedPKD itself: dual knowledge transfer, variance-weighted aggregation,
    prototype aggregation, data filtering, ensemble distillation.
``repro.baselines``
    FedAvg, FedProx, FedMD, DS-FL, FedDF, FedET, and the naive-KD pilot.
``repro.experiments``
    Runners that regenerate every figure and table of the paper.
``repro.sweep``
    Multi-run orchestration: declarative grid sweeps, a content-hash
    result cache, and a persistent run registry (``python -m repro
    sweep grid.json``).
"""

from . import analysis, baselines, core, data, fl, nn, runtime
from .algorithms import ALGORITHMS, algorithm_supports, build_algorithm

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "fl",
    "core",
    "baselines",
    "analysis",
    "runtime",
    "ALGORITHMS",
    "build_algorithm",
    "algorithm_supports",
    "__version__",
]
