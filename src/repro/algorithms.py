"""Algorithm registry: build any algorithm by name with paper defaults.

The experiment harness and the examples construct runs through
:func:`build_algorithm`, so benchmark code never hard-codes classes.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace
from typing import Dict, Tuple

from .baselines import (
    DSFL,
    DSFLConfig,
    FedAvg,
    FedAvgConfig,
    FedDF,
    FedDFConfig,
    FedET,
    FedETConfig,
    FedMD,
    FedMDConfig,
    FedProto,
    FedProtoConfig,
    FedProx,
    FedProxConfig,
    NaiveKD,
    NaiveKDConfig,
)
from .core import FedPKD, FedPKDConfig
from .fl.config import TrainingConfig
from .fl.simulation import Federation, FederatedAlgorithm

__all__ = ["ALGORITHMS", "build_algorithm", "algorithm_supports"]

# name -> (algorithm class, config class)
ALGORITHMS: Dict[str, Tuple[type, type]] = {
    "fedpkd": (FedPKD, FedPKDConfig),
    "fedavg": (FedAvg, FedAvgConfig),
    "fedprox": (FedProx, FedProxConfig),
    "fedmd": (FedMD, FedMDConfig),
    "fedproto": (FedProto, FedProtoConfig),
    "dsfl": (DSFL, DSFLConfig),
    "feddf": (FedDF, FedDFConfig),
    "fedet": (FedET, FedETConfig),
    "naive_kd": (NaiveKD, NaiveKDConfig),
}

# Capability matrix matching the paper's Table I footnotes: which metrics
# and settings each algorithm supports.
_CAPABILITIES: Dict[str, Dict[str, bool]] = {
    "fedpkd": {"server_model": True, "heterogeneous": True, "client_metric": True},
    "fedavg": {"server_model": True, "heterogeneous": False, "client_metric": True},
    "fedprox": {"server_model": True, "heterogeneous": False, "client_metric": True},
    "fedmd": {"server_model": False, "heterogeneous": True, "client_metric": True},
    "fedproto": {"server_model": False, "heterogeneous": True, "client_metric": True},
    "dsfl": {"server_model": False, "heterogeneous": True, "client_metric": True},
    "feddf": {"server_model": True, "heterogeneous": False, "client_metric": False},
    "fedet": {"server_model": True, "heterogeneous": True, "client_metric": False},
    "naive_kd": {"server_model": True, "heterogeneous": True, "client_metric": True},
}


def algorithm_supports(name: str, capability: str) -> bool:
    """Query the capability matrix (``server_model`` / ``heterogeneous`` /
    ``client_metric``)."""
    if name not in _CAPABILITIES:
        raise KeyError(f"unknown algorithm '{name}'")
    return _CAPABILITIES[name].get(capability, False)


def _scale_epochs(config, epoch_scale: float):
    """Uniformly scale every TrainingConfig's epochs inside a config dataclass.

    Lets reduced-scale experiments keep the paper's *relative* epoch budgets
    (e.g. FedPKD 15/10/40 vs FedAvg 10) while shrinking absolute cost.
    """
    if epoch_scale == 1.0 or not is_dataclass(config):
        return config
    updates = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, TrainingConfig):
            scaled = max(1, int(round(value.epochs * epoch_scale)))
            updates[f.name] = replace(value, epochs=scaled)
    return replace(config, **updates) if updates else config


def build_algorithm(
    name: str,
    federation: Federation,
    seed: int = 0,
    config=None,
    epoch_scale: float = 1.0,
    **config_overrides,
) -> FederatedAlgorithm:
    """Construct algorithm ``name`` over ``federation``.

    Parameters
    ----------
    config:
        A ready config instance; defaults to the paper's hyper-parameters.
    epoch_scale:
        Multiplier on every phase's epoch count (reduced-scale runs).
    config_overrides:
        Field overrides applied to the (possibly default) config dataclass,
        e.g. ``delta=0.1`` or ``select_ratio=0.3`` for FedPKD.
    """
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm '{name}'; choose from {sorted(ALGORITHMS)}")
    algo_cls, config_cls = ALGORITHMS[name]
    if config is None:
        config = config_cls()
    if config_overrides:
        config = replace(config, **config_overrides)
    config = _scale_epochs(config, epoch_scale)
    return algo_cls(federation, config=config, seed=seed)
