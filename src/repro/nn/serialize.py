"""Wire-format serialisation and payload size accounting.

Federated-learning communication cost in the paper is measured in MB of
float32 payload (model updates, logits, prototypes).  This module turns
arbitrary nested payloads of numpy arrays into flat float32 byte buffers and
measures their size, which :mod:`repro.fl.channel` uses for accounting.
"""

from __future__ import annotations

import io
from typing import Dict, Union

import numpy as np

__all__ = [
    "WIRE_DTYPE",
    "payload_num_bytes",
    "array_num_bytes",
    "serialize_state",
    "deserialize_state",
]

# Everything on the wire is float32, matching the paper's MB arithmetic
# (e.g. its 0.511 MB figure for a ResNet-20-class model update).
WIRE_DTYPE = np.float32

Payload = Union[np.ndarray, Dict[str, "Payload"], list, tuple, float, int, None]


def array_num_bytes(array: np.ndarray) -> int:
    """Wire size of one array: float32 elements, shape metadata ignored."""
    return int(np.asarray(array).size) * WIRE_DTYPE().itemsize


def payload_num_bytes(payload: Payload) -> int:
    """Recursively compute the wire size of a nested payload.

    Supported leaves are numpy arrays and python scalars (counted as one
    float32 each); containers may be dicts, lists, or tuples.  ``None``
    contributes zero bytes.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return array_num_bytes(payload)
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_num_bytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_num_bytes(v) for v in payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return WIRE_DTYPE().itemsize
    # objects that know their own wire size (e.g. fl.compression tensors)
    num_bytes = getattr(payload, "num_bytes", None)
    if isinstance(num_bytes, int):
        return num_bytes
    raise TypeError(f"unsupported payload leaf of type {type(payload)!r}")


def serialize_state(state: Dict[str, np.ndarray], dtype=WIRE_DTYPE) -> bytes:
    """Serialise a state-dict to bytes (npz container).

    By default arrays are cast to float32, matching the paper's wire-size
    accounting.  Pass ``dtype=None`` to preserve each array's native dtype
    — the lossless mode the parallel runtime uses to ship model state
    between processes without perturbing a single bit.
    """
    buffer = io.BytesIO()
    if dtype is None:
        converted = {k: np.asarray(v) for k, v in state.items()}
    else:
        converted = {k: np.asarray(v, dtype=dtype) for k, v in state.items()}
    np.savez(buffer, **converted)
    return buffer.getvalue()


def deserialize_state(blob: bytes, dtype=np.float64) -> Dict[str, np.ndarray]:
    """Inverse of :func:`serialize_state`; casts arrays to ``dtype``.

    The float64 default matches the training substrate's precision.  Pass
    ``dtype=None`` to keep exactly the dtypes stored in the container
    (lossless round trip with ``serialize_state(state, dtype=None)``).
    """
    buffer = io.BytesIO(blob)
    with np.load(buffer) as archive:
        if dtype is None:
            return {k: archive[k] for k in archive.files}
        return {k: archive[k].astype(dtype) for k in archive.files}
