"""First-order optimisers: SGD with momentum and Adam.

Both follow the PyTorch update rules so that the hyper-parameters in the
paper (Adam, lr=0.001) transfer directly.
"""

from __future__ import annotations

import functools
import time
from typing import List, Optional

import numpy as np

from ..obs import profile as _profile
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def _profiled_step(op: str, flops_per_param: float):
    """Profiling hook for ``Optimizer.step``.

    The update rules are plain numpy (they bypass the Tensor graph), so
    without this hook optimiser time would be invisible to the op-level
    profiler.  ``flops_per_param`` is the estimated op count per scalar
    parameter (see docs/OBSERVABILITY.md).  Free when profiling is off.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self):
            prof = _profile.ACTIVE
            if prof is None:
                return fn(self)
            start = time.perf_counter()
            result = fn(self)
            nparams = sum(p.data.size for p in self.params)
            prof.record(op, time.perf_counter() - start, flops_per_param * nparams)
            return result

        return wrapper

    return decorate


class Optimizer:
    """Base optimiser holding a parameter list.

    ``initial_lr`` records the construction-time learning rate and never
    changes; schedulers use it to recover the true base lr even after
    another scheduler (e.g. a warmup) has rewritten ``lr``.
    """

    def __init__(self, params: List[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.initial_lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # persistence (exact-resume checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serialisable snapshot of the optimiser's mutable state."""
        state = {"lr": self.lr, "initial_lr": self.initial_lr}
        if hasattr(self, "scheduled_base_lr"):
            # breadcrumb left by LRScheduler._apply_lr; without it a
            # resumed warmup→cosine chain would re-derive its base lr
            # from the already-scaled ``lr``
            state["scheduled_base_lr"] = self.scheduled_base_lr
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (same parameter list)."""
        self.lr = float(state["lr"])
        self.initial_lr = float(state.get("initial_lr", self.initial_lr))
        if "scheduled_base_lr" in state:
            self.scheduled_base_lr = float(state["scheduled_base_lr"])

    def _check_buffer_count(self, name: str, buffers) -> None:
        if len(buffers) != len(self.params):
            raise ValueError(
                f"optimizer state '{name}' has {len(buffers)} entries for "
                f"{len(self.params)} parameters"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    @_profiled_step("sgd.step", 4.0)
    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [
            None if v is None else v.copy() for v in self._velocity
        ]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        velocity = state.get("velocity")
        if velocity is not None:
            self._check_buffer_count("velocity", velocity)
            self._velocity = [
                None if v is None else np.array(v, dtype=np.float64)
                for v in velocity
            ]


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    @_profiled_step("adam.step", 12.0)
    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if "m" in state:
            self._check_buffer_count("m", state["m"])
            self._m = [np.array(m, dtype=np.float64) for m in state["m"]]
        if "v" in state:
            self._check_buffer_count("v", state["v"])
            self._v = [np.array(v, dtype=np.float64) for v in state["v"]]
        self._t = int(state.get("t", self._t))


def clip_grad_norm(params: List[Tensor], max_norm: float) -> float:
    """Clip the global gradient L2 norm in place; return the pre-clip norm."""
    total_sq = 0.0
    for p in params:
        if p.grad is not None:
            total_sq += float((p.grad**2).sum())
    norm = float(np.sqrt(total_sq))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                # lint: disable=ag-inplace-tensor-mutation — in-place scaling
                # is this function's documented contract; it runs after
                # backward() finishes, when nothing re-reads the old grads.
                p.grad *= scale
    return norm
