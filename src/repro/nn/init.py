"""Parameter initialisers and RNG plumbing for the nn substrate."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

__all__ = ["ensure_rng", "kaiming_uniform", "xavier_uniform", "normal"]

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike) -> np.random.Generator:
    """Coerce ``None`` / seed / Generator into a ``numpy.random.Generator``."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def kaiming_uniform(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: Optional[int] = None
) -> np.ndarray:
    """He-uniform initialisation suited to ReLU networks."""
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform initialisation for tanh/sigmoid networks."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def normal(
    rng: np.random.Generator, shape: Tuple[int, ...], std: float = 0.01
) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape)
