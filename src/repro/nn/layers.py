"""Neural-network layers: a minimal ``Module`` system over the autograd core.

The design mirrors ``torch.nn``: layers hold :class:`~repro.nn.Tensor`
parameters with ``requires_grad=True``, nested modules are discovered through
attribute inspection, and ``state_dict``/``load_state_dict`` round-trip all
parameters and buffers (running statistics).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Sequential",
]


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # forward protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield prefix + name, value
        for child_name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in vars(self).items():
            if isinstance(value, np.ndarray):
                yield prefix + name, value
        for child_name, child in self.named_children():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # train / eval, gradient helpers
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, child in self.named_children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → array mapping of parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        expected = set(own_params) | set(own_buffers)
        got = set(state)
        if expected != got:
            missing = sorted(expected - got)
            unexpected = sorted(got - expected)
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.shape}"
                )
            param.data = value.copy()
        for name, buf in own_buffers.items():
            value = np.asarray(state[name], dtype=buf.dtype)
            if value.shape != buf.shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: {value.shape} vs {buf.shape}"
                )
            buf[...] = value


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(
        self, in_features: int, out_features: int, bias: bool = True, rng=None
    ) -> None:
        super().__init__()
        rng = init.ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform(rng, (out_features, in_features), fan_in=in_features),
            requires_grad=True,
        )
        self.bias: Optional[Tensor] = None
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Tensor(
                rng.uniform(-bound, bound, size=out_features), requires_grad=True
            )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer over NCHW input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        rng = init.ensure_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            init.kaiming_uniform(
                rng,
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
            ),
            requires_grad=True,
        )
        self.bias: Optional[Tensor] = None
        if bias:
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Tensor(
                rng.uniform(-bound, bound, size=out_channels), requires_grad=True
            )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class _BatchNorm(Module):
    """Shared implementation of 1-D/2-D batch normalisation."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(
            np.ones(num_features, dtype=np.float64), requires_grad=True
        )
        self.bias = Tensor(
            np.zeros(num_features, dtype=np.float64), requires_grad=True
        )
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)

    def _normalize(self, x: Tensor, axes: Tuple[int, ...], shape) -> Tensor:
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = ((x - mean) ** 2).mean(axis=axes, keepdims=True)
            self.running_mean[...] = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var[...] = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        norm = (x - mean) / ((var + self.eps) ** 0.5)
        return norm * self.weight.reshape(shape) + self.bias.reshape(shape)


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over ``(N, C)`` activations."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C) input, got {x.shape}")
        return self._normalize(x, axes=(0,), shape=(1, self.num_features))


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over ``(N, C, H, W)`` activations."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W) input, got {x.shape}")
        return self._normalize(x, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng=None) -> None:
        super().__init__()
        self.p = p
        self.rng = init.ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run modules in order; supports iteration and indexing."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._modules: List[Module] = list(modules)
        for i, module in enumerate(self._modules):
            setattr(self, f"m{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
