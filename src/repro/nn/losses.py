"""Loss functions used by FedPKD and the baselines.

All losses take raw (pre-softmax) logits where applicable; soft-target losses
optionally apply a distillation temperature.  Each returns a scalar
:class:`~repro.nn.Tensor` (mean over the batch) ready for ``backward()``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "soft_cross_entropy",
    "kl_divergence",
    "mse_loss",
    "proximal_term",
]


def _lift_targets(targets: Union[Tensor, np.ndarray]) -> np.ndarray:
    return targets.data if isinstance(targets, Tensor) else np.asarray(targets)


def cross_entropy(logits: Tensor, labels: Union[np.ndarray, list]) -> Tensor:
    """Mean cross-entropy between logits and integer class labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects (N, C) logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(len(labels)), labels]
    return -picked.mean()


def soft_cross_entropy(
    logits: Tensor, target_probs: Union[Tensor, np.ndarray]
) -> Tensor:
    """Mean cross-entropy against a soft target distribution.

    ``target_probs`` must be a valid probability distribution per row; it is
    treated as a constant (no gradient flows into it).
    """
    target = _lift_targets(target_probs)
    if target.shape != logits.shape:
        raise ValueError(
            f"target shape {target.shape} must match logits {logits.shape}"
        )
    log_probs = F.log_softmax(logits, axis=1)
    return -(log_probs * Tensor(target)).sum(axis=1).mean()


def _softmax_np(logits: np.ndarray, temperature: float) -> np.ndarray:
    scaled = logits / temperature
    scaled = scaled - scaled.max(axis=1, keepdims=True)
    exp = np.exp(scaled)
    return exp / exp.sum(axis=1, keepdims=True)


def kl_divergence(
    teacher_logits: Union[Tensor, np.ndarray],
    student_logits: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """Mean KL(teacher ‖ student) over the batch, à la Hinton distillation.

    The teacher distribution is a constant; gradients flow only into the
    student logits.  The classic ``T^2`` factor keeps gradient magnitudes
    comparable across temperatures.
    """
    teacher = _lift_targets(teacher_logits)
    if teacher.shape != student_logits.shape:
        raise ValueError(
            f"teacher shape {teacher.shape} must match student {student_logits.shape}"
        )
    teacher_probs = _softmax_np(teacher, temperature)
    scaled_student = student_logits * (1.0 / temperature)
    student_log_probs = F.log_softmax(scaled_student, axis=1)
    # KL(p||q) = sum p log p - sum p log q; the entropy term is constant.
    entropy = float((teacher_probs * np.log(teacher_probs + 1e-12)).sum(axis=1).mean())
    cross = -(student_log_probs * Tensor(teacher_probs)).sum(axis=1).mean()
    return (cross + entropy) * (temperature**2)


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error; target may be a constant array or a Tensor."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=np.float64))
    if target.shape != prediction.shape:
        raise ValueError(
            f"target shape {target.shape} must match prediction {prediction.shape}"
        )
    return ((prediction - target) ** 2).mean()


def proximal_term(
    parameters, reference: dict, mu: float
) -> Optional[Tensor]:
    """FedProx proximal regulariser ``(mu/2) * ||w - w_global||^2``.

    Parameters
    ----------
    parameters:
        Iterable of ``(name, Tensor)`` pairs from ``named_parameters()``.
    reference:
        Name → ``numpy.ndarray`` snapshot of the global weights.
    mu:
        Proximal coefficient; ``0`` disables the term (returns ``None``).
    """
    if mu == 0.0:
        return None
    total: Optional[Tensor] = None
    for name, param in parameters:
        anchor = reference[name]
        sq = ((param - Tensor(anchor)) ** 2).sum()
        total = sq if total is None else total + sq
    if total is None:
        return None
    return total * (mu / 2.0)
