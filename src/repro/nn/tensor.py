"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  It provides a
:class:`Tensor` wrapper around ``numpy.ndarray`` that records a dynamic
computation graph and supports backpropagation through it, in the style of
PyTorch's eager autograd but implemented from scratch.

Only the operations needed by the FedPKD reproduction are implemented, but
each of them handles full numpy broadcasting and has gradient correctness
verified by finite-difference tests in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import profile as _profile

Scalar = Union[int, float]
ArrayLike = Union[np.ndarray, Scalar, Sequence]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for backprop."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, its gradient is the sum of ``grad`` over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _prof_op(op: str, flops="out"):
    """Profiling hook for a Tensor op method.

    When :data:`repro.obs.profile.ACTIVE` is unset (the default) the
    wrapper falls straight through to the original method — no timing,
    no allocation — so unprofiled runs are bit-identical by
    construction.  When a profiler is active, the forward pass is timed
    and recorded with an estimated FLOP count, and the output's backward
    closure is wrapped so the backward pass is attributed to
    ``"<op>.bwd"`` (see docs/OBSERVABILITY.md for the estimate
    formulas).

    ``flops`` selects the estimator: ``"out"`` (one op per output
    element — elementwise math), ``"in"`` (one per input element —
    reductions), a constant (``0`` for pure memory-movement ops), or a
    callable ``(self, out) -> float`` for shape-dependent kernels.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            prof = _profile.ACTIVE
            if prof is None:
                return fn(self, *args, **kwargs)
            start = time.perf_counter()
            out = fn(self, *args, **kwargs)
            seconds = time.perf_counter() - start
            if out is self:  # no-op fast path (e.g. pad2d(0))
                return out
            if flops == "out":
                nflops = out.data.size
            elif flops == "in":
                nflops = self.data.size
            elif callable(flops):
                nflops = flops(self, out)
            else:
                nflops = float(flops)
            prof.record(op, seconds, nflops, out.data.nbytes)
            _profile.wrap_backward(out, op, 2.0 * nflops)
            return out

        return wrapper

    return decorate


def _matmul_flops(a: "Tensor", out: "Tensor") -> float:
    # (n, k) @ (k, m): 2*n*k*m multiply-adds; out.size is n*m
    return 2.0 * a.shape[1] * out.data.size


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array contents; anything ``numpy.asarray`` accepts.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, threshold=8)}{grad_flag})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got {self.shape}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        # lint: disable=ag-inplace-tensor-mutation — this IS the gradient
        # accumulator; the buffer is allocated above and never aliased.
        self.grad += grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    @_prof_op("add")
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    @_prof_op("neg")
    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    @_prof_op("mul")
    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    @_prof_op("div")
    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    @_prof_op("pow")
    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    @_prof_op("matmul", _matmul_flops)
    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ValueError(
                f"matmul expects 2-D operands, got {self.shape} @ {other.shape}"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    @_prof_op("exp")
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    @_prof_op("log")
    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    @_prof_op("tanh")
    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    @_prof_op("sigmoid")
    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    @_prof_op("relu")
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    @_prof_op("leaky_relu")
    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return self._make(out_data, (self,), backward)

    @_prof_op("abs")
    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(out_data, (self,), backward)

    @_prof_op("clip")
    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    @_prof_op("sum", "in")
    def sum(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axes)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / count

    @_prof_op("max", "in")
    def max(
        self, axis: Optional[int] = None, keepdims: bool = False
    ) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = self.data == out_data
                # split ties evenly so the gradient check is deterministic
                self._accumulate(grad * mask / mask.sum())
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                g = grad if keepdims else np.expand_dims(grad, axis)
                mask = self.data == expanded
                counts = mask.sum(axis=axis, keepdims=True)
                self._accumulate(g * mask / counts)

        return self._make(out_data, (self,), backward)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    @_prof_op("reshape", 0)
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(in_shape))

        return self._make(out_data, (self,), backward)

    @_prof_op("transpose", 0)
    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        if axes is None:
            inverse: Optional[Tuple[int, ...]] = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    @_prof_op("getitem", 0)
    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @_prof_op("pad2d", 0)
    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) axes of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2
        out_data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            slices = [slice(None)] * (self.ndim - 2) + [
                slice(padding, -padding),
                slice(padding, -padding),
            ]
            self._accumulate(grad[tuple(slices)])

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                slices = [slice(None)] * grad.ndim
                slices[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(slices)])

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        if not requires:
            return Tensor(out_data)
        return Tensor(
            out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward
        )

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar outputs.
        """
        prof = _profile.ACTIVE
        if prof is None:
            self._backward_impl(grad)
            return
        # Attribute the pass machinery (topo sort, graph walk, grad
        # accumulation glue) that per-op ``.bwd`` closures can't see, so
        # the profiled op table covers backward wall time end to end.
        start = time.perf_counter()
        before = prof.total_seconds()
        self._backward_impl(grad)
        total = time.perf_counter() - start
        inner = prof.total_seconds() - before
        prof.record("backward.overhead", max(total - inner, 0.0))

    def _backward_impl(self, grad: Optional[np.ndarray] = None) -> None:
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() on non-scalar output needs a seed grad")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
