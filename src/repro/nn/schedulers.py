"""Learning-rate schedulers for the optimisers.

Minimal PyTorch-style schedulers: construct over an optimiser, call
``step()`` once per epoch (or round).  Useful for paper-scale runs where a
constant Adam lr plateaus late in training.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR"]


class LRScheduler:
    """Base scheduler: tracks epochs and rewrites ``optimizer.lr``.

    ``base_lr`` is captured robustly: a scheduler that has already rewritten
    ``optimizer.lr`` (e.g. :class:`WarmupLR` applies its start factor at
    construction) leaves ``optimizer.scheduled_base_lr`` behind, and a
    later-constructed scheduler picks the true base up from there instead
    of the already-scaled ``optimizer.lr``.  A warmup→cosine chain therefore
    decays from the real base lr, not the warmup-scaled one.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = float(
            getattr(optimizer, "scheduled_base_lr", optimizer.lr)
        )
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _apply_lr(self, new_lr: float) -> None:
        """Write ``optimizer.lr``, leaving the base-lr breadcrumb behind."""
        self.optimizer.lr = new_lr
        self.optimizer.scheduled_base_lr = self.base_lr

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        new_lr = self.get_lr()
        self._apply_lr(new_lr)
        return new_lr

    # ------------------------------------------------------------------
    # persistence (exact-resume checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Every attribute except the optimiser reference."""
        return {k: v for k, v in self.__dict__.items() if k != "optimizer"}

    def load_state_dict(self, state: dict) -> None:
        """Restore state and re-apply the restored epoch's learning rate."""
        for key, value in state.items():
            if key != "optimizer":
                setattr(self, key, value)
        try:
            self._apply_lr(self.get_lr())
        except NotImplementedError:  # bare base-class instance
            pass


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * progress)
        )


class WarmupLR(LRScheduler):
    """Linear warmup from ``start_factor * base_lr`` to the base lr."""

    def __init__(
        self, optimizer: Optimizer, warmup_epochs: int, start_factor: float = 0.1
    ) -> None:
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError("start_factor must be in (0, 1]")
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.start_factor = start_factor
        # apply the initial warmup factor immediately; _apply_lr records the
        # unscaled base so later-constructed schedulers capture it, not the
        # warmup-scaled lr
        self._apply_lr(self.base_lr * start_factor)

    def get_lr(self) -> float:
        if self.epoch >= self.warmup_epochs:
            return self.base_lr
        frac = self.epoch / self.warmup_epochs
        return self.base_lr * (self.start_factor + (1 - self.start_factor) * frac)
