"""Model zoo for the FedPKD reproduction.

The paper runs ResNet-11/20/29 on clients and ResNet-20/56 on the server.
Here the same *roles* are filled by width/depth-scaled residual CNNs (and an
MLP family for fast experiments).  Every model exposes the split FedPKD
needs:

- ``features(x)`` — the representation layer :math:`\\mathcal{R}_\\omega`
  whose outputs define prototypes (Eq. 5 in the paper);
- ``forward(x)`` — raw class logits :math:`\\mathcal{M}_\\omega`;
- ``forward_with_features(x)`` — both, sharing one graph.

All models in one experiment share ``feature_dim`` so that prototypes are
exchangeable across heterogeneous architectures (in the paper this holds
because every CIFAR ResNet ends in a 64-d global-average-pooled feature).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .init import ensure_rng
from .layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from .tensor import Tensor

__all__ = [
    "ClassifierModel",
    "MLPClassifier",
    "ResNetClassifier",
    "BasicBlock",
    "build_model",
    "MODEL_REGISTRY",
    "model_num_parameters",
]


class ClassifierModel(Module):
    """Base class for classifiers with a feature/classifier split."""

    feature_dim: int
    num_classes: int

    def features(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        logits, _ = self.forward_with_features(x)
        return logits

    def forward_with_features(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        feats = self.features(x)
        return self.classifier(feats), feats

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predict integer labels for a raw numpy batch (eval mode, no grad)."""
        return self.predict_logits(x, batch_size=batch_size).argmax(axis=1)

    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Return logits for a raw numpy batch (eval mode, no grad)."""
        from .tensor import no_grad

        was_training = self.training
        self.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(x), batch_size):
                batch = Tensor(x[start : start + batch_size])
                outputs.append(self.forward(batch).data)
        self.train(was_training)
        return np.concatenate(outputs, axis=0) if outputs else np.zeros((0, self.num_classes), dtype=np.float64)

    def extract_features(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Return feature vectors for a raw numpy batch (eval mode, no grad)."""
        from .tensor import no_grad

        was_training = self.training
        self.eval()
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(x), batch_size):
                batch = Tensor(x[start : start + batch_size])
                outputs.append(self.features(batch).data)
        self.train(was_training)
        return np.concatenate(outputs, axis=0) if outputs else np.zeros((0, self.feature_dim), dtype=np.float64)


class MLPClassifier(ClassifierModel):
    """Multi-layer perceptron with a projection head to ``feature_dim``."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        num_classes: int,
        feature_dim: int = 32,
        rng=None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.feature_dim = feature_dim
        dims = [input_dim] + list(hidden_dims)
        blocks: List[Module] = []
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            blocks.append(Linear(d_in, d_out, rng=rng))
            blocks.append(ReLU())
        blocks.append(Linear(dims[-1], feature_dim, rng=rng))
        blocks.append(ReLU())
        self.body = Sequential(*blocks)
        self.classifier = Linear(feature_dim, num_classes, rng=rng)

    def features(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.body(x)


class BasicBlock(Module):
    """Pre-activation-free residual basic block (as in CIFAR ResNets)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, rng=None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class ResNetClassifier(ClassifierModel):
    """CIFAR-style residual network scaled for the numpy substrate.

    ``blocks_per_stage`` follows the ResNet-(6b+2) convention: ResNet-20 has
    ``b=3`` per stage.  ``widths`` are the per-stage channel counts.  A final
    linear projection maps pooled features to the shared ``feature_dim``.
    """

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        blocks_per_stage: Sequence[int],
        widths: Sequence[int] = (8, 16, 32),
        feature_dim: int = 32,
        rng=None,
    ) -> None:
        super().__init__()
        if len(blocks_per_stage) != len(widths):
            raise ValueError("blocks_per_stage and widths must have equal length")
        rng = ensure_rng(rng)
        self.num_classes = num_classes
        self.feature_dim = feature_dim
        self.stem = Sequential(
            Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[0]),
            ReLU(),
        )
        stages: List[Module] = []
        channels = widths[0]
        for stage_idx, (num_blocks, width) in enumerate(zip(blocks_per_stage, widths)):
            for block_idx in range(num_blocks):
                stride = 2 if stage_idx > 0 and block_idx == 0 else 1
                stages.append(BasicBlock(channels, width, stride=stride, rng=rng))
                channels = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.project = Linear(channels, feature_dim, rng=rng)
        self.classifier = Linear(feature_dim, num_classes, rng=rng)

    def features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stages(out)
        out = self.pool(out)
        return self.project(out).relu()


def _resnet_blocks(depth: int) -> List[int]:
    """Translate a ResNet depth (6b+2) into per-stage block counts."""
    if (depth - 2) % 6 != 0:
        raise ValueError(f"ResNet depth must satisfy depth = 6b + 2, got {depth}")
    b = (depth - 2) // 6
    return [b, b, b]


# Registry mapping paper model names to constructors.  ``resnet11`` in the
# paper is a shallower variant; we map it to one block per stage.
MODEL_REGISTRY: Dict[str, dict] = {
    "resnet11": {"kind": "resnet", "blocks": [1, 1, 1], "widths": (8, 16, 32)},
    "resnet20": {"kind": "resnet", "blocks": _resnet_blocks(20), "widths": (8, 16, 32)},
    "resnet29": {"kind": "resnet", "blocks": [4, 5, 4], "widths": (8, 16, 32)},
    "resnet56": {"kind": "resnet", "blocks": _resnet_blocks(56), "widths": (8, 16, 32)},
    "mlp_small": {"kind": "mlp", "hidden": [64]},
    "mlp_medium": {"kind": "mlp", "hidden": [128, 64]},
    "mlp_large": {"kind": "mlp", "hidden": [256, 128, 64]},
    "mlp_xlarge": {"kind": "mlp", "hidden": [512, 256, 128, 64]},
}


def build_model(
    name: str,
    num_classes: int,
    image_shape: Tuple[int, int, int],
    feature_dim: int = 32,
    rng=None,
) -> ClassifierModel:
    """Instantiate a registry model.

    Parameters
    ----------
    name:
        Key in :data:`MODEL_REGISTRY` (e.g. ``"resnet20"``, ``"mlp_small"``).
    num_classes:
        Output dimensionality.
    image_shape:
        ``(C, H, W)`` of the inputs; MLPs flatten it.
    feature_dim:
        Shared prototype dimensionality across heterogeneous models.
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model '{name}'; choose from {sorted(MODEL_REGISTRY)}")
    spec = MODEL_REGISTRY[name]
    rng = ensure_rng(rng)
    if spec["kind"] == "resnet":
        return ResNetClassifier(
            in_channels=image_shape[0],
            num_classes=num_classes,
            blocks_per_stage=spec["blocks"],
            widths=spec["widths"],
            feature_dim=feature_dim,
            rng=rng,
        )
    input_dim = int(np.prod(image_shape))
    return MLPClassifier(
        input_dim=input_dim,
        hidden_dims=spec["hidden"],
        num_classes=num_classes,
        feature_dim=feature_dim,
        rng=rng,
    )


def model_num_parameters(name: str, num_classes: int, image_shape: Tuple[int, int, int],
                         feature_dim: int = 32) -> int:
    """Parameter count of a registry model without keeping it around."""
    return build_model(name, num_classes, image_shape, feature_dim, rng=0).num_parameters()
