"""From-scratch neural-network substrate (numpy autograd) for the FedPKD repro.

Public surface::

    from repro import nn
    model = nn.build_model("resnet20", num_classes=10, image_shape=(3, 8, 8))
    logits, feats = model.forward_with_features(nn.Tensor(x))
    loss = nn.losses.cross_entropy(logits, y)
    loss.backward()
    nn.Adam(model.parameters()).step()
"""

from . import functional, init, losses, optim
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from .models import (
    MODEL_REGISTRY,
    BasicBlock,
    ClassifierModel,
    MLPClassifier,
    ResNetClassifier,
    build_model,
    model_num_parameters,
)
from .optim import Adam, Optimizer, SGD, clip_grad_norm
from .schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupLR
from .serialize import (
    WIRE_DTYPE,
    array_num_bytes,
    deserialize_state,
    payload_num_bytes,
    serialize_state,
)
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "losses",
    "optim",
    "init",
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Sequential",
    "ClassifierModel",
    "MLPClassifier",
    "ResNetClassifier",
    "BasicBlock",
    "build_model",
    "model_num_parameters",
    "MODEL_REGISTRY",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "WIRE_DTYPE",
    "payload_num_bytes",
    "array_num_bytes",
    "serialize_state",
    "deserialize_state",
]
