"""Functional neural-network operations built on :class:`repro.nn.Tensor`.

Includes the composite ops the layers need — softmax/log-softmax,
im2col-based 2-D convolution, pooling, dropout — each registered in the
autograd graph with a hand-written backward pass where a composition of
Tensor primitives would be too slow.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from ..obs import profile as _profile
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "relu",
    "softmax",
    "log_softmax",
    "one_hot",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "dropout",
    "linear",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"one_hot expects 1-D labels, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for 2-D ``x``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# im2col helpers
# ----------------------------------------------------------------------
def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int
) -> Tuple[np.ndarray, int, int]:
    """Rearrange NCHW input into column matrix for convolution.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = x_shape
    dx = np.zeros(x_shape, dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += cols6[
                :, :, i, j
            ]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over NCHW input.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    stride, padding:
        Symmetric stride and zero-padding.
    """
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError(
            f"conv2d expects 4-D input/weight, got {x.shape} and {weight.shape}"
        )
    if padding:
        x = x.pad2d(padding)
    c_out, c_in, kh, kw = weight.shape
    n, c, h, w = x.shape
    if c != c_in:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c_in}")

    # timed after padding so pad2d (profiled separately) isn't double-counted
    prof = _profile.ACTIVE
    start = time.perf_counter() if prof is not None else 0.0

    cols, out_h, out_w = _im2col(x.data, kh, kw, stride)
    w_mat = weight.data.reshape(c_out, -1)
    out_data = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        out = Tensor(out_data)
    else:

        def backward(grad: np.ndarray) -> None:
            grad_mat = grad.reshape(n, c_out, out_h * out_w)
            if weight.requires_grad:
                dw = np.einsum("nop,nkp->ok", grad_mat, cols, optimize=True)
                weight._accumulate(dw.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))
            if x.requires_grad:
                dcols = np.einsum("ok,nop->nkp", w_mat, grad_mat, optimize=True)
                dx = _col2im(dcols, (n, c, h, w), kh, kw, stride, out_h, out_w)
                x._accumulate(dx)

        out = Tensor(
            out_data, requires_grad=True, _parents=parents, _backward=backward
        )

    if prof is not None:
        # 2 * N * C_out * out_h * out_w * C_in * kh * kw multiply-adds
        flops = 2.0 * n * c_out * out_h * out_w * c_in * kh * kw
        prof.record(
            "conv2d", time.perf_counter() - start, flops, out_data.nbytes
        )
        _profile.wrap_backward(out, "conv2d", 2.0 * flops)
    return out


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over NCHW input with square window."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    prof = _profile.ACTIVE
    start = time.perf_counter() if prof is not None else 0.0
    cols, out_h, out_w = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel_size, kernel_size, stride
    )
    # cols: (N*C, k*k, P)
    arg = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    if not (is_grad_enabled() and x.requires_grad):
        out = Tensor(out_data)
    else:

        def backward(grad: np.ndarray) -> None:
            grad_flat = grad.reshape(n * c, 1, out_h * out_w)
            dcols = np.zeros_like(cols)
            np.put_along_axis(dcols, arg[:, None, :], grad_flat, axis=1)
            dx = _col2im(
                dcols, (n * c, 1, h, w), kernel_size, kernel_size, stride, out_h, out_w
            )
            x._accumulate(dx.reshape(n, c, h, w))

        out = Tensor(
            out_data, requires_grad=True, _parents=(x,), _backward=backward
        )

    if prof is not None:
        # one comparison per window element: k*k per output element
        flops = float(cols.size)
        prof.record(
            "max_pool2d", time.perf_counter() - start, flops, out_data.nbytes
        )
        _profile.wrap_backward(out, "max_pool2d", 2.0 * flops)
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over NCHW input with square window."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    prof = _profile.ACTIVE
    start = time.perf_counter() if prof is not None else 0.0
    cols, out_h, out_w = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel_size, kernel_size, stride
    )
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)

    if not (is_grad_enabled() and x.requires_grad):
        out = Tensor(out_data)
    else:
        k2 = kernel_size * kernel_size

        def backward(grad: np.ndarray) -> None:
            grad_flat = grad.reshape(n * c, 1, out_h * out_w)
            dcols = np.broadcast_to(grad_flat / k2, cols.shape).copy()
            dx = _col2im(
                dcols, (n * c, 1, h, w), kernel_size, kernel_size, stride, out_h, out_w
            )
            x._accumulate(dx.reshape(n, c, h, w))

        out = Tensor(
            out_data, requires_grad=True, _parents=(x,), _backward=backward
        )

    if prof is not None:
        # one add per window element: k*k per output element
        flops = float(cols.size)
        prof.record(
            "avg_pool2d", time.perf_counter() - start, flops, out_data.nbytes
        )
        _profile.wrap_backward(out, "avg_pool2d", 2.0 * flops)
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial axes, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)
