"""Federated-learning simulation framework: clients, server, channel, engine."""

from .async_engine import AsyncRoundEngine, EngineStalledError
from .channel import ChannelSnapshot, CommChannel
from .checkpoint import (
    CheckpointError,
    load_checkpoint,
    load_history,
    save_checkpoint,
)
from .client import FLClient
from .config import FederationConfig, TrainingConfig
from .failures import (
    DropoutLog,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    ParticipationSampler,
    RuntimeDropout,
)
from .metrics import RoundRecord, RunHistory, nan_mean
from .registry import ClientModelStore, ClientRegistry
from .server import FLServer
from .simulation import Federation, FederatedAlgorithm, build_federation
from .training import (
    evaluate_accuracy,
    make_optimizer,
    train_distill,
    train_supervised,
    train_with_loss,
)

__all__ = [
    "AsyncRoundEngine",
    "EngineStalledError",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "CommChannel",
    "ChannelSnapshot",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_history",
    "FLClient",
    "FLServer",
    "ClientModelStore",
    "ClientRegistry",
    "nan_mean",
    "FederationConfig",
    "TrainingConfig",
    "ParticipationSampler",
    "DropoutLog",
    "RuntimeDropout",
    "RoundRecord",
    "RunHistory",
    "Federation",
    "FederatedAlgorithm",
    "build_federation",
    "train_with_loss",
    "train_supervised",
    "train_distill",
    "evaluate_accuracy",
    "make_optimizer",
]
