"""Run history and the paper's evaluation metrics.

Three metrics from Sec. V-A:

- ``server_acc`` (``S_acc``): server model on the global test set;
- ``client_acc`` (``C_acc``): mean of per-client accuracy on local test
  sets distributed like each client's training data;
- communication efficiency: cumulative MB until a target accuracy.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["RoundRecord", "RunHistory", "nan_mean"]


def nan_mean(values: List[float]) -> float:
    """Mean over the non-NaN entries; NaN when none remain.

    Clients whose local test set is empty (singleton shards) report NaN
    accuracy — they carry no signal and must neither poison the mean nor,
    as a 0.0 placeholder once did, silently drag it down at scale.
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)


@dataclass
class RoundRecord:
    """Metrics at the end of one communication round."""

    round_index: int
    server_acc: float
    client_accs: List[float]
    comm_uplink_bytes: int
    comm_downlink_bytes: int
    wall_time_s: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_client_acc(self) -> float:
        return nan_mean(self.client_accs)

    @property
    def comm_total_mb(self) -> float:
        return (self.comm_uplink_bytes + self.comm_downlink_bytes) / (1024.0 * 1024.0)


class RunHistory:
    """Ordered collection of :class:`RoundRecord` with summary queries."""

    def __init__(self, algorithm: str, dataset: str = "", config: Optional[dict] = None) -> None:
        self.algorithm = algorithm
        self.dataset = dataset
        self.config = config or {}
        self.records: List[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # summary queries
    # ------------------------------------------------------------------
    @property
    def final_server_acc(self) -> float:
        return self.records[-1].server_acc if self.records else float("nan")

    @property
    def final_client_acc(self) -> float:
        return self.records[-1].mean_client_acc if self.records else float("nan")

    @property
    def best_server_acc(self) -> float:
        accs = [r.server_acc for r in self.records if not math.isnan(r.server_acc)]
        return max(accs) if accs else float("nan")

    @property
    def best_client_acc(self) -> float:
        accs = [r.mean_client_acc for r in self.records if not math.isnan(r.mean_client_acc)]
        return max(accs) if accs else float("nan")

    def server_acc_curve(self) -> List[float]:
        return [r.server_acc for r in self.records]

    def client_acc_curve(self) -> List[float]:
        return [r.mean_client_acc for r in self.records]

    def comm_curve_mb(self) -> List[float]:
        return [r.comm_total_mb for r in self.records]

    def comm_to_reach(self, target_acc: float, metric: str = "server") -> Optional[float]:
        """Cumulative MB when ``metric`` accuracy first reaches ``target_acc``.

        Returns ``None`` if the run never reaches the target (the paper's
        ``N/A`` entries in Table I).
        """
        for record in self.records:
            acc = record.server_acc if metric == "server" else record.mean_client_acc
            if not math.isnan(acc) and acc >= target_acc:
                return record.comm_total_mb
        return None

    def rounds_to_reach(self, target_acc: float, metric: str = "server") -> Optional[int]:
        """First round index at which ``metric`` accuracy reaches the target."""
        for record in self.records:
            acc = record.server_acc if metric == "server" else record.mean_client_acc
            if not math.isnan(acc) and acc >= target_acc:
                return record.round_index
        return None

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Render the per-round records as CSV.

        Fixed columns first, then the sorted union of every record's
        ``extras`` keys (records missing a key leave the cell empty).  NaN
        renders as an empty cell so spreadsheet tools do not choke.
        """
        import csv
        import io

        extra_keys = sorted({key for r in self.records for key in r.extras})
        headers = [
            "round_index",
            "server_acc",
            "mean_client_acc",
            "comm_uplink_bytes",
            "comm_downlink_bytes",
            "comm_total_mb",
            "wall_time_s",
        ] + extra_keys

        def cell(value):
            if value is None:
                return ""
            if isinstance(value, float) and math.isnan(value):
                return ""
            return value

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(headers)
        for r in self.records:
            row = [
                r.round_index,
                cell(r.server_acc),
                cell(r.mean_client_acc),
                r.comm_uplink_bytes,
                r.comm_downlink_bytes,
                cell(r.comm_total_mb),
                cell(r.wall_time_s),
            ]
            row.extend(cell(r.extras.get(key)) for key in extra_keys)
            writer.writerow(row)
        return buffer.getvalue()

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "config": self.config,
            "records": [asdict(r) for r in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunHistory":
        history = cls(
            payload["algorithm"], payload.get("dataset", ""), payload.get("config")
        )
        for raw in payload.get("records", []):
            history.append(RoundRecord(**raw))
        return history

    @classmethod
    def from_json(cls, text: str) -> "RunHistory":
        """Inverse of :meth:`to_json` (NaN accuracies round-trip intact)."""
        return cls.from_dict(json.loads(text))
