"""Lossy payload compression for the communication channel.

The KD-based methods' traffic is dominated by logit matrices, which
tolerate aggressive quantisation.  This module provides wire codecs —
float32 (identity), float16, and per-row affine int8 — with exact byte
accounting, plus helpers to round-trip payloads through a codec so
algorithms train on what the receiver would actually see.

This extends the paper's communication-efficiency story: FedPKD already
ships ~10× less than weight exchange; int8 logits cut the remainder ~4×
more at negligible accuracy cost (see
``benchmarks/test_compression_tradeoff.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["QuantizedTensor", "quantize", "dequantize", "roundtrip", "SCHEMES"]

SCHEMES = ("float32", "float16", "int8")


@dataclass
class QuantizedTensor:
    """A tensor encoded for the wire.

    ``data`` holds the raw encoded bytes; ``scale``/``zero`` are the per-row
    affine parameters for int8 (None otherwise).  ``num_bytes`` is the exact
    wire size including quantisation metadata.
    """

    data: bytes
    shape: Tuple[int, ...]
    scheme: str
    scale: Optional[np.ndarray] = None
    zero: Optional[np.ndarray] = None

    @property
    def num_bytes(self) -> int:
        meta = 0
        if self.scale is not None:
            meta += self.scale.size * 4
        if self.zero is not None:
            meta += self.zero.size * 4
        return len(self.data) + meta


def quantize(array: np.ndarray, scheme: str = "int8") -> QuantizedTensor:
    """Encode ``array`` with the given scheme.

    int8 uses per-row affine quantisation (row = leading axis), which suits
    logit matrices where each sample's logits share a scale.
    """
    array = np.asarray(array, dtype=np.float64)
    if scheme == "float32":
        return QuantizedTensor(
            data=array.astype(np.float32).tobytes(), shape=array.shape, scheme=scheme
        )
    if scheme == "float16":
        return QuantizedTensor(
            data=array.astype(np.float16).tobytes(), shape=array.shape, scheme=scheme
        )
    if scheme == "int8":
        if array.size == 0:
            # zero-row logit matrices are reachable (e.g. prototype-based
            # filtering rejecting every public sample); reshape/min below
            # both choke on them, so encode an explicitly empty tensor
            return QuantizedTensor(
                data=b"",
                shape=array.shape,
                scheme=scheme,
                scale=np.zeros(0, dtype=np.float32),
                zero=np.zeros(0, dtype=np.float32),
            )
        flat = array.reshape(array.shape[0], -1) if array.ndim > 1 else array.reshape(1, -1)
        lo = flat.min(axis=1)
        hi = flat.max(axis=1)
        span = np.where(hi > lo, hi - lo, 1.0)
        scale = span / 255.0
        quantised = np.clip(
            np.round((flat - lo[:, None]) / scale[:, None]), 0, 255
        ).astype(np.uint8)
        return QuantizedTensor(
            data=quantised.tobytes(),
            shape=array.shape,
            scheme=scheme,
            scale=scale.astype(np.float32),
            zero=lo.astype(np.float32),
        )
    raise ValueError(f"unknown scheme '{scheme}'; choose from {SCHEMES}")


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Decode back to float64 (lossy for float16/int8)."""
    if qt.scheme == "float32":
        return np.frombuffer(qt.data, dtype=np.float32).reshape(qt.shape).astype(np.float64)
    if qt.scheme == "float16":
        return np.frombuffer(qt.data, dtype=np.float16).reshape(qt.shape).astype(np.float64)
    if qt.scheme == "int8":
        if int(np.prod(qt.shape)) == 0:
            return np.zeros(qt.shape, dtype=np.float64)
        rows = qt.shape[0] if len(qt.shape) > 1 else 1
        flat = np.frombuffer(qt.data, dtype=np.uint8).reshape(rows, -1).astype(np.float64)
        restored = flat * qt.scale[:, None].astype(np.float64) + qt.zero[:, None].astype(
            np.float64
        )
        return restored.reshape(qt.shape)
    raise ValueError(f"unknown scheme '{qt.scheme}'")


def roundtrip(array: np.ndarray, scheme: str) -> Tuple[np.ndarray, QuantizedTensor]:
    """Encode + decode; returns (received array, wire object for accounting)."""
    qt = quantize(array, scheme)
    return dequantize(qt), qt
