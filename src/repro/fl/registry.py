"""Lazy client registry with a bounded live set and a spill-to-disk store.

The eager path materialised every :class:`~repro.fl.client.FLClient` (data
slice + model) up front, capping federations at hundreds of clients.  At
production scale only a small sampled sub-cohort touches the server each
round, so a federation of N registered clients needs O(cohort) memory, not
O(N).  This module provides that shape:

- :class:`ClientRegistry` — a :class:`collections.abc.Sequence` of clients
  registered as ``(client_id, partition indices, seed, model name)``
  entries.  A concrete ``FLClient`` is *derived* on first touch: the data
  slice is re-cut deterministically from the bundle (same per-client seeds
  as the eager path, so a derived client is bit-identical to an eagerly
  built one), and the model is either built fresh from its seed or
  hydrated from the spill store.
- :class:`ClientModelStore` — one lossless npz shard per *mutated* client
  (model ``state_dict`` via :func:`repro.nn.serialize.serialize_state`
  with ``dtype=None`` plus the client RNG stream as a JSON blob), written
  when a live client is evicted.

Mutation tracking decides what must survive eviction: ``registry[cid]``
marks the client *dirty* (algorithms train / load weights through it),
while :meth:`ClientRegistry.peek` materialises without marking (the
sampled-evaluation read path).  A clean evicted client is simply dropped —
it is a pure function of its seeds and is rebuilt identically on the next
touch; a dirty one is spilled first.

Eviction happens only at :meth:`ClientRegistry.settle` — the round
boundary — never mid-access, so client references handed to an algorithm
stay valid for the duration of a round.  The peak live set is therefore
``max_live`` carried clients plus whatever one round touches
(participants + evaluation sample), which is the bounded guarantee the
cohort benchmark asserts.  See docs/SCALE.md.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections import OrderedDict
from collections.abc import Sequence
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.datasets import FederatedDataBundle
from ..data.partition import split_local_train_test
from ..nn.models import build_model
from ..nn.serialize import deserialize_state, serialize_state
from .client import FLClient

__all__ = ["ClientModelStore", "ClientRegistry"]

_RNG_KEY = "__rng__json"


class ClientModelStore:
    """Spill-to-disk store: one lossless npz shard per client id.

    A shard holds the client model's ``state_dict`` (native dtypes — the
    same lossless mode the parallel runtime ships state between processes
    with) and the client's RNG stream state.  ``root=None`` creates a
    private temporary directory lazily on first write and removes it on
    :meth:`close`; an explicit ``root`` is owned by the caller and left in
    place.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self._root = root
        self._owned = root is None
        self._created = False

    @property
    def root(self) -> Optional[str]:
        return self._root

    def _ensure_root(self) -> str:
        if self._root is None:
            self._root = tempfile.mkdtemp(prefix="repro-client-store-")
        elif not self._created:
            os.makedirs(self._root, exist_ok=True)
        self._created = True
        return self._root

    def _shard_path(self, client_id: int) -> str:
        return os.path.join(self._ensure_root(), f"client{client_id:08d}.npz")

    def save(
        self, client_id: int, model_state: Dict[str, np.ndarray], rng_state: dict
    ) -> int:
        """Atomically write one client's shard (tmp + ``os.replace``);
        returns the shard size in bytes (the registry's obs gauge feed)."""
        blob = serialize_state(
            {str(k): np.asarray(v) for k, v in model_state.items()}, dtype=None
        )
        rng_blob = json.dumps(rng_state, default=_json_default).encode("utf-8")
        path = self._shard_path(client_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as f:
                f.write(len(rng_blob).to_bytes(8, "little"))
                f.write(rng_blob)
                f.write(blob)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return 8 + len(rng_blob) + len(blob)

    def load(self, client_id: int) -> Tuple[Dict[str, np.ndarray], dict]:
        """Read one client's shard back: ``(model_state, rng_state)``."""
        path = self._shard_path(client_id)
        with open(path, "rb") as f:
            rng_len = int.from_bytes(f.read(8), "little")
            rng_state = json.loads(f.read(rng_len).decode("utf-8"))
            state = deserialize_state(f.read(), dtype=None)
        return state, rng_state

    def has(self, client_id: int) -> bool:
        if not self._created or self._root is None:
            return False
        return os.path.exists(self._shard_path(client_id))

    def clear(self) -> None:
        """Drop every shard (checkpoint restore resets the store)."""
        if not self._created or self._root is None:
            return
        for name in os.listdir(self._root):
            if name.startswith("client") and name.endswith(".npz"):
                os.remove(os.path.join(self._root, name))

    def close(self) -> None:
        """Remove the store directory if this store created it."""
        if self._owned and self._created and self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._created = False
            self._root = None


def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"unserialisable RNG state of type {type(value)!r}")


class ClientRegistry(Sequence):
    """Sequence of lazily derived clients over one data bundle.

    Parameters
    ----------
    bundle:
        The federation's data bundle; every client's slice is cut from
        ``bundle.train``.
    partitions:
        Per-client index arrays (the partitioner's output).
    model_cycle:
        Model registry names cycled across clients
        (``model_name(cid) == model_cycle[cid % len(model_cycle)]``) —
        the compact form of ``FederationConfig.client_model_names()``.
    feature_dim / test_fraction / base_seed:
        Exactly the knobs the eager builder used; a derived client is
        bit-identical to one built eagerly from the same config.
    max_live:
        Carry at most this many materialised clients across round
        boundaries (LRU eviction at :meth:`settle`).  ``None`` (default)
        never evicts — the degenerate mode that is bit-identical to the
        historical eager path.
    spill_dir:
        Directory for the spill store (``None`` = private tempdir).
    """

    def __init__(
        self,
        bundle: FederatedDataBundle,
        partitions: List[np.ndarray],
        model_cycle: List[str],
        feature_dim: int,
        test_fraction: float,
        base_seed: int,
        max_live: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        if not model_cycle:
            raise ValueError("model_cycle must name at least one model")
        if max_live is not None and max_live < 1:
            raise ValueError(f"max_live must be >= 1, got {max_live}")
        self._bundle = bundle
        self._parts = [np.asarray(p, dtype=np.int64) for p in partitions]
        self._cycle = [str(name) for name in model_cycle]
        self._feature_dim = int(feature_dim)
        self._test_fraction = float(test_fraction)
        self._base_seed = int(base_seed)
        self.max_live = max_live
        self.store = ClientModelStore(spill_dir)
        self._live: "OrderedDict[int, FLClient]" = OrderedDict()
        self._dirty: set = set()
        # lifetime counters surfaced by stats() and the cohort benchmark
        self._materialisations = 0
        self._hydrations = 0
        self._evictions = 0
        self._spills = 0
        # clean evictions remembered so the next derivation counts as a
        # rebuild-from-seed rather than a first-touch materialisation
        self._evicted_clean: set = set()
        self._clean_rebuilds = 0
        self._metrics = None

    # ------------------------------------------------------------------
    # cheap facts (no materialisation)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parts)

    def attach_metrics(self, metrics) -> None:
        """Publish registry churn under the ``registry/`` metric scope.

        Counters: ``spill_writes``, ``hydrations``, ``clean_rebuilds``,
        ``evictions``, ``shard_bytes``; gauges: ``live_set_size``,
        ``dirty``.  ``repro trace summarize`` surfaces these alongside the
        stage/op tables.  A disabled registry (or ``None``) is a no-op.
        """
        self._metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )

    def _update_gauges(self) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        metrics.gauge("registry/live_set_size").set(len(self._live))
        metrics.gauge("registry/dirty").set(len(self._dirty))

    @property
    def bounded(self) -> bool:
        """Whether eviction is on (``max_live`` set)."""
        return self.max_live is not None

    @property
    def model_cycle(self) -> List[str]:
        return list(self._cycle)

    def model_name(self, client_id: int) -> str:
        return self._cycle[client_id % len(self._cycle)]

    def shard_size(self, client_id: int) -> int:
        """Total samples in the client's partition (train + local test)."""
        return len(self._parts[client_id])

    def train_size(self, client_id: int) -> int:
        """Local-train sample count, by the same arithmetic as
        :func:`~repro.data.partition.split_local_train_test` — O(1), no
        materialisation."""
        n = len(self._parts[client_id])
        if n <= 1:
            return n
        n_test = min(max(1, int(round(n * self._test_fraction))), n - 1)
        return n - n_test

    def probe_model_fingerprint(self, model_name: str) -> Dict[str, list]:
        """Parameter shapes of ``model_name`` under this registry's bundle
        (shape metadata is seed-independent; used by checkpoint
        validation without touching any client)."""
        model = build_model(
            model_name,
            self._bundle.num_classes,
            self._bundle.image_shape,
            feature_dim=self._feature_dim,
            rng=0,
        )
        return {
            key: list(np.asarray(value).shape)
            for key, value in model.state_dict().items()
        }

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def _derive(self, client_id: int) -> FLClient:
        """Build the client from its registry entry (the eager recipe)."""
        seed = self._base_seed
        bundle = self._bundle
        train_idx, test_idx = split_local_train_test(
            self._parts[client_id],
            test_fraction=self._test_fraction,
            seed=seed + 1000 + client_id,
        )
        name = self.model_name(client_id)
        model = build_model(
            name,
            bundle.num_classes,
            bundle.image_shape,
            feature_dim=self._feature_dim,
            rng=seed + 2000 + client_id,
        )
        client = FLClient(
            client_id=client_id,
            model=model,
            x_train=bundle.train.x[train_idx],
            y_train=bundle.train.y[train_idx],
            x_test=bundle.train.x[test_idx],
            y_test=bundle.train.y[test_idx],
            num_classes=bundle.num_classes,
            seed=seed + 3000 + client_id,
            model_name=name,
        )
        if self.store.has(client_id):
            state, rng_state = self.store.load(client_id)
            client.model.load_state_dict(state)
            client.set_rng_state(rng_state)
            self._hydrations += 1
            self._evicted_clean.discard(client_id)
            if self._metrics is not None:
                self._metrics.counter("registry/hydrations").inc()
        elif client_id in self._evicted_clean:
            self._evicted_clean.discard(client_id)
            self._clean_rebuilds += 1
            if self._metrics is not None:
                self._metrics.counter("registry/clean_rebuilds").inc()
        return client

    def _materialise(self, client_id: int) -> FLClient:
        client = self._live.get(client_id)
        if client is None:
            client = self._derive(client_id)
            self._live[client_id] = client
            self._materialisations += 1
            self._update_gauges()
        else:
            self._live.move_to_end(client_id)
        return client

    def __getitem__(self, index):
        """Materialise a client for *use* — marks it dirty, so its state
        survives eviction and lands in checkpoints."""
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        cid = int(index)
        if cid < 0:
            cid += len(self)
        if not 0 <= cid < len(self):
            raise IndexError(f"client id {index} out of range [0, {len(self)})")
        self._dirty.add(cid)
        return self._materialise(cid)

    def peek(self, client_id: int) -> FLClient:
        """Materialise for *read-only* use (evaluation): an untouched
        client stays clean, so eviction drops it instead of spilling and
        checkpoints stay O(mutated clients)."""
        cid = int(client_id)
        if not 0 <= cid < len(self):
            raise IndexError(f"client id {client_id} out of range [0, {len(self)})")
        return self._materialise(cid)

    # ------------------------------------------------------------------
    # dirty tracking / eviction
    # ------------------------------------------------------------------
    def dirty_ids(self) -> List[int]:
        """Clients whose state diverged from their seed derivation."""
        return sorted(self._dirty)

    def settle(self) -> None:
        """Round-boundary eviction: shrink the live set to ``max_live``
        (least-recently-used first), spilling dirty clients to the store
        and dropping clean ones."""
        if self.max_live is None:
            return
        metrics = self._metrics
        while len(self._live) > self.max_live:
            cid, client = self._live.popitem(last=False)
            if cid in self._dirty:
                nbytes = self.store.save(
                    cid, client.model.state_dict(), client.rng_state()
                )
                self._spills += 1
                if metrics is not None:
                    metrics.counter("registry/spill_writes").inc()
                    metrics.counter("registry/shard_bytes").inc(nbytes)
            else:
                self._evicted_clean.add(cid)
            self._evictions += 1
            if metrics is not None:
                metrics.counter("registry/evictions").inc()
        self._update_gauges()

    # ------------------------------------------------------------------
    # checkpoint integration (see repro.fl.checkpoint)
    # ------------------------------------------------------------------
    def client_state(self, client_id: int) -> Tuple[Dict[str, np.ndarray], dict]:
        """Current ``(model_state, rng_state)`` of a dirty client, read
        from the live set or the spill store without re-materialising."""
        client = self._live.get(client_id)
        if client is not None:
            return (
                {k: np.asarray(v) for k, v in client.model.state_dict().items()},
                client.rng_state(),
            )
        if self.store.has(client_id):
            return self.store.load(client_id)
        raise KeyError(
            f"client {client_id} has no stored state (not live, not spilled)"
        )

    def restore_client_state(
        self, client_id: int, model_state: Dict[str, np.ndarray], rng_state: dict
    ) -> None:
        """Adopt checkpointed state for one client: applied in place if
        live, otherwise written straight to the spill store — either way
        the next touch observes exactly the checkpointed state."""
        client = self._live.get(client_id)
        if client is not None:
            client.model.load_state_dict(model_state)
            client.set_rng_state(rng_state)
        else:
            self.store.save(client_id, model_state, rng_state)
        self._dirty.add(client_id)

    def reset(self) -> None:
        """Forget every derived client and spilled shard (checkpoint
        restore starts from a clean slate)."""
        self._live.clear()
        self._dirty.clear()
        self._evicted_clean.clear()
        self.store.clear()
        self._update_gauges()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "num_clients": len(self),
            "live": len(self._live),
            "dirty": len(self._dirty),
            "materialisations": self._materialisations,
            "hydrations": self._hydrations,
            "clean_rebuilds": self._clean_rebuilds,
            "evictions": self._evictions,
            "spills": self._spills,
        }

    def close(self) -> None:
        self._live.clear()
        self.store.close()
