"""Server-side state shared by the algorithms that train a server model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.models import ClassifierModel
from .config import TrainingConfig
from .training import evaluate_accuracy, train_distill

__all__ = ["FLServer"]


class FLServer:
    """Holds the (optional) server model and its training utilities."""

    def __init__(self, model: Optional[ClassifierModel], seed: int = 0) -> None:
        self.model = model
        self.rng = np.random.default_rng(seed)

    @property
    def has_model(self) -> bool:
        return self.model is not None

    def logits_on(self, x: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("this server has no model")
        return self.model.predict_logits(x)

    def train_distill(
        self,
        x: np.ndarray,
        teacher_logits: np.ndarray,
        config: TrainingConfig,
        kd_weight: float = 0.5,
        pseudo_labels: Optional[np.ndarray] = None,
        temperature: float = 1.0,
    ) -> float:
        """Plain ensemble distillation into the server model (Eq. 3 style)."""
        if self.model is None:
            raise RuntimeError("this server has no model")
        return train_distill(
            self.model,
            x,
            teacher_logits,
            config,
            self.rng,
            kd_weight=kd_weight,
            pseudo_labels=pseudo_labels,
            temperature=temperature,
        )

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Generalisation accuracy on the global test set (paper ``S_acc``)."""
        if self.model is None:
            return float("nan")
        return evaluate_accuracy(self.model, x, y)
