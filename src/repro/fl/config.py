"""Configuration dataclasses shared by all FL algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["TrainingConfig", "FederationConfig"]


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training phase (paper Sec. V-A defaults).

    ``optimizer`` is ``"adam"`` (the paper's choice) or ``"sgd"``.
    """

    epochs: int = 1
    batch_size: int = 32
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_grad_norm: Optional[float] = None

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer '{self.optimizer}'")


@dataclass
class FederationConfig:
    """Describes how to build the federation for an experiment.

    Attributes
    ----------
    num_clients:
        Number of participating clients (the paper's :math:`C`).
    partition:
        ``("iid", {})``, ``("dirichlet", {"alpha": 0.5})`` or
        ``("shards", {"classes_per_client": 3, "shard_size": 20})``.
    client_models:
        One registry name for homogeneous settings, or a list cycled across
        clients for heterogeneous settings (paper: ResNet-11/20/29).
    server_model:
        Registry name for the server model, or ``None`` for algorithms
        without one (FedMD, DS-FL).
    feature_dim:
        Shared prototype dimensionality.
    local_test_fraction:
        Fraction of each client's local data carved out as its personal
        test set (drives the ``C_acc`` metric).
    dropout_prob:
        Per-round probability that a client is unavailable (failure
        injection; 0 reproduces the paper's full-participation setting).
    clients_per_round:
        Sample this many clients as the round's cohort before dropout is
        applied (cross-device participation at scale; see docs/SCALE.md).
        ``None`` (default) keeps the paper's full-participation setting.
    max_live_clients:
        Carry at most this many materialised clients across rounds; the
        rest live as lazy registry entries, with mutated state spilled to
        an npz shard store (:mod:`repro.fl.registry`).  ``None`` (default)
        never evicts — bit-identical to the historical eager path.
        Incompatible with ``executor="parallel"``, whose worker pool
        materialises every client at startup.
    eval_clients:
        Evaluate the personalised ``C_acc`` metric on a seeded sample of
        this many clients per evaluation instead of the whole population
        (keeps ``_record_if_due`` O(sample) at large N).  ``None``
        evaluates everyone.
    spill_dir:
        Directory for the registry's spill store (``None`` = a private
        temporary directory removed on ``Federation.close()``).
    executor:
        Client-execution runtime: ``"serial"`` (inline, the default) or
        ``"parallel"`` (process pool; see :mod:`repro.runtime`).  For a
        fixed seed both produce bit-identical run histories.
    max_workers:
        Worker-process count for the parallel executor (``None`` sizes the
        pool to ``min(num_clients, cpu_count)``).
    task_timeout_s:
        Per-task result deadline under the parallel executor; a client
        whose task exhausts its timeout budget is recorded as a runtime
        dropout for that round.  ``None`` disables the deadline.
    task_retries:
        Extra attempts granted to a task after a timeout or worker death.
    retry_backoff_s:
        Base seconds of the capped exponential backoff the parallel
        executor sleeps between retry attempts (seeded jitter included);
        0 retries immediately (the historical behaviour).
    engine:
        Round engine: ``"sync"`` (the barrier engine, bit-identical
        reference) or ``"async"`` (event-driven streaming aggregation with
        staleness discounts; see :mod:`repro.fl.async_engine` and
        docs/ASYNC.md).  Async with ``max_staleness=0``, a full buffer and
        no faults reproduces the sync history bit-for-bit.
    max_staleness:
        Async engine: contributions older than this many server versions
        at arrival are discarded (and counted) instead of aggregated.
    staleness_alpha:
        Async engine: staleness discount base — a contribution that is
        ``s`` versions old is folded in with weight ``alpha ** s``.
    buffer_size:
        Async engine: aggregate as soon as this many contributions have
        arrived.  ``None`` (default) waits for every in-flight dispatch —
        the full-barrier degenerate mode.
    fault_plan:
        Deterministic chaos schedule for the async engine: a JSON file
        path, an inline dict, or a :class:`~repro.fl.failures.FaultPlan`
        (stragglers, crashes, flaky clients, churn).  ``None`` injects
        nothing.
    checkpoint_every:
        Autosave cadence in rounds for exact-resume checkpoints (0 = off).
        Saves also fire on the final round, so an interrupted run can always
        restart from its last completed multiple.
    checkpoint_path:
        Destination file for autosaved checkpoints (atomic writes; see
        :mod:`repro.fl.checkpoint`).  Required when ``checkpoint_every`` is
        set.
    trace_path:
        Destination for the structured JSONL event trace (run → round →
        stage → client spans; see :mod:`repro.obs` and
        ``docs/OBSERVABILITY.md``).  ``None`` (the default) installs the
        no-op tracer at near-zero overhead.
    metrics_path:
        Destination for the metrics-registry export (``.jsonl``/``.json``
        or ``.csv``).  Setting either this or ``trace_path`` enables the
        metrics registry, whose snapshot is merged into each
        ``RoundRecord.extras``.
    profile:
        Enable the op-level substrate profiler (:mod:`repro.obs.profile`):
        per-op wall time / estimated FLOPs / bytes, attributed per stage
        and model architecture, exported as ``profile/*`` metric gauges
        and ``profile``-scope trace events.  Profiling never perturbs
        numerics — a profiled run's history matches the unprofiled one —
        and the default (off) adds a single predicate check per op.
    """

    num_clients: int = 8
    partition: Tuple[str, Dict] = ("dirichlet", {"alpha": 0.5})
    client_models: Union[str, Sequence[str]] = "resnet20"
    server_model: Optional[str] = "resnet56"
    feature_dim: int = 32
    local_test_fraction: float = 0.2
    dropout_prob: float = 0.0
    clients_per_round: Optional[int] = None
    max_live_clients: Optional[int] = None
    eval_clients: Optional[int] = None
    spill_dir: Optional[str] = None
    seed: int = 0
    executor: str = "serial"
    max_workers: Optional[int] = None
    task_timeout_s: Optional[float] = None
    task_retries: int = 1
    retry_backoff_s: float = 0.0
    engine: str = "sync"
    max_staleness: int = 0
    staleness_alpha: float = 0.5
    buffer_size: Optional[int] = None
    fault_plan: Optional[Union[str, Dict, object]] = None
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    profile: bool = False

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients}")
        kind = self.partition[0]
        if kind not in ("iid", "dirichlet", "shards", "by_classes"):
            raise ValueError(f"unknown partition kind '{kind}'")
        if not 0.0 <= self.dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if self.clients_per_round is not None and not (
            1 <= self.clients_per_round <= self.num_clients
        ):
            raise ValueError(
                f"clients_per_round must be in [1, num_clients], got "
                f"{self.clients_per_round}"
            )
        if self.max_live_clients is not None and self.max_live_clients < 1:
            raise ValueError(
                f"max_live_clients must be >= 1, got {self.max_live_clients}"
            )
        if self.eval_clients is not None and self.eval_clients < 1:
            raise ValueError(
                f"eval_clients must be >= 1, got {self.eval_clients}"
            )
        if self.executor not in ("serial", "parallel"):
            raise ValueError(f"unknown executor '{self.executor}'")
        if self.max_live_clients is not None and self.executor == "parallel":
            raise ValueError(
                "max_live_clients is incompatible with executor='parallel': "
                "the worker pool materialises every client at startup, "
                "defeating the bounded registry"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.engine not in ("sync", "async"):
            raise ValueError(f"unknown engine '{self.engine}'")
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        if not 0.0 < self.staleness_alpha <= 1.0:
            raise ValueError(
                f"staleness_alpha must be in (0, 1], got {self.staleness_alpha}"
            )
        if self.buffer_size is not None and self.buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {self.buffer_size}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise ValueError("checkpoint_every requires a checkpoint_path")
        if self.metrics_path and not self.metrics_path.endswith(
            (".jsonl", ".json", ".csv")
        ):
            raise ValueError(
                f"metrics_path '{self.metrics_path}' must end in .jsonl, "
                ".json or .csv"
            )

    def client_model_names(self) -> List[str]:
        """Resolve per-client model names (cycling a heterogeneous list)."""
        if isinstance(self.client_models, str):
            return [self.client_models] * self.num_clients
        names = list(self.client_models)
        if not names:
            raise ValueError("client_models list is empty")
        return [names[i % len(names)] for i in range(self.num_clients)]
