"""Wall-clock simulation of heterogeneous devices.

The paper's motivation is *system heterogeneity*: clients differ in
compute and network speed, so synchronous FL waits for stragglers, and the
choice of per-client model architecture (FedPKD's freedom) directly shapes
the round time.  This module provides a simple analytic timing model:

- a :class:`DeviceProfile` gives a client's compute throughput (MFLOP/s
  equivalent, here expressed as trainable-parameter-steps per second) and
  up/down bandwidth (bytes/s);
- :class:`TimingModel` turns per-round work measurements (training steps ×
  model size, payload bytes) into per-client durations;
- a synchronous round's duration is the slowest client's compute+transfer
  time plus the server's own work.

This supports time-to-accuracy comparisons (an extension of Table I) and
straggler analyses — e.g. quantifying how much FedPKD gains by giving slow
devices small models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["DeviceProfile", "DEVICE_CLASSES", "TimingModel", "RoundTiming"]


@dataclass(frozen=True)
class DeviceProfile:
    """Resource capabilities of one client device.

    ``compute_rate`` is parameter-update throughput: how many
    (parameter × SGD-step) units the device processes per second.  A model
    with ``P`` parameters trained for ``S`` steps costs ``P * S /
    compute_rate`` seconds.  Bandwidths are bytes per second.
    """

    name: str
    compute_rate: float
    uplink_bps: float
    downlink_bps: float

    def __post_init__(self) -> None:
        if self.compute_rate <= 0 or self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ValueError("device rates must be positive")


# Representative device classes, ordered weakest to strongest.  Numbers are
# synthetic but keep realistic ~30x compute and ~20x bandwidth spreads
# between embedded IoT nodes and edge servers.
DEVICE_CLASSES: Dict[str, DeviceProfile] = {
    "iot": DeviceProfile("iot", compute_rate=2e6, uplink_bps=0.25e6, downlink_bps=1e6),
    "mobile": DeviceProfile(
        "mobile", compute_rate=10e6, uplink_bps=1e6, downlink_bps=4e6
    ),
    "laptop": DeviceProfile(
        "laptop", compute_rate=30e6, uplink_bps=2.5e6, downlink_bps=10e6
    ),
    "edge": DeviceProfile(
        "edge", compute_rate=60e6, uplink_bps=5e6, downlink_bps=20e6
    ),
}


@dataclass
class RoundTiming:
    """Per-round timing breakdown (seconds)."""

    per_client_compute: Dict[int, float]
    per_client_comm: Dict[int, float]
    server_compute: float

    def client_total(self, client_id: int) -> float:
        return self.per_client_compute.get(client_id, 0.0) + self.per_client_comm.get(
            client_id, 0.0
        )

    @property
    def slowest_client(self) -> Optional[int]:
        ids = set(self.per_client_compute) | set(self.per_client_comm)
        if not ids:
            return None
        return max(ids, key=self.client_total)

    @property
    def round_duration(self) -> float:
        """Synchronous round time: slowest client plus server work."""
        slowest = self.slowest_client
        client_time = self.client_total(slowest) if slowest is not None else 0.0
        return client_time + self.server_compute


class TimingModel:
    """Accumulates work and converts it to simulated wall-clock time.

    Usage: assign a profile per client, then per round record training work
    (``parameter_steps = num_params * num_sgd_steps``) and transfers; call
    :meth:`close_round` to get a :class:`RoundTiming` and reset.
    """

    def __init__(
        self,
        profiles: Sequence[DeviceProfile],
        server_compute_rate: float = 200e6,
    ) -> None:
        if server_compute_rate <= 0:
            raise ValueError("server_compute_rate must be positive")
        self.profiles = list(profiles)
        self.server_compute_rate = server_compute_rate
        self._compute: Dict[int, float] = {}
        self._comm: Dict[int, float] = {}
        self._server_work = 0.0
        self.round_history: List[RoundTiming] = []

    def profile(self, client_id: int) -> DeviceProfile:
        return self.profiles[client_id % len(self.profiles)]

    # ------------------------------------------------------------------
    # work recording
    # ------------------------------------------------------------------
    def record_training(self, client_id: int, parameter_steps: float) -> None:
        """Record local training work (num_params × SGD steps)."""
        seconds = parameter_steps / self.profile(client_id).compute_rate
        self._compute[client_id] = self._compute.get(client_id, 0.0) + seconds

    def record_upload(self, client_id: int, num_bytes: int) -> None:
        seconds = num_bytes / self.profile(client_id).uplink_bps
        self._comm[client_id] = self._comm.get(client_id, 0.0) + seconds

    def record_download(self, client_id: int, num_bytes: int) -> None:
        seconds = num_bytes / self.profile(client_id).downlink_bps
        self._comm[client_id] = self._comm.get(client_id, 0.0) + seconds

    def record_server_training(self, parameter_steps: float) -> None:
        self._server_work += parameter_steps / self.server_compute_rate

    # ------------------------------------------------------------------
    # round closing
    # ------------------------------------------------------------------
    def close_round(self) -> RoundTiming:
        timing = RoundTiming(
            per_client_compute=dict(self._compute),
            per_client_comm=dict(self._comm),
            server_compute=self._server_work,
        )
        self.round_history.append(timing)
        self._compute.clear()
        self._comm.clear()
        self._server_work = 0.0
        return timing

    @property
    def total_time(self) -> float:
        return sum(t.round_duration for t in self.round_history)

    def straggler_gap(self) -> float:
        """Mean ratio of slowest to median client time across rounds.

        Quantifies how unbalanced the rounds are: 1.0 means perfectly
        balanced; large values mean strong stragglers (the problem
        heterogeneous model assignment addresses).
        """
        ratios = []
        for timing in self.round_history:
            ids = set(timing.per_client_compute) | set(timing.per_client_comm)
            if len(ids) < 2:
                continue
            totals = sorted(timing.client_total(c) for c in ids)
            median = float(np.median(totals))
            if median > 0:
                ratios.append(totals[-1] / median)
        return float(np.mean(ratios)) if ratios else 1.0


def estimate_training_steps(num_samples: int, epochs: int, batch_size: int) -> int:
    """SGD steps for one training phase (ceil per epoch)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    steps_per_epoch = (num_samples + batch_size - 1) // batch_size
    return steps_per_epoch * epochs


__all__.append("estimate_training_steps")
