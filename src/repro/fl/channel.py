"""Simulated client↔server communication channel with byte accounting.

The paper's communication-efficiency results (Fig. 3, Table I) measure the
MB transferred until a target accuracy is reached.  Every payload an
algorithm sends must go through :class:`CommChannel`, which sizes it via
:func:`repro.nn.serialize.payload_num_bytes` and keeps per-client,
per-direction, and per-round ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..nn.serialize import Payload, payload_num_bytes

__all__ = ["CommChannel", "ChannelSnapshot"]

_MB = 1024.0 * 1024.0


@dataclass
class ChannelSnapshot:
    """Cumulative traffic totals at one point in time (bytes)."""

    uplink: int
    downlink: int

    @property
    def total(self) -> int:
        return self.uplink + self.downlink

    @property
    def total_mb(self) -> float:
        return self.total / _MB


class CommChannel:
    """Byte-accounting ledger for a simulated FL deployment.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    transfer additionally publishes ``channel/uplink_bytes`` /
    ``channel/downlink_bytes`` counters and a ``channel/payload_bytes``
    size histogram; the ledger itself is unaffected.
    """

    def __init__(self, metrics=None) -> None:
        self._uplink: Dict[int, int] = {}
        self._downlink: Dict[int, int] = {}
        self._round_marks: List[ChannelSnapshot] = []
        self._metrics = metrics

    def attach_metrics(self, metrics) -> None:
        """Publish transfer metrics into ``metrics`` from now on."""
        self._metrics = metrics

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _publish(self, direction: str, size: int) -> None:
        metrics = self._metrics
        if metrics is None or not metrics.enabled:
            return
        from ..obs.metrics import DEFAULT_BYTE_BUCKETS

        metrics.counter(f"channel/{direction}_bytes").inc(size)
        metrics.counter(f"channel/{direction}_payloads").inc()
        metrics.histogram(
            "channel/payload_bytes", buckets=DEFAULT_BYTE_BUCKETS
        ).observe(size)

    def upload(self, client_id: int, payload: Payload) -> int:
        """Record a client→server transfer; returns its size in bytes."""
        size = payload_num_bytes(payload)
        self._uplink[client_id] = self._uplink.get(client_id, 0) + size
        self._publish("uplink", size)
        return size

    def download(self, client_id: int, payload: Payload) -> int:
        """Record a server→client transfer; returns its size in bytes."""
        size = payload_num_bytes(payload)
        self._downlink[client_id] = self._downlink.get(client_id, 0) + size
        self._publish("downlink", size)
        return size

    def broadcast(self, client_ids, payload: Payload) -> int:
        """Record the same server→client payload to many clients."""
        return sum(self.download(cid, payload) for cid in client_ids)

    def mark_round(self) -> ChannelSnapshot:
        """Snapshot cumulative totals at a round boundary."""
        snap = self.snapshot()
        self._round_marks.append(snap)
        return snap

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> ChannelSnapshot:
        return ChannelSnapshot(
            uplink=sum(self._uplink.values()),
            downlink=sum(self._downlink.values()),
        )

    @property
    def total_bytes(self) -> int:
        return self.snapshot().total

    @property
    def total_mb(self) -> float:
        return self.total_bytes / _MB

    def client_bytes(self, client_id: int) -> int:
        """Total bytes this client sent plus received."""
        return self._uplink.get(client_id, 0) + self._downlink.get(client_id, 0)

    def client_mb(self, client_id: int) -> float:
        return self.client_bytes(client_id) / _MB

    def per_client_mb(self) -> Dict[int, float]:
        ids = set(self._uplink) | set(self._downlink)
        return {cid: self.client_mb(cid) for cid in sorted(ids)}

    @property
    def round_marks(self) -> List[ChannelSnapshot]:
        return list(self._round_marks)

    def reset(self) -> None:
        self._uplink.clear()
        self._downlink.clear()
        self._round_marks.clear()

    # ------------------------------------------------------------------
    # persistence (exact-resume checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable ledger state (per-client totals + round marks)."""
        return {
            "uplink": {str(cid): b for cid, b in self._uplink.items()},
            "downlink": {str(cid): b for cid, b in self._downlink.items()},
            "round_marks": [[s.uplink, s.downlink] for s in self._round_marks],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore ledgers saved by :meth:`state_dict`.

        Resuming with a zeroed ledger silently corrupts every cumulative-MB
        result, so checkpoints must restore this, not reset it.
        """
        self._uplink = {int(cid): int(b) for cid, b in state["uplink"].items()}
        self._downlink = {
            int(cid): int(b) for cid, b in state["downlink"].items()
        }
        self._round_marks = [
            ChannelSnapshot(uplink=int(u), downlink=int(d))
            for u, d in state["round_marks"]
        ]
