"""Federation construction and the synchronous round engine.

:func:`build_federation` turns a data bundle plus a
:class:`~repro.fl.config.FederationConfig` into concrete clients and a
server.  :class:`FederatedAlgorithm` is the base class every algorithm
(FedPKD and the six baselines) derives from: subclasses implement
``run_round`` and the engine handles evaluation, communication snapshots,
failure injection, and history recording.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..data.datasets import FederatedDataBundle
from ..data.partition import (
    partition_by_classes,
    partition_dirichlet,
    partition_iid,
    partition_shards,
)
from ..nn.models import build_model
from ..obs import NULL_OBS, Observability
from ..runtime import Executor, SerialExecutor, make_executor
from .channel import CommChannel
from .client import FLClient
from .config import FederationConfig
from .failures import DropoutLog, ParticipationSampler
from .metrics import RoundRecord, RunHistory, nan_mean
from .registry import ClientRegistry
from .server import FLServer

__all__ = ["build_federation", "Federation", "FederatedAlgorithm"]


class Federation:
    """Clients + server + channel (+ executor) for one experiment.

    ``clients`` is either a plain list of materialised
    :class:`~repro.fl.client.FLClient` (hand-built federations, tests) or
    a :class:`~repro.fl.registry.ClientRegistry` (what
    :func:`build_federation` constructs) deriving clients lazily with a
    bounded live set.  Both are Sequences; everything downstream indexes
    and iterates them identically.
    """

    def __init__(
        self,
        clients: Union[List[FLClient], ClientRegistry],
        server: FLServer,
        bundle: FederatedDataBundle,
        channel: CommChannel,
        participation: ParticipationSampler,
        executor: Optional[Executor] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
        obs: Optional[Observability] = None,
        eval_clients: Optional[int] = None,
        eval_seed: int = 0,
    ) -> None:
        self.clients = clients
        self.registry = clients if isinstance(clients, ClientRegistry) else None
        self.server = server
        self.bundle = bundle
        self.channel = channel
        self.participation = participation
        # sampled-client evaluation at large N: None evaluates everyone
        self.eval_clients = eval_clients
        self.eval_seed = int(eval_seed)
        # observability must exist before bind(): executors read it there
        self.obs = obs if obs is not None else NULL_OBS
        self.channel.attach_metrics(self.obs.metrics)
        if self.registry is not None:
            self.registry.attach_metrics(self.obs.metrics)
        self.executor = (executor or SerialExecutor()).bind(self)
        # autosave defaults inherited by FederatedAlgorithm.run()
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def public_x(self) -> np.ndarray:
        return self.bundle.public

    # ------------------------------------------------------------------
    # registry-aware client access (degenerates to plain list semantics)
    # ------------------------------------------------------------------
    def client_train_size(self, client_id: int) -> int:
        """Local-train sample count — O(1) under a registry, no
        materialisation (the empty-shard participation guard needs it for
        every sampled id)."""
        if self.registry is not None:
            return self.registry.train_size(client_id)
        return self.clients[client_id].num_samples

    def peek_client(self, client_id: int) -> FLClient:
        """A client for read-only use (evaluation): under a registry this
        skips dirty-marking, so eviction can drop it instead of spilling."""
        if self.registry is not None:
            return self.registry.peek(client_id)
        return self.clients[client_id]

    def eval_client_ids(self, round_index: int) -> Sequence[int]:
        """Ids evaluated for the ``C_acc`` metric at ``round_index``.

        With ``eval_clients`` set, a per-round sample drawn from a
        *stateless* seeded generator keyed on ``(eval_seed, round)`` — no
        RNG stream to checkpoint, and a resumed run replays the identical
        sample (the FaultPlan idiom).
        """
        if self.eval_clients is None or self.eval_clients >= self.num_clients:
            return range(self.num_clients)
        rng = np.random.default_rng((self.eval_seed, int(round_index)))
        ids = rng.choice(self.num_clients, size=self.eval_clients, replace=False)
        return [int(cid) for cid in np.sort(ids)]

    def settle_clients(self) -> None:
        """Round-boundary LRU eviction (no-op without a bounded registry)."""
        if self.registry is not None:
            self.registry.settle()

    def close(self) -> None:
        """Release executor, registry/spill-store, and observability."""
        self.executor.close()
        if self.registry is not None:
            self.registry.close()
        self.obs.close()


def _partition_indices(bundle: FederatedDataBundle, config: FederationConfig):
    kind, kwargs = config.partition
    if kind == "iid":
        return partition_iid(bundle.train, config.num_clients, seed=config.seed)
    if kind == "dirichlet":
        return partition_dirichlet(
            bundle.train, config.num_clients, seed=config.seed, **kwargs
        )
    if kind == "shards":
        return partition_shards(
            bundle.train, config.num_clients, seed=config.seed, **kwargs
        )
    if kind == "by_classes":
        return partition_by_classes(bundle.train, seed=config.seed, **kwargs)
    raise ValueError(f"unknown partition kind '{kind}'")


def build_federation(
    bundle: FederatedDataBundle, config: FederationConfig
) -> Federation:
    """Register clients lazily (a :class:`ClientRegistry`) and build the server.

    Clients are *registered*, not materialised: the registry derives each
    ``FLClient`` on first touch from the identical per-client seeds the
    historical eager builder used, so any derived client — and therefore
    any run — is bit-identical to the eager construction.  With
    ``max_live_clients`` set, at most that many materialised clients carry
    across rounds; mutated state spills to an npz shard store.
    """
    parts = _partition_indices(bundle, config)
    model_cycle = (
        [config.client_models]
        if isinstance(config.client_models, str)
        else list(config.client_models)
    )
    if not model_cycle:
        raise ValueError("client_models list is empty")
    registry = ClientRegistry(
        bundle,
        parts,
        model_cycle,
        feature_dim=config.feature_dim,
        test_fraction=config.local_test_fraction,
        base_seed=config.seed,
        max_live=config.max_live_clients,
        spill_dir=config.spill_dir,
    )
    server_model = None
    if config.server_model is not None:
        server_model = build_model(
            config.server_model,
            bundle.num_classes,
            bundle.image_shape,
            feature_dim=config.feature_dim,
            rng=config.seed + 4000,
        )
    server = FLServer(server_model, seed=config.seed + 5000)
    participation = ParticipationSampler(
        num_clients=len(registry),
        dropout_prob=config.dropout_prob,
        seed=config.seed + 6000,
        clients_per_round=config.clients_per_round,
    )
    return Federation(
        registry,
        server,
        bundle,
        CommChannel(),
        participation,
        executor=make_executor(config),
        checkpoint_every=config.checkpoint_every,
        checkpoint_path=config.checkpoint_path,
        obs=Observability.from_config(config),
        eval_clients=config.eval_clients,
        eval_seed=config.seed + 7000,
    )


class FederatedAlgorithm:
    """Base class for synchronous FL algorithms.

    Subclasses implement :meth:`run_round`, using ``self.federation`` for
    clients/server/public data and ``self.channel`` for every transfer.
    Per-client stages should go through :meth:`map_clients`, which routes
    them to the federation's executor (serial or parallel) and turns
    irrecoverable worker faults into per-round dropouts.
    """

    name = "base"

    # Algorithms that implement the async-engine protocol
    # (async_dispatch_state / async_client_work / async_server_update; see
    # repro.fl.async_engine) flip this on.  The sync engine ignores it.
    supports_async = False

    def __init__(self, federation: Federation, seed: int = 0) -> None:
        self.federation = federation
        self.rng = np.random.default_rng(seed)
        self.round_index = 0
        self.obs = getattr(federation, "obs", None) or NULL_OBS
        self.dropout_log = DropoutLog(metrics=self.obs.metrics)
        # extras accumulated since the last RoundRecord (wall time, stage
        # times, runtime dropouts).  Instance state — not run() locals — so
        # checkpoints carry it and a resume between eval boundaries does
        # not silently drop the partial accumulation.
        self._pending_wall_time = 0.0
        self._pending_stage_times: Dict[str, float] = {}
        self._pending_dropouts = 0

    # convenient aliases -------------------------------------------------
    @property
    def clients(self) -> List[FLClient]:
        return self.federation.clients

    @property
    def server(self) -> FLServer:
        return self.federation.server

    @property
    def channel(self) -> CommChannel:
        return self.federation.channel

    @property
    def bundle(self) -> FederatedDataBundle:
        return self.federation.bundle

    @property
    def public_x(self) -> np.ndarray:
        return self.federation.public_x

    @property
    def executor(self) -> Executor:
        return self.federation.executor

    @property
    def tracer(self):
        return self.obs.tracer

    @property
    def metrics(self):
        return self.obs.metrics

    def active_clients(self) -> List[FLClient]:
        """Clients participating this round (after failure injection).

        A sampled client whose derived shard has no training data (the
        ``by_classes`` partitioner can hand out empty groups) degrades to
        a logged dropout instead of crashing the round's aggregation.
        """
        participants: List[FLClient] = []
        for cid in self.federation.participation.sample():
            if self.federation.client_train_size(cid) == 0:
                self.dropout_log.record(
                    self.round_index + 1, cid, "participation", "empty_shard"
                )
                continue
            participants.append(self.clients[cid])
        return participants

    def map_clients(
        self,
        participants: List[FLClient],
        method: str,
        kwargs: Optional[Dict] = None,
        stage: Optional[str] = None,
    ) -> List:
        """Run ``method(**kwargs)`` on every participant via the executor.

        Returns the per-client return values in participant order.  A
        client whose task irrecoverably fails (timeout / repeated worker
        death under the parallel executor) is removed from
        ``participants`` *in place* — so later phases of the same round
        naturally skip it — and recorded in :attr:`dropout_log`; the
        returned values align with the surviving participants.
        """
        if not participants:
            return []
        values, failures = self.executor.run_stage(
            participants, method, kwargs, stage=stage
        )
        if failures:
            failed_ids = {f.client_id for f in failures}
            participants[:] = [
                c for c in participants if c.client_id not in failed_ids
            ]
            for failure in failures:
                self.dropout_log.record(
                    self.round_index + 1, failure.client_id, failure.stage,
                    failure.reason,
                )
        return values

    # ------------------------------------------------------------------
    # the round contract
    # ------------------------------------------------------------------
    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        """Execute one communication round; return optional extra metrics."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # algorithm-specific cross-round state (exact-resume checkpointing)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        """Arrays carried across rounds outside the models.

        Algorithms with server-side memory (FedPKD / FedProto global
        prototypes, aggregated soft labels, ...) must override this and
        :meth:`load_extra_state`, or a resumed run silently diverges from
        an uninterrupted one.  The default is stateless.
        """
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`extra_state`."""

    # ------------------------------------------------------------------
    # partially accumulated record extras (checkpointed so a resume
    # between eval_every boundaries loses nothing)
    # ------------------------------------------------------------------
    def pending_state(self) -> dict:
        """Extras accumulated since the last :class:`RoundRecord`."""
        return {
            "wall_time_s": float(self._pending_wall_time),
            "stage_times": {
                name: float(seconds)
                for name, seconds in self._pending_stage_times.items()
            },
            "dropouts": int(self._pending_dropouts),
        }

    def load_pending_state(self, state: Optional[dict]) -> None:
        """Inverse of :meth:`pending_state` (``None`` resets to empty)."""
        state = state or {}
        self._pending_wall_time = float(state.get("wall_time_s", 0.0))
        self._pending_stage_times = {
            name: float(seconds)
            for name, seconds in (state.get("stage_times") or {}).items()
        }
        self._pending_dropouts = int(state.get("dropouts", 0))

    def evaluate_server(self) -> float:
        with self.obs.profile_model("server"):
            return self.server.evaluate(self.bundle.test.x, self.bundle.test.y)

    def evaluate_clients(self) -> List[float]:
        """Per-client ``C_acc`` — over everyone, or the federation's seeded
        per-round sample when ``eval_clients`` caps the evaluation cost.
        Clients with an empty local test set report NaN."""
        ids = self.federation.eval_client_ids(self.round_index)
        prof = self.obs.profiler
        if prof is None:
            return [self.federation.peek_client(cid).evaluate() for cid in ids]
        accs = []
        for cid in ids:
            client = self.federation.peek_client(cid)
            with prof.model(getattr(client, "model_name", None)):
                accs.append(client.evaluate())
        return accs

    # ------------------------------------------------------------------
    # round bookkeeping shared by the sync loop and the async engine
    # (repro.fl.async_engine) — the record path must be byte-identical
    # between the two for the engines' equivalence contract to hold
    # ------------------------------------------------------------------
    def _collect_round_costs(self, wall_seconds: float) -> None:
        """Fold one completed round's costs into the pending accumulators."""
        self._pending_wall_time += wall_seconds
        for stage_name, seconds in self.executor.pop_stage_times().items():
            self._pending_stage_times[stage_name] = (
                self._pending_stage_times.get(stage_name, 0.0) + seconds
            )
        self._pending_dropouts += self.dropout_log.count_for_round(
            self.round_index
        )

    def _record_if_due(
        self,
        history: RunHistory,
        extras: Dict[str, float],
        final_round: bool,
        eval_every: int,
        verbose: bool = False,
    ) -> None:
        """Evaluate and append a :class:`RoundRecord` at eval boundaries."""
        if not (final_round or self.round_index % eval_every == 0):
            return
        tracer = self.tracer
        snap = self.channel.mark_round()
        extras = dict(extras)
        for stage_name, seconds in self._pending_stage_times.items():
            extras.setdefault(f"time/{stage_name}", seconds)
        if self._pending_dropouts:
            extras.setdefault("runtime_dropouts", float(self._pending_dropouts))
        with self.obs.profile_stage("eval"), tracer.span(
            "eval", scope="stage", attrs={"round": self.round_index}
        ) as eval_span:
            server_acc = self.evaluate_server()
            client_accs = self.evaluate_clients()
            eval_span.set_attr("server_acc", server_acc)
        if self.metrics.enabled:
            self.metrics.gauge("run/server_acc").set(server_acc)
            # NaN-aware: empty-test-set clients report NaN and must not
            # poison (or, as 0.0 once did, silently drag down) the mean
            self.metrics.gauge("run/mean_client_acc").set(nan_mean(client_accs))
            self.metrics.gauge("run/round_index").set(self.round_index)
            for key, value in self.metrics.snapshot().items():
                extras.setdefault(key, value)
        record = RoundRecord(
            round_index=self.round_index,
            server_acc=server_acc,
            client_accs=client_accs,
            comm_uplink_bytes=snap.uplink,
            comm_downlink_bytes=snap.downlink,
            wall_time_s=self._pending_wall_time,
            extras=extras,
        )
        history.append(record)
        tracer.event(
            "round_record",
            scope="round",
            attrs={
                "round": record.round_index,
                "server_acc": record.server_acc,
                "mean_client_acc": record.mean_client_acc,
                "comm_mb": record.comm_total_mb,
                "wall_time_s": record.wall_time_s,
            },
        )
        self._pending_wall_time = 0.0
        self._pending_stage_times = {}
        self._pending_dropouts = 0
        self.obs.export_metrics()
        if verbose:
            print(
                f"[{self.name}] round {self.round_index}: "
                f"S_acc={record.server_acc:.3f} "
                f"C_acc={record.mean_client_acc:.3f} "
                f"comm={record.comm_total_mb:.2f}MB"
            )

    def run(
        self,
        rounds: int,
        eval_every: int = 1,
        history: Optional[RunHistory] = None,
        verbose: bool = False,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ) -> RunHistory:
        """Run ``rounds`` communication rounds, recording metrics.

        Evaluation happens every ``eval_every`` rounds and always on the
        final round.  An existing ``history`` may be passed to continue a
        run (a resumed run passes the history restored from the
        checkpoint).

        ``checkpoint_every`` / ``checkpoint_path`` enable autosave: every
        that-many rounds (and on the final round) the full training state —
        including ``history`` so far — is written atomically to
        ``checkpoint_path`` via :func:`repro.fl.checkpoint.save_checkpoint`.
        Both default to the federation's configured values
        (:class:`~repro.fl.config.FederationConfig`).  Partially
        accumulated record extras (stage times, wall time, runtime
        dropouts) are checkpointed too, so ``checkpoint_every`` need not
        align with ``eval_every``.

        When observability is enabled (``FederationConfig(trace_path=...)``
        or ``metrics_path=...``), each round and evaluation is traced as a
        span and the metrics-registry snapshot is merged into every
        record's ``extras``.
        """
        if checkpoint_every is None:
            checkpoint_every = getattr(self.federation, "checkpoint_every", 0)
        if checkpoint_path is None:
            checkpoint_path = getattr(self.federation, "checkpoint_path", None)
        autosave = bool(checkpoint_every and checkpoint_every > 0 and checkpoint_path)
        if autosave:
            # imported here: checkpoint.py imports this module at top level
            from .checkpoint import save_checkpoint
        if history is None:
            history = RunHistory(
                self.name, dataset=self.bundle.name, config={"rounds": rounds}
            )
        tracer = self.tracer
        # wall time, per-stage timings, and runtime dropouts accumulate
        # across the rounds between evaluations (and across an interrupted
        # run via pending_state), so each RoundRecord covers everything
        # since the previous record even when eval_every > 1
        with self.obs.profile_session(), tracer.span(
            "run",
            scope="run",
            attrs={
                "algorithm": self.name,
                "rounds": rounds,
                "eval_every": eval_every,
                "start_round": self.round_index,
                "num_clients": self.federation.num_clients,
                "executor": self.executor.name,
            },
        ):
            for r in range(rounds):
                start = time.perf_counter()
                with tracer.span("round", scope="round") as round_span:
                    participants = self.active_clients()
                    round_span.set_attr("round", self.round_index + 1)
                    round_span.set_attr("participants", len(participants))
                    extras = self.run_round(participants) or {}
                self.round_index += 1
                self._collect_round_costs(time.perf_counter() - start)
                final_round = r == rounds - 1
                self._record_if_due(
                    history, extras, final_round, eval_every, verbose
                )
                if autosave and (
                    final_round or self.round_index % checkpoint_every == 0
                ):
                    save_checkpoint(self, checkpoint_path, history=history)
                # round boundary: shrink the registry's live set back to
                # its budget (references handed out above are now dead)
                self.federation.settle_clients()
        self.obs.publish_profile()
        self.obs.export_metrics()
        return history
