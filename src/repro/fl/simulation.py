"""Federation construction and the synchronous round engine.

:func:`build_federation` turns a data bundle plus a
:class:`~repro.fl.config.FederationConfig` into concrete clients and a
server.  :class:`FederatedAlgorithm` is the base class every algorithm
(FedPKD and the six baselines) derives from: subclasses implement
``run_round`` and the engine handles evaluation, communication snapshots,
failure injection, and history recording.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.datasets import FederatedDataBundle
from ..data.partition import (
    partition_by_classes,
    partition_dirichlet,
    partition_iid,
    partition_shards,
    split_local_train_test,
)
from ..nn.models import build_model
from ..runtime import Executor, SerialExecutor, make_executor
from .channel import CommChannel
from .client import FLClient
from .config import FederationConfig, TrainingConfig
from .failures import DropoutLog, ParticipationSampler
from .metrics import RoundRecord, RunHistory
from .server import FLServer

__all__ = ["build_federation", "Federation", "FederatedAlgorithm"]


class Federation:
    """Concrete clients + server + channel (+ executor) for one experiment."""

    def __init__(
        self,
        clients: List[FLClient],
        server: FLServer,
        bundle: FederatedDataBundle,
        channel: CommChannel,
        participation: ParticipationSampler,
        executor: Optional[Executor] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.clients = clients
        self.server = server
        self.bundle = bundle
        self.channel = channel
        self.participation = participation
        self.executor = (executor or SerialExecutor()).bind(self)
        # autosave defaults inherited by FederatedAlgorithm.run()
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def public_x(self) -> np.ndarray:
        return self.bundle.public

    def close(self) -> None:
        """Release executor resources (worker processes, if any)."""
        self.executor.close()


def _partition_indices(bundle: FederatedDataBundle, config: FederationConfig):
    kind, kwargs = config.partition
    if kind == "iid":
        return partition_iid(bundle.train, config.num_clients, seed=config.seed)
    if kind == "dirichlet":
        return partition_dirichlet(
            bundle.train, config.num_clients, seed=config.seed, **kwargs
        )
    if kind == "shards":
        return partition_shards(
            bundle.train, config.num_clients, seed=config.seed, **kwargs
        )
    if kind == "by_classes":
        return partition_by_classes(bundle.train, seed=config.seed, **kwargs)
    raise ValueError(f"unknown partition kind '{kind}'")


def build_federation(
    bundle: FederatedDataBundle, config: FederationConfig
) -> Federation:
    """Instantiate clients (with their models and local splits) and the server."""
    parts = _partition_indices(bundle, config)
    model_names = config.client_model_names()
    clients: List[FLClient] = []
    for cid, indices in enumerate(parts):
        train_idx, test_idx = split_local_train_test(
            indices,
            test_fraction=config.local_test_fraction,
            seed=config.seed + 1000 + cid,
        )
        model = build_model(
            model_names[cid],
            bundle.num_classes,
            bundle.image_shape,
            feature_dim=config.feature_dim,
            rng=config.seed + 2000 + cid,
        )
        clients.append(
            FLClient(
                client_id=cid,
                model=model,
                x_train=bundle.train.x[train_idx],
                y_train=bundle.train.y[train_idx],
                x_test=bundle.train.x[test_idx],
                y_test=bundle.train.y[test_idx],
                num_classes=bundle.num_classes,
                seed=config.seed + 3000 + cid,
                model_name=model_names[cid],
            )
        )
    server_model = None
    if config.server_model is not None:
        server_model = build_model(
            config.server_model,
            bundle.num_classes,
            bundle.image_shape,
            feature_dim=config.feature_dim,
            rng=config.seed + 4000,
        )
    server = FLServer(server_model, seed=config.seed + 5000)
    participation = ParticipationSampler(
        num_clients=len(clients),
        dropout_prob=config.dropout_prob,
        seed=config.seed + 6000,
    )
    return Federation(
        clients,
        server,
        bundle,
        CommChannel(),
        participation,
        executor=make_executor(config),
        checkpoint_every=config.checkpoint_every,
        checkpoint_path=config.checkpoint_path,
    )


class FederatedAlgorithm:
    """Base class for synchronous FL algorithms.

    Subclasses implement :meth:`run_round`, using ``self.federation`` for
    clients/server/public data and ``self.channel`` for every transfer.
    Per-client stages should go through :meth:`map_clients`, which routes
    them to the federation's executor (serial or parallel) and turns
    irrecoverable worker faults into per-round dropouts.
    """

    name = "base"

    def __init__(self, federation: Federation, seed: int = 0) -> None:
        self.federation = federation
        self.rng = np.random.default_rng(seed)
        self.round_index = 0
        self.dropout_log = DropoutLog()

    # convenient aliases -------------------------------------------------
    @property
    def clients(self) -> List[FLClient]:
        return self.federation.clients

    @property
    def server(self) -> FLServer:
        return self.federation.server

    @property
    def channel(self) -> CommChannel:
        return self.federation.channel

    @property
    def bundle(self) -> FederatedDataBundle:
        return self.federation.bundle

    @property
    def public_x(self) -> np.ndarray:
        return self.federation.public_x

    @property
    def executor(self) -> Executor:
        return self.federation.executor

    def active_clients(self) -> List[FLClient]:
        """Clients participating this round (after failure injection)."""
        ids = self.federation.participation.sample()
        return [self.clients[i] for i in ids]

    def map_clients(
        self,
        participants: List[FLClient],
        method: str,
        kwargs: Optional[Dict] = None,
        stage: Optional[str] = None,
    ) -> List:
        """Run ``method(**kwargs)`` on every participant via the executor.

        Returns the per-client return values in participant order.  A
        client whose task irrecoverably fails (timeout / repeated worker
        death under the parallel executor) is removed from
        ``participants`` *in place* — so later phases of the same round
        naturally skip it — and recorded in :attr:`dropout_log`; the
        returned values align with the surviving participants.
        """
        if not participants:
            return []
        values, failures = self.executor.run_stage(
            participants, method, kwargs, stage=stage
        )
        if failures:
            failed_ids = {f.client_id for f in failures}
            participants[:] = [
                c for c in participants if c.client_id not in failed_ids
            ]
            for failure in failures:
                self.dropout_log.record(
                    self.round_index + 1, failure.client_id, failure.stage,
                    failure.reason,
                )
        return values

    # ------------------------------------------------------------------
    # the round contract
    # ------------------------------------------------------------------
    def run_round(self, participants: List[FLClient]) -> Dict[str, float]:
        """Execute one communication round; return optional extra metrics."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # algorithm-specific cross-round state (exact-resume checkpointing)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        """Arrays carried across rounds outside the models.

        Algorithms with server-side memory (FedPKD / FedProto global
        prototypes, aggregated soft labels, ...) must override this and
        :meth:`load_extra_state`, or a resumed run silently diverges from
        an uninterrupted one.  The default is stateless.
        """
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`extra_state`."""

    def evaluate_server(self) -> float:
        return self.server.evaluate(self.bundle.test.x, self.bundle.test.y)

    def evaluate_clients(self) -> List[float]:
        return [c.evaluate() for c in self.clients]

    def run(
        self,
        rounds: int,
        eval_every: int = 1,
        history: Optional[RunHistory] = None,
        verbose: bool = False,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ) -> RunHistory:
        """Run ``rounds`` communication rounds, recording metrics.

        Evaluation happens every ``eval_every`` rounds and always on the
        final round.  An existing ``history`` may be passed to continue a
        run (a resumed run passes the history restored from the
        checkpoint).

        ``checkpoint_every`` / ``checkpoint_path`` enable autosave: every
        that-many rounds (and on the final round) the full training state —
        including ``history`` so far — is written atomically to
        ``checkpoint_path`` via :func:`repro.fl.checkpoint.save_checkpoint`.
        Both default to the federation's configured values
        (:class:`~repro.fl.config.FederationConfig`).  For bit-exact record
        alignment on resume, keep ``checkpoint_every`` a multiple of
        ``eval_every`` so no partially accumulated extras span the save.
        """
        if checkpoint_every is None:
            checkpoint_every = getattr(self.federation, "checkpoint_every", 0)
        if checkpoint_path is None:
            checkpoint_path = getattr(self.federation, "checkpoint_path", None)
        autosave = bool(checkpoint_every and checkpoint_every > 0 and checkpoint_path)
        if autosave:
            # imported here: checkpoint.py imports this module at top level
            from .checkpoint import save_checkpoint
        if history is None:
            history = RunHistory(
                self.name, dataset=self.bundle.name, config={"rounds": rounds}
            )
        # wall time, per-stage timings, and runtime dropouts accumulate
        # across the rounds between evaluations, so each RoundRecord covers
        # everything since the previous record even when eval_every > 1
        pending_wall_time = 0.0
        pending_stage_times: Dict[str, float] = {}
        pending_dropouts = 0
        for r in range(rounds):
            start = time.perf_counter()
            participants = self.active_clients()
            extras = self.run_round(participants) or {}
            self.round_index += 1
            pending_wall_time += time.perf_counter() - start
            for stage_name, seconds in self.executor.pop_stage_times().items():
                pending_stage_times[stage_name] = (
                    pending_stage_times.get(stage_name, 0.0) + seconds
                )
            pending_dropouts += self.dropout_log.count_for_round(self.round_index)
            final_round = r == rounds - 1
            if final_round or self.round_index % eval_every == 0:
                snap = self.channel.mark_round()
                extras = dict(extras)
                for stage_name, seconds in pending_stage_times.items():
                    extras.setdefault(f"time/{stage_name}", seconds)
                if pending_dropouts:
                    extras.setdefault("runtime_dropouts", float(pending_dropouts))
                record = RoundRecord(
                    round_index=self.round_index,
                    server_acc=self.evaluate_server(),
                    client_accs=self.evaluate_clients(),
                    comm_uplink_bytes=snap.uplink,
                    comm_downlink_bytes=snap.downlink,
                    wall_time_s=pending_wall_time,
                    extras=extras,
                )
                history.append(record)
                pending_wall_time = 0.0
                pending_stage_times = {}
                pending_dropouts = 0
                if verbose:
                    print(
                        f"[{self.name}] round {self.round_index}: "
                        f"S_acc={record.server_acc:.3f} "
                        f"C_acc={record.mean_client_acc:.3f} "
                        f"comm={record.comm_total_mb:.2f}MB"
                    )
            if autosave and (
                final_round or self.round_index % checkpoint_every == 0
            ):
                save_checkpoint(self, checkpoint_path, history=history)
        return history
