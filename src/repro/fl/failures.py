"""Failure injection for robustness experiments.

Real deployments lose clients to crashes, churn, and stragglers.  The paper
assumes full participation; these utilities let the test suite and the
extension benchmarks check that every algorithm degrades gracefully when
clients go missing.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["ParticipationSampler"]


class ParticipationSampler:
    """Samples the set of available clients each round.

    Parameters
    ----------
    num_clients:
        Total federation size.
    dropout_prob:
        Independent per-round probability that each client is unavailable.
    min_available:
        At least this many clients always participate (a dropped round with
        zero clients would deadlock synchronous FL).
    """

    def __init__(
        self,
        num_clients: int,
        dropout_prob: float = 0.0,
        min_available: int = 1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if not 1 <= min_available <= num_clients:
            raise ValueError("min_available must be in [1, num_clients]")
        self.num_clients = num_clients
        self.dropout_prob = dropout_prob
        self.min_available = min_available
        self.rng = np.random.default_rng(seed)

    def sample(self) -> List[int]:
        """Return the sorted ids of clients available this round."""
        if self.dropout_prob == 0.0:
            return list(range(self.num_clients))
        available = [
            cid
            for cid in range(self.num_clients)
            if self.rng.random() >= self.dropout_prob
        ]
        while len(available) < self.min_available:
            extra = int(self.rng.integers(0, self.num_clients))
            if extra not in available:
                available.append(extra)
        return sorted(available)
