"""Failure injection and failure bookkeeping for robustness experiments.

Real deployments lose clients to crashes, churn, and stragglers.  The paper
assumes full participation; these utilities let the test suite and the
extension benchmarks check that every algorithm degrades gracefully when
clients go missing.

Three failure surfaces exist:

- **Pre-round dropout** — :class:`ParticipationSampler` removes clients
  before the round starts (the classic availability model).
- **Runtime dropout** — a client's worker task times out or its worker
  dies mid-round under the parallel runtime
  (:mod:`repro.runtime`).  :class:`DropoutLog` records those events so a
  failed worker degrades to "this client missed the round" instead of
  aborting the run.
- **Injected faults** — a :class:`FaultPlan` describes deterministic
  chaos (stragglers with seeded delay distributions, mid-round crashes,
  flaky-then-recover clients, join/leave churn) that the async round
  engine (:mod:`repro.fl.async_engine`) must survive.  Every fault is a
  *stateless* function of ``(plan seed, client id, server version)``, so
  chaos runs are reproducible and exact-resumable with no extra RNG state
  in checkpoints.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "ParticipationSampler",
    "RuntimeDropout",
    "DropoutLog",
    "FaultSpec",
    "FaultPlan",
    "FaultPlanError",
    "FAULT_KINDS",
]


class ParticipationSampler:
    """Samples the set of available clients each round.

    Parameters
    ----------
    num_clients:
        Total federation size.
    dropout_prob:
        Independent per-round probability that each client is unavailable.
    min_available:
        At least this many clients always participate (a dropped round with
        zero clients would deadlock synchronous FL).
    clients_per_round:
        Sample this many clients as the round's cohort *before* dropout is
        applied — the cross-device shape where a large registered
        population sees a small sub-cohort per round.  ``None`` (default)
        keeps the full-participation cohort; the RNG stream it consumes is
        bit-identical to the historical per-client loop.
    """

    def __init__(
        self,
        num_clients: int,
        dropout_prob: float = 0.0,
        min_available: int = 1,
        seed: int = 0,
        clients_per_round: Optional[int] = None,
    ) -> None:
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if clients_per_round is not None and not (
            1 <= clients_per_round <= num_clients
        ):
            raise ValueError("clients_per_round must be in [1, num_clients]")
        cohort_size = (
            num_clients if clients_per_round is None else clients_per_round
        )
        if not 1 <= min_available <= cohort_size:
            raise ValueError("min_available must be in [1, cohort size]")
        self.num_clients = num_clients
        self.dropout_prob = dropout_prob
        self.min_available = min_available
        self.clients_per_round = clients_per_round
        self.rng = np.random.default_rng(seed)

    def sample(self) -> List[int]:
        """Return the sorted ids of clients available this round."""
        if (
            self.clients_per_round is not None
            and self.clients_per_round < self.num_clients
        ):
            cohort = np.sort(
                self.rng.choice(
                    self.num_clients, size=self.clients_per_round, replace=False
                )
            )
        else:
            cohort = np.arange(self.num_clients)
        if self.dropout_prob == 0.0:
            return [int(cid) for cid in cohort]
        # one vectorised draw for the whole cohort — Generator.random(n)
        # consumes the stream exactly like n scalar random() calls, so the
        # sampled sets are bit-identical to the historical per-client loop
        # (CI-enforced) at none of its O(N) interpreter overhead
        draws = self.rng.random(len(cohort))
        available = [int(cid) for cid in cohort[draws >= self.dropout_prob]]
        shortfall = self.min_available - len(available)
        if shortfall > 0:
            # top up with a single draw over the dropped set (without
            # replacement) — rejection sampling here can spin arbitrarily
            # long at high dropout_prob
            dropped = np.setdiff1d(cohort, np.asarray(available, dtype=np.int64))
            extra = self.rng.choice(dropped, size=shortfall, replace=False)
            available.extend(int(cid) for cid in extra)
        return sorted(available)

    def state_dict(self) -> dict:
        """RNG stream state — the only thing that carries across rounds."""
        return {"rng": copy.deepcopy(self.rng.bit_generator.state)}

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])


@dataclass
class RuntimeDropout:
    """One client knocked out of one round by a runtime fault."""

    round_index: int
    client_id: int
    stage: str
    reason: str  # "timeout" | "worker_death" | "error"


class DropoutLog:
    """Ordered record of runtime dropouts across a run.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    recorded dropout also increments the ``runtime/dropouts`` counter.
    """

    def __init__(self, metrics=None) -> None:
        self.events: List[RuntimeDropout] = []
        self._metrics = metrics
        # per-round index of distinct client ids in first-seen order, so
        # long chaos runs answer clients_for_round/count_for_round in O(1)
        # instead of rescanning the whole event list per query
        self._by_round: Dict[int, List[int]] = {}

    def attach_metrics(self, metrics) -> None:
        self._metrics = metrics

    def _index(self, event: RuntimeDropout) -> None:
        clients = self._by_round.setdefault(event.round_index, [])
        if event.client_id not in clients:
            clients.append(event.client_id)

    def record(
        self, round_index: int, client_id: int, stage: str, reason: str
    ) -> None:
        event = RuntimeDropout(round_index, client_id, stage, reason)
        self.events.append(event)
        self._index(event)
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.counter("runtime/dropouts").inc()

    def clients_for_round(self, round_index: int) -> List[int]:
        """Distinct clients that dropped during ``round_index``."""
        return list(self._by_round.get(round_index, ()))

    def count_for_round(self, round_index: int) -> int:
        return len(self._by_round.get(round_index, ()))

    def __len__(self) -> int:
        return len(self.events)

    def state_dict(self) -> dict:
        return {
            "events": [
                [e.round_index, e.client_id, e.stage, e.reason]
                for e in self.events
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        self.events = [
            RuntimeDropout(int(r), int(cid), stage, reason)
            for r, cid, stage, reason in state["events"]
        ]
        self._by_round = {}
        for event in self.events:
            self._index(event)


# ----------------------------------------------------------------------
# deterministic fault injection (the chaos harness)
# ----------------------------------------------------------------------
FAULT_KINDS = ("straggler", "crash", "flaky", "leave", "join")

#: Salt per fault surface so the stateless draws of different injectors
#: never correlate even for the same (seed, client, version) triple.
_SALT = {"straggler": 101, "flaky": 211, "jitter": 307}


class FaultPlanError(ValueError):
    """A fault plan file/dict is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``kind`` is one of :data:`FAULT_KINDS`:

    - ``straggler`` — multiply the client's virtual completion delay by
      ``factor`` for every dispatch in ``[from_round, until_round)``.
      With ``jitter > 0`` the factor is additionally scaled by a lognormal
      draw (sigma = ``jitter``) that is a pure function of
      ``(plan seed, client, version)``.
    - ``crash`` — the dispatch made at server version ``round`` dies
      mid-flight; its contribution is lost and logged.
    - ``flaky`` — every dispatch in the window independently crashes with
      probability ``fail_prob`` (stateless seeded draw); outside the
      window the client is healthy again.
    - ``leave`` / ``join`` — availability churn: the client leaves the
      cohort at version ``round`` (``leave``) or (re)enters it
      (``join``).  A client's availability at version ``v`` is decided by
      the latest churn event at or before ``v``.
    """

    kind: str
    client_id: int
    factor: float = 1.0
    jitter: float = 0.0
    fail_prob: float = 0.0
    round: int = 0
    from_round: int = 0
    until_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind '{self.kind}' (choose from {FAULT_KINDS})"
            )
        if self.client_id < 0:
            raise FaultPlanError("client_id must be >= 0")
        if self.kind == "straggler" and self.factor <= 0:
            raise FaultPlanError("straggler factor must be positive")
        if self.jitter < 0:
            raise FaultPlanError("jitter must be >= 0")
        if self.kind == "flaky" and not 0.0 <= self.fail_prob <= 1.0:
            raise FaultPlanError("fail_prob must be in [0, 1]")
        if (
            self.until_round is not None
            and self.until_round <= self.from_round
        ):
            raise FaultPlanError("until_round must be > from_round")

    def in_window(self, version: int) -> bool:
        if version < self.from_round:
            return False
        return self.until_round is None or version < self.until_round


def _draw(seed: int, salt: int, client_id: int, version: int) -> np.random.Generator:
    """A fresh generator keyed on the fault coordinates — stateless, so a
    resumed run replays the identical fault sequence with no persisted
    RNG state."""
    return np.random.default_rng((seed, salt, client_id, version))


class FaultPlan:
    """A deterministic chaos schedule for the async round engine.

    Built from a dict / JSON file::

        {
          "seed": 0,
          "delay_jitter": 0.0,
          "faults": [
            {"kind": "straggler", "client_id": 2, "factor": 10.0},
            {"kind": "crash", "client_id": 1, "round": 2},
            {"kind": "flaky", "client_id": 0, "fail_prob": 0.5,
             "from_round": 0, "until_round": 4},
            {"kind": "leave", "client_id": 3, "round": 3},
            {"kind": "join", "client_id": 3, "round": 6}
          ]
        }

    ``delay_jitter`` is a global lognormal sigma applied to *every*
    dispatch's virtual delay (heterogeneous completion times without
    naming individual stragglers).  Every query is a pure function of the
    plan and its arguments.
    """

    def __init__(
        self,
        faults: Optional[List[FaultSpec]] = None,
        seed: int = 0,
        delay_jitter: float = 0.0,
    ) -> None:
        if delay_jitter < 0:
            raise FaultPlanError("delay_jitter must be >= 0")
        self.faults = list(faults or [])
        self.seed = int(seed)
        self.delay_jitter = float(delay_jitter)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"seed", "delay_jitter", "faults"})
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys: {unknown}")
        raw_faults = payload.get("faults", [])
        if not isinstance(raw_faults, list):
            raise FaultPlanError("'faults' must be a list")
        faults = []
        for i, raw in enumerate(raw_faults):
            if not isinstance(raw, dict):
                raise FaultPlanError(f"faults[{i}] must be an object")
            allowed = {
                "kind", "client_id", "factor", "jitter", "fail_prob",
                "round", "from_round", "until_round",
            }
            bad = sorted(set(raw) - allowed)
            if bad:
                raise FaultPlanError(f"faults[{i}] has unknown keys: {bad}")
            try:
                faults.append(FaultSpec(**raw))
            except TypeError as exc:
                raise FaultPlanError(f"faults[{i}]: {exc}") from None
        return cls(
            faults,
            seed=payload.get("seed", 0),
            delay_jitter=payload.get("delay_jitter", 0.0),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as f:
                payload = json.load(f)
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan '{path}': {exc}")
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan '{path}' is not valid JSON: {exc}")
        return cls.from_dict(payload)

    @classmethod
    def resolve(cls, value) -> Optional["FaultPlan"]:
        """Coerce a config value (None / path / dict / plan) to a plan."""
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return cls.from_file(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise FaultPlanError(
            f"fault plan must be a path, dict or FaultPlan, got "
            f"{type(value).__name__}"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "delay_jitter": self.delay_jitter,
            "faults": [
                {
                    "kind": f.kind,
                    "client_id": f.client_id,
                    "factor": f.factor,
                    "jitter": f.jitter,
                    "fail_prob": f.fail_prob,
                    "round": f.round,
                    "from_round": f.from_round,
                    "until_round": f.until_round,
                }
                for f in self.faults
            ],
        }

    # ------------------------------------------------------------------
    # queries (all pure functions of the plan + arguments)
    # ------------------------------------------------------------------
    def delay_factor(self, client_id: int, version: int) -> float:
        """Virtual-delay multiplier for a dispatch (1.0 = nominal)."""
        factor = 1.0
        if self.delay_jitter > 0:
            rng = _draw(self.seed, _SALT["jitter"], client_id, version)
            factor *= float(np.exp(self.delay_jitter * rng.standard_normal()))
        for fault in self.faults:
            if (
                fault.kind == "straggler"
                and fault.client_id == client_id
                and fault.in_window(version)
            ):
                factor *= fault.factor
                if fault.jitter > 0:
                    rng = _draw(
                        self.seed, _SALT["straggler"], client_id, version
                    )
                    factor *= float(
                        np.exp(fault.jitter * rng.standard_normal())
                    )
        return factor

    def crash_cause(self, client_id: int, version: int) -> Optional[str]:
        """Reason string if this dispatch dies mid-flight, else ``None``."""
        for fault in self.faults:
            if fault.client_id != client_id:
                continue
            if fault.kind == "crash" and fault.round == version:
                return "injected_crash"
            if fault.kind == "flaky" and fault.in_window(version):
                rng = _draw(self.seed, _SALT["flaky"], client_id, version)
                if rng.random() < fault.fail_prob:
                    return "injected_flaky"
        return None

    def available(self, client_id: int, version: int) -> bool:
        """Churn state: is the client part of the cohort at ``version``?"""
        decision = True
        decision_round = -1
        for fault in self.faults:
            if fault.client_id != client_id:
                continue
            if fault.kind not in ("leave", "join"):
                continue
            if fault.round <= version and fault.round >= decision_round:
                decision = fault.kind == "join"
                decision_round = fault.round
        return decision

    def describe(self) -> str:
        """One-line human summary for traces and logs."""
        kinds: Dict[str, int] = {}
        for fault in self.faults:
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        parts = [f"{n}x{kind}" for kind, n in sorted(kinds.items())]
        if self.delay_jitter:
            parts.append(f"jitter={self.delay_jitter:g}")
        return ",".join(parts) if parts else "empty"

    def __len__(self) -> int:
        return len(self.faults)
