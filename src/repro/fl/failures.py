"""Failure injection and failure bookkeeping for robustness experiments.

Real deployments lose clients to crashes, churn, and stragglers.  The paper
assumes full participation; these utilities let the test suite and the
extension benchmarks check that every algorithm degrades gracefully when
clients go missing.

Two failure surfaces exist:

- **Pre-round dropout** — :class:`ParticipationSampler` removes clients
  before the round starts (the classic availability model).
- **Runtime dropout** — a client's worker task times out or its worker
  dies mid-round under the parallel runtime
  (:mod:`repro.runtime`).  :class:`DropoutLog` records those events so a
  failed worker degrades to "this client missed the round" instead of
  aborting the run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["ParticipationSampler", "RuntimeDropout", "DropoutLog"]


class ParticipationSampler:
    """Samples the set of available clients each round.

    Parameters
    ----------
    num_clients:
        Total federation size.
    dropout_prob:
        Independent per-round probability that each client is unavailable.
    min_available:
        At least this many clients always participate (a dropped round with
        zero clients would deadlock synchronous FL).
    """

    def __init__(
        self,
        num_clients: int,
        dropout_prob: float = 0.0,
        min_available: int = 1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")
        if not 1 <= min_available <= num_clients:
            raise ValueError("min_available must be in [1, num_clients]")
        self.num_clients = num_clients
        self.dropout_prob = dropout_prob
        self.min_available = min_available
        self.rng = np.random.default_rng(seed)

    def sample(self) -> List[int]:
        """Return the sorted ids of clients available this round."""
        if self.dropout_prob == 0.0:
            return list(range(self.num_clients))
        available = [
            cid
            for cid in range(self.num_clients)
            if self.rng.random() >= self.dropout_prob
        ]
        shortfall = self.min_available - len(available)
        if shortfall > 0:
            # top up with a single draw over the dropped set (without
            # replacement) — rejection sampling here can spin arbitrarily
            # long at high dropout_prob
            dropped = np.setdiff1d(
                np.arange(self.num_clients), np.asarray(available, dtype=np.int64)
            )
            extra = self.rng.choice(dropped, size=shortfall, replace=False)
            available.extend(int(cid) for cid in extra)
        return sorted(available)

    def state_dict(self) -> dict:
        """RNG stream state — the only thing that carries across rounds."""
        return {"rng": copy.deepcopy(self.rng.bit_generator.state)}

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])


@dataclass
class RuntimeDropout:
    """One client knocked out of one round by a runtime fault."""

    round_index: int
    client_id: int
    stage: str
    reason: str  # "timeout" | "worker_death" | "error"


class DropoutLog:
    """Ordered record of runtime dropouts across a run.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    recorded dropout also increments the ``runtime/dropouts`` counter.
    """

    def __init__(self, metrics=None) -> None:
        self.events: List[RuntimeDropout] = []
        self._metrics = metrics

    def attach_metrics(self, metrics) -> None:
        self._metrics = metrics

    def record(
        self, round_index: int, client_id: int, stage: str, reason: str
    ) -> None:
        self.events.append(RuntimeDropout(round_index, client_id, stage, reason))
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.counter("runtime/dropouts").inc()

    def clients_for_round(self, round_index: int) -> List[int]:
        """Distinct clients that dropped during ``round_index``."""
        seen: List[int] = []
        for event in self.events:
            if event.round_index == round_index and event.client_id not in seen:
                seen.append(event.client_id)
        return seen

    def count_for_round(self, round_index: int) -> int:
        return len(self.clients_for_round(round_index))

    def __len__(self) -> int:
        return len(self.events)

    def state_dict(self) -> dict:
        return {
            "events": [
                [e.round_index, e.client_id, e.stage, e.reason]
                for e in self.events
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        self.events = [
            RuntimeDropout(int(r), int(cid), stage, reason)
            for r, cid, stage, reason in state["events"]
        ]
