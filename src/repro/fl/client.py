"""Client-side state and behaviour common to all algorithms."""

from __future__ import annotations

import copy
from typing import Dict, Optional

import numpy as np

from ..nn.models import ClassifierModel
from .config import TrainingConfig
from .training import evaluate_accuracy, train_distill, train_supervised

__all__ = ["FLClient"]


class FLClient:
    """One federated client: a model, private data, and a personal test set.

    The class is algorithm-agnostic; algorithms call its training helpers
    with the loss ingredients they need (proximal anchors, prototypes,
    teacher logits, ...).

    ``model_name`` records the registry name the model was built from; the
    parallel runtime (:mod:`repro.runtime`) uses it to rebuild a
    structurally identical client inside worker processes.  Hand-built
    clients may leave it ``None``, in which case their work runs inline.
    """

    def __init__(
        self,
        client_id: int,
        model: ClassifierModel,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        num_classes: int,
        seed: int = 0,
        model_name: Optional[str] = None,
    ) -> None:
        self.client_id = client_id
        self.model = model
        self.model_name = model_name
        self.x_train = x_train
        self.y_train = np.asarray(y_train, dtype=np.int64)
        self.x_test = x_test
        self.y_test = np.asarray(y_test, dtype=np.int64)
        self.num_classes = num_classes
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # RNG stream (checkpointing and the parallel runtime move it around)
    # ------------------------------------------------------------------
    def rng_state(self) -> dict:
        """A copy of the local RNG stream state (batch-shuffling order)."""
        return copy.deepcopy(self.rng.bit_generator.state)

    def set_rng_state(self, state: dict) -> None:
        self.rng.bit_generator.state = copy.deepcopy(state)

    # ------------------------------------------------------------------
    # data facts
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.x_train)

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts of the local training set."""
        return np.bincount(self.y_train, minlength=self.num_classes)

    def present_classes(self) -> np.ndarray:
        """Classes this client has at least one training sample of."""
        return np.flatnonzero(self.class_counts() > 0)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_local(
        self,
        config: TrainingConfig,
        prox_mu: float = 0.0,
        prox_reference: Optional[Dict[str, np.ndarray]] = None,
        prototypes: Optional[np.ndarray] = None,
        prototype_weight: float = 0.0,
    ) -> float:
        """Supervised training on private data (Eq. 4 / Eq. 16 / FedProx)."""
        return train_supervised(
            self.model,
            self.x_train,
            self.y_train,
            config,
            self.rng,
            prox_mu=prox_mu,
            prox_reference=prox_reference,
            prototypes=prototypes,
            prototype_weight=prototype_weight,
        )

    def train_public_distill(
        self,
        x_public: np.ndarray,
        teacher_logits: np.ndarray,
        config: TrainingConfig,
        kd_weight: float = 0.5,
        pseudo_labels: Optional[np.ndarray] = None,
        temperature: float = 1.0,
    ) -> float:
        """Distillation from server/consensus logits on public data (Eq. 15)."""
        return train_distill(
            self.model,
            x_public,
            teacher_logits,
            config,
            self.rng,
            kd_weight=kd_weight,
            pseudo_labels=pseudo_labels,
            temperature=temperature,
        )

    # ------------------------------------------------------------------
    # knowledge extraction
    # ------------------------------------------------------------------
    def logits_on(self, x: np.ndarray) -> np.ndarray:
        """Model output logits on arbitrary inputs (e.g. the public set)."""
        return self.model.predict_logits(x)

    def compute_prototypes(self) -> np.ndarray:
        """Per-class mean feature vectors of the local training set (Eq. 5).

        Returns a ``(num_classes, feature_dim)`` array with NaN rows for
        classes absent from the local data.
        """
        feats = self.model.extract_features(self.x_train)
        # float32: prototypes go on the wire, and the wire is float32
        # (repro.nn.serialize.WIRE_DTYPE) — a float64 buffer doubles the
        # per-class memory for precision the channel discards anyway
        protos = np.full(
            (self.num_classes, self.model.feature_dim), np.nan, dtype=np.float32
        )
        for cls in self.present_classes():
            protos[cls] = feats[self.y_train == cls].mean(axis=0)
        return protos

    def public_knowledge(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """One uplink bundle: logits on ``x``, local prototypes, class counts.

        Bundling the three lets the runtime ship a client's entire dual-
        knowledge contribution (FedPKD's uplink) as a single task.
        """
        return {
            "logits": self.logits_on(x),
            "prototypes": self.compute_prototypes(),
            "class_counts": self.class_counts(),
        }

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self) -> float:
        """Personalised accuracy on the local test set (paper ``C_acc``)."""
        return evaluate_accuracy(self.model, self.x_test, self.y_test)

    def evaluate_on(self, x: np.ndarray, y: np.ndarray) -> float:
        return evaluate_accuracy(self.model, x, y)
