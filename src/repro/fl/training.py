"""Shared training loops used by FedPKD and every baseline.

The algorithms differ only in *which losses* they combine over *which data*;
this module provides one generic minibatch loop (:func:`train_with_loss`)
plus the loss-builder combinators the paper's equations need.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..data.loaders import batch_iterator
from ..obs import profile as _profile
from ..nn import losses as L
from ..nn.layers import Module
from ..nn.models import ClassifierModel
from ..nn.optim import Adam, SGD, clip_grad_norm
from ..nn.tensor import Tensor
from .config import TrainingConfig

__all__ = [
    "make_optimizer",
    "train_with_loss",
    "train_supervised",
    "train_distill",
    "evaluate_accuracy",
]

LossBuilder = Callable[[ClassifierModel, Tuple[np.ndarray, ...]], Tensor]


def make_optimizer(model: Module, config: TrainingConfig):
    """Instantiate the optimiser named in ``config`` over ``model``."""
    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    return SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )


def train_with_loss(
    model: ClassifierModel,
    arrays: Sequence[np.ndarray],
    loss_builder: LossBuilder,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> float:
    """Run ``config.epochs`` of minibatch training; return mean final-epoch loss.

    ``arrays`` is a tuple of aligned per-sample arrays (inputs first); each
    minibatch slice is handed to ``loss_builder(model, batch)``.
    """
    if len(arrays) == 0 or len(arrays[0]) == 0:
        return 0.0
    prof = _profile.ACTIVE
    if prof is not None:
        # attribute the loop's non-op glue (batch shuffling/slicing, Tensor
        # construction, loss bookkeeping) that per-op hooks can't see, so
        # the profiled table covers training wall time end to end
        start = time.perf_counter()
        before = prof.total_seconds()
    model.train()
    optimizer = make_optimizer(model, config)
    x, extras = arrays[0], tuple(arrays[1:])
    last_epoch_losses: list = []
    for epoch in range(config.epochs):
        last_epoch_losses = []
        for batch in batch_iterator(
            x, None, config.batch_size, rng, shuffle=True, extras=extras
        ):
            loss = loss_builder(model, batch)
            model.zero_grad()
            loss.backward()
            if config.max_grad_norm is not None:
                clip_grad_norm(model.parameters(), config.max_grad_norm)
            optimizer.step()
            last_epoch_losses.append(loss.item())
    if prof is not None:
        total = time.perf_counter() - start
        inner = prof.total_seconds() - before
        prof.record("train.glue", max(total - inner, 0.0))
    return float(np.mean(last_epoch_losses)) if last_epoch_losses else 0.0


def train_supervised(
    model: ClassifierModel,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: np.random.Generator,
    prox_mu: float = 0.0,
    prox_reference: Optional[Dict[str, np.ndarray]] = None,
    prototypes: Optional[np.ndarray] = None,
    prototype_weight: float = 0.0,
) -> float:
    """Supervised local training (paper Eq. 4 / Eq. 16 / FedProx objective).

    Parameters
    ----------
    prox_mu, prox_reference:
        FedProx proximal term anchored at the global weights.
    prototypes:
        ``(num_classes, feature_dim)`` global prototypes; rows may be NaN
        for classes without a prototype yet.  When given with a positive
        ``prototype_weight``, adds
        :math:`\\epsilon\\,\\mathrm{MSE}(R_\\omega(x_i), P^{y_i})` (Eq. 16).
    """

    def loss_builder(m: ClassifierModel, batch) -> Tensor:
        xb, yb = batch
        needs_features = prototypes is not None and prototype_weight > 0.0
        if needs_features:
            logits, feats = m.forward_with_features(Tensor(xb))
        else:
            logits = m(Tensor(xb))
        loss = L.cross_entropy(logits, yb)
        if needs_features:
            targets = prototypes[yb.astype(np.int64)]
            valid = ~np.isnan(targets).any(axis=1)
            if valid.any():
                diff = feats[np.flatnonzero(valid)] - Tensor(targets[valid])
                loss = loss + prototype_weight * (diff**2).mean()
        if prox_mu > 0.0 and prox_reference is not None:
            prox = L.proximal_term(m.named_parameters(), prox_reference, prox_mu)
            if prox is not None:
                loss = loss + prox
        return loss

    return train_with_loss(model, (x, y), loss_builder, config, rng)


def train_distill(
    model: ClassifierModel,
    x: np.ndarray,
    teacher_logits: np.ndarray,
    config: TrainingConfig,
    rng: np.random.Generator,
    kd_weight: float = 0.5,
    pseudo_labels: Optional[np.ndarray] = None,
    temperature: float = 1.0,
    prototypes: Optional[np.ndarray] = None,
    prototype_weight: float = 0.0,
    prototype_labels: Optional[np.ndarray] = None,
) -> float:
    """Distillation training on a public set (paper Eqs. 11–13 and 15).

    The loss is ``kd_weight * KL(teacher ‖ student) + (1 - kd_weight) * CE``
    against ``pseudo_labels`` (if given), plus an optional prototype MSE term
    weighted by ``prototype_weight`` with per-sample targets
    ``prototypes[prototype_labels]``.
    """
    if pseudo_labels is None:
        pseudo_labels = teacher_logits.argmax(axis=1)
    if prototype_labels is None:
        prototype_labels = pseudo_labels

    def loss_builder(m: ClassifierModel, batch) -> Tensor:
        xb, tb, yb, pb = batch
        needs_features = prototypes is not None and prototype_weight > 0.0
        if needs_features:
            logits, feats = m.forward_with_features(Tensor(xb))
        else:
            logits = m(Tensor(xb))
        loss = kd_weight * L.kl_divergence(tb, logits, temperature=temperature)
        if kd_weight < 1.0:
            loss = loss + (1.0 - kd_weight) * L.cross_entropy(logits, yb)
        if needs_features:
            targets = prototypes[pb.astype(np.int64)]
            valid = ~np.isnan(targets).any(axis=1)
            if valid.any():
                diff = feats[np.flatnonzero(valid)] - Tensor(targets[valid])
                loss = loss + prototype_weight * (diff**2).mean()
        return loss

    return train_with_loss(
        model,
        (x, teacher_logits, pseudo_labels, prototype_labels),
        loss_builder,
        config,
        rng,
    )


def evaluate_accuracy(model: ClassifierModel, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)``; NaN on an empty set.

    NaN — not 0.0 — so clients with an empty local test set (singleton
    shards) are excluded from aggregate accuracy instead of dragging it
    down; see :func:`repro.fl.metrics.nan_mean`.
    """
    if len(x) == 0:
        return float("nan")
    return float((model.predict(x) == np.asarray(y)).mean())
