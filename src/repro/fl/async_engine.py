"""Event-driven asynchronous round engine with staleness-aware aggregation.

The synchronous engine (:meth:`~repro.fl.simulation.FederatedAlgorithm.run`)
imposes a barrier: every participant must finish before the server moves.
One straggler therefore stalls the whole federation.  This module replaces
the barrier with an event loop over a **virtual clock**:

- Each *dispatch* hands one client a frozen snapshot of the server state
  (its *version*) and schedules an arrival event at
  ``clock + delay_factor``.  Delays come from the
  :class:`~repro.fl.failures.FaultPlan` (stragglers, seeded jitter), not
  from wall time — tests never sleep, and the event order is a pure
  function of the seed.
- Client work is computed **lazily when its arrival event pops**.  A
  contribution whose snapshot is more than ``max_staleness`` versions old
  is discarded *without being computed* — this is where the real
  wall-clock win over the barrier comes from.
- Contributions buffer until ``buffer_size`` of them have arrived (or the
  pipeline drains); the buffered batch is folded into the server with
  per-contribution staleness discounts ``alpha ** s`` (FedBuff-style; see
  :func:`repro.core.aggregation.staleness_discounted_aggregate`).  Each
  aggregation bumps the server version and counts as one round for
  evaluation/recording purposes.

**Degenerate-mode contract** — with ``max_staleness=0``, a full buffer
(``buffer_size=None``), and no fault plan, this engine replays exactly the
operation sequence of the synchronous engine and produces a bit-identical
:class:`~repro.fl.metrics.RunHistory` (modulo wall-time extras).  The
equivalence is CI-enforced; it holds because the engine shares the sync
loop's record path (``_collect_round_costs`` / ``_record_if_due``), the
participation sampler's draw order, and aggregation rules that short-
circuit to the undiscounted code when every weight is 1.0.

Algorithms opt in by setting ``supports_async = True`` and implementing
the three-method protocol (see :class:`~repro.core.fedpkd.FedPKD`):

- ``async_dispatch_state() -> dict`` — server state a dispatch trains
  against, frozen per version;
- ``async_client_work(participants, snapshot) -> contribution | None`` —
  one client's uplink payload (``None`` = runtime dropout);
- ``async_server_update(contributions, weights, contributors) -> extras``
  — fold one buffer into the server.

Checkpointing: the engine registers itself as ``algo.async_engine`` and
:mod:`repro.fl.checkpoint` persists its state (clock, version, in-flight
dispatches, buffered contributions, dispatch snapshots) alongside the
models, so an interrupted chaos run resumes bit-identically — fault draws
are stateless, so no extra RNG state is needed.  See docs/ASYNC.md.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .failures import FaultPlan
from .metrics import RunHistory

__all__ = ["AsyncRoundEngine", "Dispatch", "EngineStalledError"]

#: Consecutive waves that dispatch zero clients (everyone churned out)
#: before the engine gives up instead of spinning.
_MAX_STALL_WAVES = 64


class EngineStalledError(RuntimeError):
    """The engine cannot make progress: no contribution can ever arrive
    (typically every client has left the cohort with no rejoining)."""


@dataclass
class Dispatch:
    """One in-flight unit of client work."""

    client_id: int
    version: int  # server version of the snapshot it trains against
    seq: int  # global dispatch counter (deterministic tie-break)
    arrival: float  # virtual-clock completion time


class AsyncRoundEngine:
    """Buffered-asynchronous round engine over a virtual clock.

    Parameters
    ----------
    algo:
        A :class:`~repro.fl.simulation.FederatedAlgorithm` with
        ``supports_async = True``.
    max_staleness:
        Contributions older than this many server versions at arrival are
        dropped (and never computed).  0 keeps only same-version work.
    staleness_alpha:
        Discount base: a contribution ``s`` versions old is aggregated
        with weight ``alpha ** s``.
    buffer_size:
        Aggregate once this many contributions have arrived; ``None``
        drains the whole pipeline first (full-barrier degenerate mode).
    fault_plan:
        ``None``, a :class:`~repro.fl.failures.FaultPlan`, a dict, or a
        JSON path (coerced via :meth:`FaultPlan.resolve`).
    """

    name = "async"

    def __init__(
        self,
        algo,
        max_staleness: int = 0,
        staleness_alpha: float = 0.5,
        buffer_size: Optional[int] = None,
        fault_plan=None,
    ) -> None:
        if not getattr(algo, "supports_async", False):
            raise ValueError(
                f"algorithm '{algo.name}' does not implement the async "
                "engine protocol (supports_async is not set)"
            )
        if max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        if not 0.0 < staleness_alpha <= 1.0:
            raise ValueError(
                f"staleness_alpha must be in (0, 1], got {staleness_alpha}"
            )
        if buffer_size is not None and buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.algo = algo
        self.max_staleness = int(max_staleness)
        self.staleness_alpha = float(staleness_alpha)
        self.buffer_size = buffer_size
        self.plan = FaultPlan.resolve(fault_plan)
        # virtual-clock event state -------------------------------------
        self._clock = 0.0
        self._seq = 0
        self._version = int(algo.round_index)
        self._heap: List[Tuple[float, int, Dispatch]] = []
        self._in_flight: set = set()
        self._buffer: List[dict] = []
        # dispatch-time server snapshots, keyed by version and freed once
        # no in-flight dispatch references them
        self._snapshots: Dict[int, dict] = {}
        self._snapshot_refs: Dict[int, int] = {}
        # the checkpoint layer looks this attribute up by name
        algo.async_engine = self

    @classmethod
    def from_config(cls, algo, config) -> "AsyncRoundEngine":
        """Build the engine a :class:`~repro.fl.config.FederationConfig`
        describes (``engine="async"`` plus its knobs)."""
        return cls(
            algo,
            max_staleness=getattr(config, "max_staleness", 0),
            staleness_alpha=getattr(config, "staleness_alpha", 0.5),
            buffer_size=getattr(config, "buffer_size", None),
            fault_plan=getattr(config, "fault_plan", None),
        )

    # ------------------------------------------------------------------
    # convenient handles
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Completed aggregations (== ``algo.round_index`` between rounds)."""
        return self._version

    @property
    def clock(self) -> float:
        """Current virtual time (unit = one nominal client service time)."""
        return self._clock

    @property
    def in_flight(self) -> int:
        return len(self._heap)

    @property
    def _tracer(self):
        return self.algo.tracer

    @property
    def _metrics(self):
        return self.algo.metrics

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _take_snapshot_ref(self, version: int) -> None:
        if version not in self._snapshots:
            self._snapshots[version] = self.algo.async_dispatch_state()
            self._snapshot_refs[version] = 0
        self._snapshot_refs[version] += 1

    def _drop_snapshot_ref(self, version: int) -> dict:
        snapshot = self._snapshots[version]
        self._snapshot_refs[version] -= 1
        if self._snapshot_refs[version] <= 0:
            del self._snapshots[version]
            del self._snapshot_refs[version]
        return snapshot

    def _dispatch_wave(self) -> int:
        """Dispatch fresh work to every idle, available sampled client.

        Draws the participation sampler exactly once — the same RNG
        cadence as one synchronous round — so the degenerate mode sees
        identical participant sets.
        """
        algo = self.algo
        version = self._version
        dispatched = 0
        for cid in algo.federation.participation.sample():
            if cid in self._in_flight:
                continue  # still working against an older snapshot
            if algo.federation.client_train_size(cid) == 0:
                # empty derived shard: never dispatched, logged like the
                # sync engine's participation guard (O(1) under a
                # registry — no client is materialised to find out)
                algo.dropout_log.record(
                    algo.round_index + 1, cid, "async_dispatch", "empty_shard"
                )
                continue
            if self.plan is not None and not self.plan.available(cid, version):
                # churn: the client has left the cohort at this version
                algo.dropout_log.record(
                    algo.round_index + 1, cid, "async_dispatch", "injected_leave"
                )
                self._publish_fault("engine/churn", cid, version, "injected_leave")
                continue
            delay = (
                self.plan.delay_factor(cid, version)
                if self.plan is not None
                else 1.0
            )
            dispatch = Dispatch(
                client_id=cid,
                version=version,
                seq=self._seq,
                arrival=self._clock + delay,
            )
            self._seq += 1
            self._take_snapshot_ref(version)
            heapq.heappush(self._heap, (dispatch.arrival, dispatch.seq, dispatch))
            self._in_flight.add(cid)
            dispatched += 1
            if self.algo.obs.enabled:
                self._tracer.event(
                    "engine/dispatch",
                    scope="engine",
                    attrs={
                        "client_id": cid,
                        "version": version,
                        "arrival": dispatch.arrival,
                        "delay": delay,
                    },
                )
        if self._metrics.enabled:
            self._metrics.counter("engine/waves").inc()
        return dispatched

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _publish_fault(
        self, event: str, client_id: int, version: int, cause: str
    ) -> None:
        if self.algo.obs.enabled:
            self._tracer.event(
                event,
                scope="engine",
                attrs={"client_id": client_id, "version": version, "cause": cause},
            )
        if self._metrics.enabled:
            self._metrics.counter("engine/injected_faults").inc()

    def _process_next_event(self) -> None:
        """Pop the earliest arrival; compute its contribution lazily."""
        algo = self.algo
        arrival, _, dispatch = heapq.heappop(self._heap)
        self._clock = max(self._clock, arrival)
        self._in_flight.discard(dispatch.client_id)
        snapshot = self._drop_snapshot_ref(dispatch.version)
        staleness = self._version - dispatch.version
        cause = (
            self.plan.crash_cause(dispatch.client_id, dispatch.version)
            if self.plan is not None
            else None
        )
        if cause is not None:
            # the dispatch died mid-flight: no work, no contribution
            algo.dropout_log.record(
                algo.round_index + 1, dispatch.client_id, "async_work", cause
            )
            self._publish_fault(
                "engine/fault", dispatch.client_id, dispatch.version, cause
            )
            return
        if staleness > self.max_staleness:
            # too stale to use — and, because compute is lazy, never paid for
            if algo.obs.enabled:
                self._tracer.event(
                    "engine/stale_drop",
                    scope="engine",
                    attrs={
                        "client_id": dispatch.client_id,
                        "version": dispatch.version,
                        "staleness": staleness,
                    },
                )
            if self._metrics.enabled:
                self._metrics.counter("engine/dropped_contributions").inc()
            return
        participants = [algo.clients[dispatch.client_id]]
        contribution = algo.async_client_work(participants, snapshot)
        if contribution is None:
            # runtime dropout (already recorded via map_clients)
            return
        self._buffer.append(
            {
                "client_id": dispatch.client_id,
                "version": dispatch.version,
                "data": contribution,
            }
        )
        if staleness > 0 and self._metrics.enabled:
            self._metrics.counter("engine/stale_contributions").inc()

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _buffer_full(self) -> bool:
        return (
            self.buffer_size is not None
            and len(self._buffer) >= self.buffer_size
        )

    def _aggregate_buffer(self) -> Dict[str, float]:
        algo = self.algo
        weights = [
            float(self.staleness_alpha ** (self._version - entry["version"]))
            for entry in self._buffer
        ]
        extras = algo.async_server_update(
            [entry["data"] for entry in self._buffer],
            weights,
            [algo.clients[entry["client_id"]] for entry in self._buffer],
        )
        max_staleness_seen = max(
            self._version - entry["version"] for entry in self._buffer
        )
        extras = dict(extras or {})
        self._buffer = []
        self._version += 1
        if self._metrics.enabled:
            self._metrics.gauge("engine/version").set(self._version)
            self._metrics.gauge("engine/clock").set(self._clock)
            self._metrics.gauge("engine/max_staleness_aggregated").set(
                max_staleness_seen
            )
        return extras

    def _run_engine_round(self) -> Dict[str, float]:
        """Gather until the buffer triggers, aggregate once, refill."""
        stalls = 0
        while True:
            if not self._heap and not self._buffer:
                if self._dispatch_wave() == 0:
                    stalls += 1
                    if stalls > _MAX_STALL_WAVES:
                        raise EngineStalledError(
                            "async engine stalled: no dispatchable client in "
                            f"{stalls} consecutive waves at version "
                            f"{self._version} (did every client leave the "
                            "cohort with no rejoining?)"
                        )
                    continue
                stalls = 0
            while self._heap and not self._buffer_full():
                self._process_next_event()
            if self._buffer_full() or (self._buffer and not self._heap):
                break
            # pipeline drained with an empty buffer (everything crashed or
            # went stale) — dispatch again
        extras = self._aggregate_buffer()
        if self._metrics.enabled:
            self._metrics.gauge("engine/in_flight").set(len(self._heap))
        # keep the pipeline full for the next round: same sampler cadence
        # as the sync engine's per-round active_clients() draw
        self._dispatch_wave()
        return extras

    # ------------------------------------------------------------------
    # the run loop — mirrors FederatedAlgorithm.run() record-for-record
    # ------------------------------------------------------------------
    def run(
        self,
        rounds: int,
        eval_every: int = 1,
        history: Optional[RunHistory] = None,
        verbose: bool = False,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ) -> RunHistory:
        """Run ``rounds`` aggregations, recording metrics.

        The signature, autosave behaviour, and record path are identical
        to :meth:`~repro.fl.simulation.FederatedAlgorithm.run` — a round
        here is one buffered aggregation.
        """
        algo = self.algo
        if checkpoint_every is None:
            checkpoint_every = getattr(algo.federation, "checkpoint_every", 0)
        if checkpoint_path is None:
            checkpoint_path = getattr(algo.federation, "checkpoint_path", None)
        autosave = bool(
            checkpoint_every and checkpoint_every > 0 and checkpoint_path
        )
        if autosave:
            from .checkpoint import save_checkpoint
        if history is None:
            history = RunHistory(
                algo.name, dataset=algo.bundle.name, config={"rounds": rounds}
            )
        tracer = algo.tracer
        with algo.obs.profile_session(), tracer.span(
            "run",
            scope="run",
            attrs={
                "algorithm": algo.name,
                "rounds": rounds,
                "eval_every": eval_every,
                "start_round": algo.round_index,
                "num_clients": algo.federation.num_clients,
                "executor": algo.executor.name,
                "engine": self.name,
                "max_staleness": self.max_staleness,
                "staleness_alpha": self.staleness_alpha,
                "buffer_size": self.buffer_size,
                "fault_plan": self.plan.describe() if self.plan else None,
            },
        ):
            for r in range(rounds):
                start = time.perf_counter()
                with tracer.span("round", scope="round") as round_span:
                    round_span.set_attr("round", algo.round_index + 1)
                    round_span.set_attr("engine", self.name)
                    extras = self._run_engine_round()
                algo.round_index += 1
                algo._collect_round_costs(time.perf_counter() - start)
                final_round = r == rounds - 1
                algo._record_if_due(
                    history, extras, final_round, eval_every, verbose
                )
                if autosave and (
                    final_round or algo.round_index % checkpoint_every == 0
                ):
                    save_checkpoint(algo, checkpoint_path, history=history)
                # round boundary: evict the registry's live set back to
                # its budget (in-flight dispatches hold no client refs —
                # arrival-time compute re-materialises on demand)
                algo.federation.settle_clients()
        algo.obs.publish_profile()
        algo.obs.export_metrics()
        return history

    # ------------------------------------------------------------------
    # exact-resume state (persisted by repro.fl.checkpoint)
    # ------------------------------------------------------------------
    def align_to(self, round_index: int) -> None:
        """Adopt a *sync* checkpoint's round counter.

        A sync checkpoint carries no pipeline, so resuming it under the
        async engine is exact as long as the engine starts empty at the
        checkpoint's version.
        """
        if self._heap or self._buffer:
            raise ValueError(
                "cannot align a non-empty async-engine pipeline to a sync "
                "checkpoint"
            )
        self._version = int(round_index)

    def state_dict(self) -> dict:
        """JSON-serialisable engine state (arrays go via state_arrays)."""
        return {
            "clock": float(self._clock),
            "seq": int(self._seq),
            "version": int(self._version),
            "in_flight": [
                {
                    "client_id": d.client_id,
                    "version": d.version,
                    "seq": d.seq,
                    "arrival": d.arrival,
                }
                for _, _, d in sorted(self._heap)
            ],
            "buffer": [
                {
                    "client_id": entry["client_id"],
                    "version": entry["version"],
                    "keys": sorted(entry["data"]),
                }
                for entry in self._buffer
            ],
            "snapshot_versions": sorted(self._snapshots),
            "config": {
                "max_staleness": self.max_staleness,
                "staleness_alpha": self.staleness_alpha,
                "buffer_size": self.buffer_size,
                "fault_plan": self.plan.to_dict() if self.plan else None,
            },
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Buffered contributions and dispatch snapshots, as npz arrays."""
        arrays: Dict[str, np.ndarray] = {}
        for i, entry in enumerate(self._buffer):
            for key, value in entry["data"].items():
                arrays[f"buffer{i}::{key}"] = np.asarray(value)
        for version, snapshot in self._snapshots.items():
            for key, value in snapshot.items():
                if value is not None:
                    arrays[f"snapshot{version}::{key}"] = np.asarray(value)
        return arrays

    def load_state_dict(
        self, state: dict, arrays: Dict[str, np.ndarray]
    ) -> None:
        """Inverse of :meth:`state_dict` + :meth:`state_arrays`.

        Raises ``ValueError`` when the checkpoint was produced under
        different engine knobs — a silent mismatch would break the
        exact-resume contract (different buffer triggers, different
        discounts) without any visible error.
        """
        saved = state.get("config", {})
        live = {
            "max_staleness": self.max_staleness,
            "staleness_alpha": self.staleness_alpha,
            "buffer_size": self.buffer_size,
            "fault_plan": self.plan.to_dict() if self.plan else None,
        }
        for key, value in live.items():
            if key in saved and saved[key] != value:
                raise ValueError(
                    f"async-engine checkpoint mismatch: '{key}' was "
                    f"{saved[key]!r} at save time but is {value!r} now; "
                    "resume with the original engine configuration"
                )
        self._clock = float(state["clock"])
        self._seq = int(state["seq"])
        self._version = int(state["version"])
        self._heap = []
        self._in_flight = set()
        self._snapshots = {}
        self._snapshot_refs = {}
        for version in state.get("snapshot_versions", []):
            prefix = f"snapshot{version}::"
            self._snapshots[int(version)] = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            self._snapshot_refs[int(version)] = 0
        for raw in state["in_flight"]:
            dispatch = Dispatch(
                client_id=int(raw["client_id"]),
                version=int(raw["version"]),
                seq=int(raw["seq"]),
                arrival=float(raw["arrival"]),
            )
            heapq.heappush(
                self._heap, (dispatch.arrival, dispatch.seq, dispatch)
            )
            self._in_flight.add(dispatch.client_id)
            if dispatch.version not in self._snapshot_refs:
                raise ValueError(
                    f"async-engine checkpoint is missing the version-"
                    f"{dispatch.version} snapshot its in-flight dispatches "
                    "reference"
                )
            self._snapshot_refs[dispatch.version] += 1
        self._buffer = []
        for i, raw in enumerate(state.get("buffer", [])):
            prefix = f"buffer{i}::"
            self._buffer.append(
                {
                    "client_id": int(raw["client_id"]),
                    "version": int(raw["version"]),
                    "data": {
                        key[len(prefix):]: value
                        for key, value in arrays.items()
                        if key.startswith(prefix)
                    },
                }
            )
