"""Checkpointing: persist and resume a federated training run.

Long FL runs (the paper's 70 rounds) need restartability.  A checkpoint
captures every client model, the server model, the round counter, and any
algorithm-specific state (e.g. FedPKD's global prototypes) in a single
``.npz`` file.

Usage::

    save_checkpoint(algo, "run.npz")
    ...
    algo2 = build_algorithm("fedpkd", fresh_federation)
    load_checkpoint(algo2, "run.npz")   # weights + round + prototypes restored
    algo2.run(rounds=remaining)
"""

from __future__ import annotations

import io
import os
from typing import Dict, Optional

import numpy as np

from .simulation import FederatedAlgorithm

__all__ = ["save_checkpoint", "load_checkpoint", "algorithm_state", "load_algorithm_state"]

_META_PREFIX = "__meta__"
_CLIENT_PREFIX = "client{cid}::"
_SERVER_PREFIX = "server::"
_ALGO_PREFIX = "algo::"


def algorithm_state(algo: FederatedAlgorithm) -> Dict[str, np.ndarray]:
    """Extract algorithm-specific arrays worth persisting.

    Currently understands FedPKD-style ``global_prototypes``; other
    algorithms contribute nothing (their state is entirely in the models).
    """
    state: Dict[str, np.ndarray] = {}
    protos = getattr(algo, "global_prototypes", None)
    if protos is not None:
        state["global_prototypes"] = np.asarray(protos)
    return state


def load_algorithm_state(algo: FederatedAlgorithm, state: Dict[str, np.ndarray]) -> None:
    """Inverse of :func:`algorithm_state`."""
    if "global_prototypes" in state and hasattr(algo, "global_prototypes"):
        algo.global_prototypes = state["global_prototypes"].copy()


def save_checkpoint(algo: FederatedAlgorithm, path: str) -> None:
    """Write the algorithm's full training state to ``path`` (npz)."""
    arrays: Dict[str, np.ndarray] = {
        f"{_META_PREFIX}round_index": np.array(algo.round_index, dtype=np.int64),
        f"{_META_PREFIX}num_clients": np.array(len(algo.clients), dtype=np.int64),
    }
    for client in algo.clients:
        prefix = _CLIENT_PREFIX.format(cid=client.client_id)
        for key, value in client.model.state_dict().items():
            arrays[prefix + key] = value
    if algo.server.has_model:
        for key, value in algo.server.model.state_dict().items():
            arrays[_SERVER_PREFIX + key] = value
    for key, value in algorithm_state(algo).items():
        arrays[_ALGO_PREFIX + key] = value
    with open(path, "wb") as f:
        np.savez(f, **arrays)


def load_checkpoint(algo: FederatedAlgorithm, path: str) -> int:
    """Restore training state saved by :func:`save_checkpoint`.

    The federation must be structurally identical (same client count and
    model architectures).  Returns the restored round index.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files}

    saved_clients = int(arrays[f"{_META_PREFIX}num_clients"])
    if saved_clients != len(algo.clients):
        raise ValueError(
            f"checkpoint has {saved_clients} clients, federation has "
            f"{len(algo.clients)}"
        )

    for client in algo.clients:
        prefix = _CLIENT_PREFIX.format(cid=client.client_id)
        state = {
            key[len(prefix):]: value
            for key, value in arrays.items()
            if key.startswith(prefix)
        }
        client.model.load_state_dict(state)

    server_state = {
        key[len(_SERVER_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_SERVER_PREFIX)
    }
    if server_state:
        if not algo.server.has_model:
            raise ValueError("checkpoint contains a server model; federation has none")
        algo.server.model.load_state_dict(server_state)

    algo_state = {
        key[len(_ALGO_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_ALGO_PREFIX)
    }
    load_algorithm_state(algo, algo_state)

    algo.round_index = int(arrays[f"{_META_PREFIX}round_index"])
    return algo.round_index
