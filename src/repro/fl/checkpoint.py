"""Crash-safe, versioned, exact-resume checkpointing.

The paper's headline numbers are *cumulative* (MB-to-target-accuracy, Table
I / Fig. 3), so a resumed run must be **bit-identical** to an uninterrupted
one — the same determinism contract the parallel runtime already honours.
A checkpoint therefore captures everything that carries across rounds:

- every client model and the (optional) server model;
- per-client RNG streams, the server/algorithm RNGs, and the
  :class:`~repro.fl.failures.ParticipationSampler` RNG;
- the :class:`~repro.fl.channel.CommChannel` ledgers and round marks
  (zeroing these silently corrupts every cumulative-MB result);
- the :class:`~repro.fl.metrics.RunHistory` recorded so far and the
  :class:`~repro.fl.failures.DropoutLog`;
- algorithm-specific cross-round state via the
  :meth:`~repro.fl.simulation.FederatedAlgorithm.extra_state` hook
  (FedPKD / FedProto global prototypes, ...).

Writes are atomic (tmp file + ``os.replace``), so an interrupted save
leaves the previous checkpoint intact.  Files carry a format version and a
config/architecture fingerprint (per-client parameter keys and shapes)
validated on load; a corrupt, truncated, or mismatched file raises
:class:`CheckpointError` with a precise message, never a numpy traceback.

Usage::

    save_checkpoint(algo, "run.ckpt.npz", history=history)
    ...
    algo2 = build_algorithm("fedpkd", fresh_federation)
    done = load_checkpoint(algo2, "run.ckpt.npz")
    history = load_history("run.ckpt.npz")
    algo2.run(rounds=total - done, history=history)   # bit-identical tail

or let the round engine autosave via ``algo.run(..., checkpoint_every=5,
checkpoint_path="run.ckpt.npz")`` (see docs/CHECKPOINT.md).
"""

from __future__ import annotations

import copy
import json
import os
import time
from typing import Any, Dict, Optional

import numpy as np

from .metrics import RunHistory
from .simulation import FederatedAlgorithm

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_history",
    "read_checkpoint_meta",
    "algorithm_state",
    "load_algorithm_state",
]

#: Bump whenever the on-disk layout changes.  Version 1 was the legacy
#: weights-only format (no RNG/channel/history state); it is refused on
#: load because resuming from it would violate the exact-resume contract.
#: Version 2 added full RNG/channel/history/engine state.  Version 3 adds
#: the bounded-registry layout: federations running a bounded
#: :class:`~repro.fl.registry.ClientRegistry` persist only the *mutated*
#: clients (plus a cycle-compressed fingerprint), keeping checkpoints
#: O(clients touched), not O(population); v2 files still load.
CHECKPOINT_FORMAT_VERSION = 3

_META_VERSION = "__meta__format_version"
_META_JSON = "__meta__json"
_CLIENT_PREFIX = "client{cid}::"
_SERVER_PREFIX = "server::"
_ALGO_PREFIX = "algo::"
_ENGINE_PREFIX = "engine::"


class CheckpointError(ValueError):
    """A checkpoint file is corrupt, unversioned, or does not match the
    federation it is being loaded into."""


# ----------------------------------------------------------------------
# algorithm-specific state (delegates to the per-algorithm hook)
# ----------------------------------------------------------------------
def algorithm_state(algo: FederatedAlgorithm) -> Dict[str, np.ndarray]:
    """Arrays the algorithm carries across rounds (its ``extra_state``)."""
    return {key: np.asarray(value) for key, value in algo.extra_state().items()}


def load_algorithm_state(
    algo: FederatedAlgorithm, state: Dict[str, np.ndarray]
) -> None:
    """Inverse of :func:`algorithm_state`."""
    algo.load_extra_state(state)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _json_default(value: Any):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"unserialisable checkpoint metadata of type {type(value)!r}")


def _rng_state(rng: np.random.Generator) -> dict:
    return copy.deepcopy(rng.bit_generator.state)


def _set_rng_state(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = copy.deepcopy(state)


def _model_fingerprint(model) -> Dict[str, list]:
    return {
        key: list(np.asarray(value).shape)
        for key, value in model.state_dict().items()
    }


def _bounded_registry(algo: FederatedAlgorithm):
    """The federation's ClientRegistry when it is bounded, else ``None``.

    Unbounded registries (``max_live_clients=None``, the degenerate mode)
    keep the historical full-population checkpoint layout — every client
    is materialised anyway, and the small-cohort format/validation
    behaviour stays byte-for-byte what it always was.
    """
    registry = getattr(algo.federation, "registry", None)
    if registry is not None and registry.bounded:
        return registry
    return None


def _fingerprint(algo: FederatedAlgorithm) -> dict:
    return {
        "algorithm": algo.name,
        "clients": {
            str(client.client_id): {
                "model_name": client.model_name,
                "params": _model_fingerprint(client.model),
            }
            for client in algo.clients
        },
        "server": (
            _model_fingerprint(algo.server.model) if algo.server.has_model else None
        ),
    }


def _registry_fingerprint(algo: FederatedAlgorithm, registry) -> dict:
    """Cycle-compressed fingerprint: O(distinct models), not O(population).

    ``model_cycle`` + ``num_clients`` determine every client's model name;
    parameter shapes are recorded once per distinct name (shape metadata
    is seed-independent), so validation never materialises a client.
    """
    cycle = registry.model_cycle
    return {
        "algorithm": algo.name,
        "registry": {
            "num_clients": len(registry),
            "model_cycle": cycle,
            "params_by_model": {
                name: registry.probe_model_fingerprint(name)
                for name in sorted(set(cycle))
            },
        },
        "server": (
            _model_fingerprint(algo.server.model) if algo.server.has_model else None
        ),
    }


def _validate_server_fingerprint(saved: dict, algo: FederatedAlgorithm) -> None:
    if saved["server"] is not None and not algo.server.has_model:
        raise CheckpointError(
            "checkpoint contains a server model; federation has none"
        )
    if saved["server"] is None and algo.server.has_model:
        raise CheckpointError(
            "federation has a server model; checkpoint contains none"
        )
    if saved["server"] is not None:
        live_server = _model_fingerprint(algo.server.model)
        for key, shape in saved["server"].items():
            if key not in live_server or list(shape) != list(live_server[key]):
                raise CheckpointError(
                    f"server parameter '{key}': checkpoint shape "
                    f"{tuple(shape)} vs federation "
                    f"{tuple(live_server.get(key, ()))}"
                )


def _validate_registry_fingerprint(
    saved: dict, algo: FederatedAlgorithm, path: str
) -> None:
    registry = getattr(algo.federation, "registry", None)
    if registry is None:
        raise CheckpointError(
            f"checkpoint '{path}' was written by a bounded client registry "
            "(compact layout); load it into a federation built with "
            "build_federation, not a hand-assembled client list"
        )
    reg = saved["registry"]
    if int(reg["num_clients"]) != len(registry):
        raise CheckpointError(
            f"checkpoint has {reg['num_clients']} clients, federation has "
            f"{len(registry)}"
        )
    if [str(n) for n in reg["model_cycle"]] != registry.model_cycle:
        raise CheckpointError(
            f"checkpoint model cycle {reg['model_cycle']} does not match "
            f"the federation's {registry.model_cycle}"
        )
    for name, saved_params in reg["params_by_model"].items():
        live_params = registry.probe_model_fingerprint(name)
        for key in saved_params:
            if key not in live_params or list(saved_params[key]) != list(
                live_params[key]
            ):
                raise CheckpointError(
                    f"model '{name}' parameter '{key}': checkpoint shape "
                    f"{tuple(saved_params[key])} vs federation shape "
                    f"{tuple(live_params.get(key, ()))}"
                )
    _validate_server_fingerprint(saved, algo)


def _validate_fingerprint(meta: dict, algo: FederatedAlgorithm, path: str) -> None:
    saved = meta["fingerprint"]
    if saved["algorithm"] != algo.name:
        raise CheckpointError(
            f"checkpoint '{path}' was written by algorithm "
            f"'{saved['algorithm']}', cannot resume '{algo.name}'"
        )
    if "registry" in saved:
        _validate_registry_fingerprint(saved, algo, path)
        return
    saved_clients = saved["clients"]
    if len(saved_clients) != len(algo.clients):
        raise CheckpointError(
            f"checkpoint has {len(saved_clients)} clients, federation has "
            f"{len(algo.clients)}"
        )
    for client in algo.clients:
        cid = str(client.client_id)
        if cid not in saved_clients:
            raise CheckpointError(
                f"checkpoint has no state for client {client.client_id}"
            )
        saved_params = saved_clients[cid]["params"]
        live_params = _model_fingerprint(client.model)
        saved_name = saved_clients[cid].get("model_name")
        hint = (
            f" (checkpoint model '{saved_name}', federation model "
            f"'{client.model_name}')"
            if saved_name != client.model_name
            else ""
        )
        for key in saved_params:
            if key not in live_params:
                raise CheckpointError(
                    f"client {client.client_id}: checkpoint parameter '{key}' "
                    f"missing from the federation's model{hint}"
                )
            if list(saved_params[key]) != list(live_params[key]):
                raise CheckpointError(
                    f"client {client.client_id} parameter '{key}': checkpoint "
                    f"shape {tuple(saved_params[key])} vs federation shape "
                    f"{tuple(live_params[key])}{hint}"
                )
        for key in live_params:
            if key not in saved_params:
                raise CheckpointError(
                    f"client {client.client_id}: federation parameter '{key}' "
                    f"missing from the checkpoint{hint}"
                )
    _validate_server_fingerprint(saved, algo)


def _publish_io(
    algo: FederatedAlgorithm, op: str, path: str, dur_s: float
) -> None:
    """Record one checkpoint save/load in the algorithm's observability
    sinks (no-op when observability is disabled)."""
    obs = getattr(algo, "obs", None)
    if obs is None or not obs.enabled:
        return
    size = os.path.getsize(path) if os.path.exists(path) else 0
    obs.tracer.event(
        f"checkpoint/{op}",
        scope="checkpoint",
        attrs={
            "path": path,
            "round": int(algo.round_index),
            "dur_s": dur_s,
            "bytes": size,
        },
    )
    if obs.metrics.enabled:
        obs.metrics.counter(f"checkpoint/{op}s").inc()
        obs.metrics.histogram(f"checkpoint/{op}_seconds").observe(dur_s)


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_checkpoint(
    algo: FederatedAlgorithm, path: str, history: Optional[RunHistory] = None
) -> None:
    """Atomically write the algorithm's full training state to ``path``.

    The file is an ``.npz`` archive (model/extra-state arrays plus one JSON
    metadata blob).  Passing ``history`` persists the run records so far, so
    a resumed run reproduces the complete uninterrupted history.  The write
    goes to a temporary sibling file first and is moved into place with
    ``os.replace``; a crash mid-write leaves any previous checkpoint at
    ``path`` untouched.

    Under a *bounded* client registry (``max_live_clients``), only the
    clients whose state diverged from their seed derivation are written
    (read from the live set or the spill store — no re-materialisation),
    so a 100k-client cohort run checkpoints in O(clients touched).
    Exact-resume still holds: untouched clients are pure functions of
    their seeds and re-derive identically.
    """
    arrays: Dict[str, np.ndarray] = {}
    registry = _bounded_registry(algo)
    client_rng: Dict[str, dict] = {}
    registry_meta = None
    if registry is not None:
        dirty = registry.dirty_ids()
        for cid in dirty:
            state, rng_state = registry.client_state(cid)
            prefix = _CLIENT_PREFIX.format(cid=cid)
            for key, value in state.items():
                arrays[prefix + key] = np.asarray(value)
            client_rng[str(cid)] = rng_state
        registry_meta = {"dirty": dirty}
        fingerprint = _registry_fingerprint(algo, registry)
    else:
        for client in algo.clients:
            prefix = _CLIENT_PREFIX.format(cid=client.client_id)
            for key, value in client.model.state_dict().items():
                arrays[prefix + key] = np.asarray(value)
            client_rng[str(client.client_id)] = client.rng_state()
        fingerprint = _fingerprint(algo)
    if algo.server.has_model:
        for key, value in algo.server.model.state_dict().items():
            arrays[_SERVER_PREFIX + key] = np.asarray(value)
    for key, value in algorithm_state(algo).items():
        arrays[_ALGO_PREFIX + key] = value
    # async-engine pipeline state (in-flight dispatches, buffered
    # contributions, dispatch snapshots) — present only when an
    # AsyncRoundEngine is attached, absent for sync-engine checkpoints
    engine = getattr(algo, "async_engine", None)
    engine_meta = None
    if engine is not None:
        for key, value in engine.state_arrays().items():
            arrays[_ENGINE_PREFIX + key] = np.asarray(value)
        engine_meta = engine.state_dict()

    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "round_index": int(algo.round_index),
        "num_clients": len(algo.clients),
        "fingerprint": fingerprint,
        "registry": registry_meta,
        "rng": {
            "algorithm": _rng_state(algo.rng),
            "server": _rng_state(algo.server.rng),
            "participation": algo.federation.participation.state_dict(),
            "clients": client_rng,
        },
        "channel": algo.channel.state_dict(),
        "dropout_log": algo.dropout_log.state_dict(),
        "history": history.to_dict() if history is not None else None,
        # partially accumulated record extras (stage times / wall time /
        # dropouts since the last RoundRecord) — without this, a save that
        # lands between eval_every boundaries silently drops them on resume
        "pending": algo.pending_state(),
        "engine": engine_meta,
    }
    blob = json.dumps(meta, default=_json_default).encode("utf-8")
    arrays[_META_JSON] = np.frombuffer(blob, dtype=np.uint8)
    arrays[_META_VERSION] = np.array(CHECKPOINT_FORMAT_VERSION, dtype=np.int64)

    start = time.perf_counter()
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as f:
            np.savez(f, **arrays)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
    _publish_io(algo, "save", path, time.perf_counter() - start)


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _read_archive(path: str):
    """Read and sanity-check a checkpoint; returns ``(arrays, meta)``."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
    except Exception as exc:
        raise CheckpointError(
            f"'{path}' is not a readable checkpoint (corrupt or truncated "
            f"file): {exc}"
        ) from None
    if _META_VERSION not in arrays or _META_JSON not in arrays:
        raise CheckpointError(
            f"'{path}' carries no format version — it is not a checkpoint "
            f"written by this format (>= v{CHECKPOINT_FORMAT_VERSION}); "
            "legacy weights-only files cannot be resumed exactly"
        )
    version = int(arrays[_META_VERSION])
    if version > CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"'{path}' has format version {version}; this build reads up to "
            f"v{CHECKPOINT_FORMAT_VERSION}"
        )
    try:
        meta = json.loads(arrays[_META_JSON].tobytes().decode("utf-8"))
    except Exception as exc:
        raise CheckpointError(
            f"'{path}' has an unreadable metadata block: {exc}"
        ) from None
    return arrays, meta


def read_checkpoint_meta(path: str) -> dict:
    """Return a checkpoint's metadata (round, fingerprint, ...) without
    touching any model weights."""
    _, meta = _read_archive(path)
    return meta


def load_history(path: str) -> Optional[RunHistory]:
    """Return the :class:`RunHistory` stored in a checkpoint, if any."""
    _, meta = _read_archive(path)
    payload = meta.get("history")
    return RunHistory.from_dict(payload) if payload else None


def load_checkpoint(algo: FederatedAlgorithm, path: str) -> int:
    """Restore training state saved by :func:`save_checkpoint`.

    Validates the format version and the architecture fingerprint (client
    count, per-client parameter keys and shapes) *before* mutating anything,
    then restores model weights, every RNG stream, the communication
    ledgers, the dropout log, and algorithm extra state.  Returns the
    restored round index.
    """
    start = time.perf_counter()
    arrays, meta = _read_archive(path)
    _validate_fingerprint(meta, algo, path)

    rng_meta = meta["rng"]
    registry_meta = meta.get("registry")
    if registry_meta is not None:
        # compact bounded-registry layout: only mutated clients were saved.
        # Reset the registry (derived clients and spilled shards from any
        # prior activity are stale) and adopt the saved states — applied
        # in place when live, written straight to the spill store when
        # not, so nothing is materialised that was not already.
        registry = algo.federation.registry
        registry.reset()
        for cid in registry_meta["dirty"]:
            prefix = _CLIENT_PREFIX.format(cid=cid)
            state = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            registry.restore_client_state(
                int(cid), state, rng_meta["clients"][str(cid)]
            )
    else:
        for client in algo.clients:
            prefix = _CLIENT_PREFIX.format(cid=client.client_id)
            state = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            client.model.load_state_dict(state)

    if algo.server.has_model:
        server_state = {
            key[len(_SERVER_PREFIX):]: value
            for key, value in arrays.items()
            if key.startswith(_SERVER_PREFIX)
        }
        algo.server.model.load_state_dict(server_state)

    algo_state = {
        key[len(_ALGO_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_ALGO_PREFIX)
    }
    load_algorithm_state(algo, algo_state)

    _set_rng_state(algo.rng, rng_meta["algorithm"])
    _set_rng_state(algo.server.rng, rng_meta["server"])
    algo.federation.participation.load_state_dict(rng_meta["participation"])
    if registry_meta is None:
        for client in algo.clients:
            client.set_rng_state(rng_meta["clients"][str(client.client_id)])

    algo.channel.load_state_dict(meta["channel"])
    algo.dropout_log.load_state_dict(meta["dropout_log"])
    algo.load_pending_state(meta.get("pending"))

    # async-engine state.  An async checkpoint carries in-flight work and
    # an advanced participation stream — resuming it with the sync engine
    # would silently diverge, so that direction is refused.  The converse
    # (sync checkpoint into an async engine) is exact: the engine simply
    # starts with an empty pipeline, which is the degenerate sync state.
    engine = getattr(algo, "async_engine", None)
    engine_meta = meta.get("engine")
    if engine_meta is not None and engine is None:
        raise CheckpointError(
            f"checkpoint '{path}' carries async-engine state (in-flight "
            "dispatches / buffered contributions); attach an "
            "AsyncRoundEngine (engine='async') before loading — resuming "
            "it synchronously would drop in-flight work and diverge"
        )
    if engine is not None and engine_meta is not None:
        engine_arrays = {
            key[len(_ENGINE_PREFIX):]: value
            for key, value in arrays.items()
            if key.startswith(_ENGINE_PREFIX)
        }
        try:
            engine.load_state_dict(engine_meta, engine_arrays)
        except ValueError as exc:
            raise CheckpointError(str(exc)) from None
    elif engine is not None:
        engine.align_to(int(meta["round_index"]))

    algo.round_index = int(meta["round_index"])
    _publish_io(algo, "load", path, time.perf_counter() - start)
    return algo.round_index
