"""Serial/parallel equivalence and fault tolerance of the runtime.

The headline guarantee of :mod:`repro.runtime` is that a parallel run is
*bit-identical* to a serial one: accuracies, per-client accuracies, and
communication bytes must match exactly (only the ``time/*`` extras may
differ).  The second guarantee is that a stalled or killed worker degrades
to a per-round dropout instead of aborting the run.
"""

import os
import time

import pytest

import repro.runtime.worker as worker_mod
from repro.algorithms import build_algorithm
from repro.runtime import (
    ClientTask,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fl import FederationConfig

from ..conftest import make_tiny_federation


def _run(bundle, algorithm, executor, server_model, rounds=2, **cfg_kwargs):
    fed = make_tiny_federation(
        bundle,
        num_clients=3,
        server_model=server_model,
        executor=executor,
        **cfg_kwargs,
    )
    algo = build_algorithm(algorithm, fed, seed=0, epoch_scale=0.2)
    try:
        history = algo.run(rounds, eval_every=1)
    finally:
        fed.close()
    return history, algo


def _comparable_extras(record):
    return {k: v for k, v in record.extras.items() if not k.startswith("time/")}


@pytest.fixture
def fault_hook():
    """Install a worker fault hook; always uninstalled afterwards."""

    def install(hook):
        worker_mod.FAULT_HOOK = hook

    yield install
    worker_mod.FAULT_HOOK = None


class TestFactory:
    def test_default_is_serial(self):
        config = FederationConfig(num_clients=2)
        assert isinstance(make_executor(config), SerialExecutor)

    def test_parallel_from_config(self):
        config = FederationConfig(
            num_clients=2, executor="parallel", max_workers=2, task_timeout_s=5.0
        )
        executor = make_executor(config)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 2
        assert executor.task_timeout_s == 5.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FederationConfig(num_clients=2, executor="threads")

    def test_task_method_whitelist(self):
        with pytest.raises(ValueError):
            ClientTask(client_id=0, method="__reduce__", kwargs={})


class TestEquivalence:
    @pytest.mark.parametrize(
        "algorithm,server_model",
        [("fedavg", "mlp_small"), ("fedpkd", "mlp_medium")],
    )
    def test_parallel_matches_serial_bit_for_bit(
        self, tiny_bundle, algorithm, server_model
    ):
        serial, _ = _run(tiny_bundle, algorithm, "serial", server_model)
        parallel, _ = _run(
            tiny_bundle, algorithm, "parallel", server_model, max_workers=2
        )
        assert len(serial.records) == len(parallel.records) == 2
        for rs, rp in zip(serial.records, parallel.records):
            assert rs.server_acc == rp.server_acc
            assert rs.client_accs == rp.client_accs
            assert rs.comm_uplink_bytes == rp.comm_uplink_bytes
            assert rs.comm_downlink_bytes == rp.comm_downlink_bytes
            assert _comparable_extras(rs) == _comparable_extras(rp)

    def test_stage_timings_recorded(self, tiny_bundle):
        history, _ = _run(
            tiny_bundle, "fedavg", "parallel", "mlp_small", rounds=1, max_workers=2
        )
        times = [k for k in history.records[0].extras if k.startswith("time/")]
        assert "time/local_train" in times
        assert all(history.records[0].extras[k] >= 0.0 for k in times)


class TestFaultTolerance:
    def test_timeout_degrades_to_dropout(self, tiny_bundle, fault_hook):
        def stall_client_zero(task):
            if task.client_id == 0 and task.method == "train_local":
                time.sleep(30.0)

        fault_hook(stall_client_zero)
        fed = make_tiny_federation(
            tiny_bundle,
            num_clients=3,
            server_model="mlp_small",
            executor="parallel",
            max_workers=2,
            task_timeout_s=1.0,
            task_retries=0,
        )
        algo = build_algorithm("fedavg", fed, seed=0, epoch_scale=0.2)
        try:
            history = algo.run(1, eval_every=1)
        finally:
            fed.close()
        # the run completed; client 0 merely missed the round
        assert len(history.records) == 1
        assert [(e.client_id, e.stage, e.reason) for e in algo.dropout_log.events] == [
            (0, "local_train", "timeout")
        ]
        assert history.records[0].extras["runtime_dropouts"] == 1.0
        assert history.records[0].extras["participants"] == 2.0

    def test_worker_death_never_aborts_run(self, tiny_bundle, fault_hook):
        def kill_client_zero(task):
            if task.client_id == 0 and task.method == "train_local":
                os._exit(1)

        fault_hook(kill_client_zero)
        fed = make_tiny_federation(
            tiny_bundle,
            num_clients=3,
            server_model="mlp_small",
            executor="parallel",
            max_workers=2,
            task_timeout_s=30.0,
            task_retries=0,
        )
        algo = build_algorithm("fedavg", fed, seed=0, epoch_scale=0.2)
        try:
            history = algo.run(1, eval_every=1)
        finally:
            fed.close()
        # the poisoned task falls back to inline execution (the hook only
        # fires inside workers), so nobody drops and the round completes
        assert len(history.records) == 1
        assert history.records[0].extras["participants"] == 3.0


class TestRetryBackoff:
    """Capped exponential backoff with seeded jitter between retries."""

    def test_disabled_by_default(self, monkeypatch):
        ex = ParallelExecutor()
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        assert ex._backoff_sleep(1, "local_train") == 0.0
        assert slept == []

    def test_delay_schedule_is_capped_exponential(self, monkeypatch):
        ex = ParallelExecutor(retry_backoff_s=2.0, backoff_seed=0)
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        for attempt in (1, 2, 3, 10):
            delay = ex._backoff_sleep(attempt, "local_train")
            assert delay == slept[-1]
            base = min(ex._BACKOFF_CAP_S, 2.0 * 2.0 ** (attempt - 1))
            # equal jitter keeps the delay within [base/2, base]
            assert base * 0.5 <= delay <= base
        # attempt 10 would be 1024s uncapped; the cap bounds it
        assert slept[-1] <= ex._BACKOFF_CAP_S

    def test_jitter_is_seeded_and_reproducible(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda s: None)

        def delays(seed):
            ex = ParallelExecutor(retry_backoff_s=1.0, backoff_seed=seed)
            return [ex._backoff_sleep(k, "stage") for k in (1, 1, 2, 3)]

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_validation(self):
        with pytest.raises(ValueError, match="retry_backoff_s"):
            ParallelExecutor(retry_backoff_s=-1.0)

    def test_make_executor_wires_config(self):
        class _Cfg:
            executor = "parallel"
            max_workers = 2
            task_timeout_s = None
            task_retries = 1
            retry_backoff_s = 0.25
            seed = 42

        ex = make_executor(_Cfg())
        assert isinstance(ex, ParallelExecutor)
        assert ex.retry_backoff_s == 0.25
        # same seed, same jitter stream
        twin = ParallelExecutor(retry_backoff_s=0.25, backoff_seed=42)
        assert float(ex._backoff_rng.random()) == float(twin._backoff_rng.random())
