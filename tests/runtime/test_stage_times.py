"""Executor.pop_stage_times(): drain-on-read, accumulation, executor parity."""

from repro.algorithms import build_algorithm
from repro.runtime import ParallelExecutor, SerialExecutor

from ..conftest import make_tiny_federation


def _bound_serial(bundle):
    fed = make_tiny_federation(bundle, num_clients=3)
    return fed, fed.executor


class TestPopStageTimes:
    def test_empty_before_any_stage(self, tiny_bundle):
        fed, executor = _bound_serial(tiny_bundle)
        try:
            assert executor.pop_stage_times() == {}
        finally:
            fed.close()

    def test_drained_on_read(self, tiny_bundle):
        fed, executor = _bound_serial(tiny_bundle)
        try:
            executor.run_stage(fed.clients, "class_counts", stage="counts")
            times = executor.pop_stage_times()
            assert set(times) == {"counts"}
            assert times["counts"] >= 0.0
            # the ledger resets on read
            assert executor.pop_stage_times() == {}
        finally:
            fed.close()

    def test_accumulates_across_run_stage_calls(self, tiny_bundle):
        fed, executor = _bound_serial(tiny_bundle)
        try:
            executor.run_stage(fed.clients, "class_counts", stage="counts")
            first = executor.pop_stage_times()["counts"]
            executor.run_stage(fed.clients, "class_counts", stage="counts")
            executor.run_stage(fed.clients, "class_counts", stage="counts")
            both = executor.pop_stage_times()
            # two invocations of the same stage fold into one entry
            assert set(both) == {"counts"}
            assert both["counts"] > 0.0
            assert first >= 0.0
        finally:
            fed.close()

    def test_distinct_stages_tracked_separately(self, tiny_bundle):
        fed, executor = _bound_serial(tiny_bundle)
        try:
            executor.run_stage(fed.clients, "class_counts", stage="a")
            executor.run_stage(fed.clients, "class_counts", stage="b")
            assert set(executor.pop_stage_times()) == {"a", "b"}
        finally:
            fed.close()

    def test_stage_defaults_to_method_name(self, tiny_bundle):
        fed, executor = _bound_serial(tiny_bundle)
        try:
            executor.run_stage(fed.clients, "class_counts")
            assert set(executor.pop_stage_times()) == {"class_counts"}
        finally:
            fed.close()


class TestSerialParallelParity:
    def test_same_stage_keys_both_executors(self, tiny_bundle):
        """A full algorithm round produces the same stage-time keys under
        the serial and the parallel executor (values differ — wall time)."""
        histories = {}
        for executor in ("serial", "parallel"):
            fed = make_tiny_federation(
                tiny_bundle,
                num_clients=3,
                executor=executor,
                max_workers=2 if executor == "parallel" else None,
            )
            algo = build_algorithm("fedpkd", fed, seed=0, epoch_scale=0.1)
            try:
                histories[executor] = algo.run(1, eval_every=1)
            finally:
                fed.close()
        time_keys = {
            executor: {
                k
                for k in history.records[-1].extras
                if k.startswith("time/")
            }
            for executor, history in histories.items()
        }
        assert time_keys["serial"] == time_keys["parallel"]
        assert time_keys["serial"]  # fedpkd runs at least local_train stages
