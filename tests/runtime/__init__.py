"""Tests for the repro.runtime parallel client-execution runtime."""
