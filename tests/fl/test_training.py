"""Tests for the shared training loops."""

import math

import numpy as np
import pytest

from repro import nn
from repro.fl import TrainingConfig, evaluate_accuracy, train_distill, train_supervised
from repro.fl.training import make_optimizer, train_with_loss
from repro.nn import Tensor, losses

IMG = (3, 6, 6)


def fresh_model(seed=0, classes=4):
    return nn.build_model("mlp_small", classes, IMG, feature_dim=8, rng=seed)


def toy_data(n=60, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, *IMG))
    y = rng.integers(0, classes, n)
    return x, y


class TestMakeOptimizer:
    def test_adam(self):
        model = fresh_model()
        opt = make_optimizer(model, TrainingConfig(optimizer="adam", lr=0.01))
        assert isinstance(opt, nn.Adam)

    def test_sgd(self):
        model = fresh_model()
        opt = make_optimizer(model, TrainingConfig(optimizer="sgd", lr=0.01))
        assert isinstance(opt, nn.SGD)


class TestTrainSupervised:
    def test_loss_decreases(self):
        model = fresh_model()
        x, y = toy_data()
        rng = np.random.default_rng(0)
        first = train_supervised(model, x, y, TrainingConfig(epochs=1), rng)
        last = train_supervised(model, x, y, TrainingConfig(epochs=5), rng)
        assert last < first

    def test_empty_data_is_noop(self):
        model = fresh_model()
        before = model.classifier.weight.data.copy()
        loss = train_supervised(
            model, np.zeros((0, *IMG)), np.zeros(0, dtype=int),
            TrainingConfig(epochs=2), np.random.default_rng(0),
        )
        assert loss == 0.0
        np.testing.assert_allclose(model.classifier.weight.data, before)

    def test_zero_epochs_is_noop(self):
        model = fresh_model()
        x, y = toy_data()
        before = model.classifier.weight.data.copy()
        train_supervised(model, x, y, TrainingConfig(epochs=0), np.random.default_rng(0))
        np.testing.assert_allclose(model.classifier.weight.data, before)

    def test_prox_keeps_weights_near_reference(self):
        x, y = toy_data()
        ref_model = fresh_model(seed=1)
        reference = {k: v for k, v in ref_model.state_dict().items()}

        def drift(mu):
            model = fresh_model(seed=1)
            train_supervised(
                model, x, y, TrainingConfig(epochs=3), np.random.default_rng(0),
                prox_mu=mu, prox_reference=reference,
            )
            return sum(
                float(((model.state_dict()[k] - reference[k]) ** 2).sum())
                for k, _ in model.named_parameters()
            )

        assert drift(10.0) < drift(0.0)

    def test_prototype_term_pulls_features(self):
        x, y = toy_data(classes=2)
        prototypes = np.zeros((2, 8))
        prototypes[0] += 1.0

        def feature_distance(weight):
            model = fresh_model(seed=2, classes=2)
            train_supervised(
                model, x, y, TrainingConfig(epochs=4), np.random.default_rng(0),
                prototypes=prototypes, prototype_weight=weight,
            )
            feats = model.extract_features(x)
            return float(np.linalg.norm(feats - prototypes[y], axis=1).mean())

        assert feature_distance(5.0) < feature_distance(0.0)

    def test_nan_prototype_rows_are_skipped(self):
        x, y = toy_data(classes=3)
        prototypes = np.full((3, 8), np.nan)
        model = fresh_model(classes=3)
        # must not raise nor produce NaN weights
        train_supervised(
            model, x, y, TrainingConfig(epochs=1), np.random.default_rng(0),
            prototypes=prototypes, prototype_weight=1.0,
        )
        assert np.isfinite(model.classifier.weight.data).all()


class TestTrainDistill:
    def test_student_approaches_teacher(self):
        x, _ = toy_data(n=80)
        teacher = fresh_model(seed=3)
        teacher_logits = teacher.predict_logits(x)
        student = fresh_model(seed=4)

        def agreement():
            return (student.predict(x) == teacher_logits.argmax(axis=1)).mean()

        before = agreement()
        train_distill(
            student, x, teacher_logits, TrainingConfig(epochs=8),
            np.random.default_rng(0), kd_weight=1.0,
        )
        assert agreement() > before

    def test_pseudo_labels_default_to_argmax(self):
        x, _ = toy_data(n=20)
        teacher_logits = np.random.default_rng(5).normal(size=(20, 4))
        student = fresh_model(seed=5)
        loss = train_distill(
            student, x, teacher_logits, TrainingConfig(epochs=1),
            np.random.default_rng(0), kd_weight=0.5,
        )
        assert np.isfinite(loss)

    def test_prototype_term_applies(self):
        x, _ = toy_data(n=40, classes=2)
        teacher_logits = np.random.default_rng(6).normal(size=(40, 2))
        prototypes = np.ones((2, 8))
        student = fresh_model(seed=6, classes=2)
        loss = train_distill(
            student, x, teacher_logits, TrainingConfig(epochs=2),
            np.random.default_rng(0), kd_weight=0.5,
            prototypes=prototypes, prototype_weight=1.0,
        )
        assert np.isfinite(loss)


class TestEvaluate:
    def test_empty_set_is_nan(self):
        # An empty test set carries no information: NaN, not a fake 0.0
        # that would drag down cohort means (see RoundRecord.mean_client_acc).
        assert math.isnan(evaluate_accuracy(fresh_model(), np.zeros((0, *IMG)), np.zeros(0)))

    def test_perfect_on_memorised(self):
        model = fresh_model()
        x, y = toy_data(n=30)
        train_supervised(
            model, x, y, TrainingConfig(epochs=50), np.random.default_rng(0)
        )
        assert evaluate_accuracy(model, x, y) >= 0.8


class TestTrainWithLoss:
    def test_custom_loss_builder(self):
        model = fresh_model()
        x, y = toy_data()

        def builder(m, batch):
            xb, yb = batch
            return losses.cross_entropy(m(Tensor(xb)), yb)

        out = train_with_loss(
            model, (x, y), builder, TrainingConfig(epochs=1), np.random.default_rng(0)
        )
        assert np.isfinite(out)

    def test_grad_clipping_applies(self):
        model = fresh_model()
        x, y = toy_data()

        def builder(m, batch):
            xb, yb = batch
            return losses.cross_entropy(m(Tensor(xb)), yb) * 1e6

        out = train_with_loss(
            model, (x, y), builder,
            TrainingConfig(epochs=1, max_grad_norm=1.0), np.random.default_rng(0),
        )
        assert np.isfinite(model.classifier.weight.data).all()
