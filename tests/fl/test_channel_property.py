"""Property tests for communication accounting: the ledger is exact."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fl import CommChannel
from repro.nn import payload_num_bytes

PAYLOAD_SIZES = st.lists(st.integers(0, 500), min_size=1, max_size=20)


@given(sizes=PAYLOAD_SIZES)
@settings(max_examples=40, deadline=None)
def test_uplink_total_is_sum_of_payloads(sizes):
    ch = CommChannel()
    expected = 0
    for i, n in enumerate(sizes):
        payload = np.zeros(n)
        ch.upload(i % 3, payload)
        expected += payload_num_bytes(payload)
    assert ch.snapshot().uplink == expected
    assert ch.snapshot().downlink == 0


@given(sizes=PAYLOAD_SIZES)
@settings(max_examples=40, deadline=None)
def test_per_client_totals_sum_to_global(sizes):
    ch = CommChannel()
    for i, n in enumerate(sizes):
        if i % 2:
            ch.upload(i % 4, np.zeros(n))
        else:
            ch.download(i % 4, np.zeros(n))
    per_client = sum(ch.client_bytes(c) for c in range(4))
    assert per_client == ch.total_bytes


@given(
    sizes=PAYLOAD_SIZES,
    marks=st.lists(st.integers(0, 19), min_size=1, max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_round_marks_are_monotone(sizes, marks):
    ch = CommChannel()
    mark_points = sorted(set(m % len(sizes) for m in marks))
    for i, n in enumerate(sizes):
        ch.upload(0, np.zeros(n))
        if i in mark_points:
            ch.mark_round()
    totals = [m.total for m in ch.round_marks]
    assert totals == sorted(totals)
