"""Tests for federation construction, participation, and the round engine."""

import time

import numpy as np
import pytest

from repro.fl import (
    FederationConfig,
    ParticipationSampler,
    TrainingConfig,
    build_federation,
)
from repro.fl.simulation import FederatedAlgorithm

from ..conftest import make_tiny_federation


class TestBuildFederation:
    def test_client_count_and_data_split(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle, num_clients=4)
        assert fed.num_clients == 4
        total = sum(c.num_samples + len(c.x_test) for c in fed.clients)
        assert total == len(tiny_bundle.train)

    def test_local_test_sets_nonoverlapping_with_train(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle)
        for c in fed.clients:
            assert len(c.x_test) > 0
            # train/test are slices of distinct indices: verify disjoint rows
            train_rows = {r.tobytes() for r in c.x_train}
            test_rows = {r.tobytes() for r in c.x_test}
            assert not train_rows & test_rows

    def test_heterogeneous_models(self, tiny_bundle):
        fed = make_tiny_federation(
            tiny_bundle, num_clients=4, client_models=["mlp_small", "mlp_medium"]
        )
        p0 = fed.clients[0].model.num_parameters()
        p1 = fed.clients[1].model.num_parameters()
        p2 = fed.clients[2].model.num_parameters()
        assert p0 != p1 and p0 == p2

    def test_no_server_model(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle, server_model=None)
        assert not fed.server.has_model

    def test_public_data_exposed(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle)
        assert fed.public_x.shape[0] == 90

    def test_determinism(self, tiny_bundle):
        a = make_tiny_federation(tiny_bundle, seed=5)
        b = make_tiny_federation(tiny_bundle, seed=5)
        np.testing.assert_allclose(a.clients[0].x_train, b.clients[0].x_train)
        np.testing.assert_allclose(
            a.clients[1].model.classifier.weight.data,
            b.clients[1].model.classifier.weight.data,
        )

    def test_shards_partition_config(self, tiny_bundle):
        fed = make_tiny_federation(
            tiny_bundle,
            partition=("shards", {"classes_per_client": 2, "shard_size": 5}),
        )
        assert all(c.num_samples > 0 for c in fed.clients)


class TestParticipationSampler:
    def test_no_dropout_everyone(self):
        sampler = ParticipationSampler(5, dropout_prob=0.0)
        assert sampler.sample() == [0, 1, 2, 3, 4]

    def test_dropout_removes_some(self):
        sampler = ParticipationSampler(20, dropout_prob=0.5, seed=0)
        sizes = [len(sampler.sample()) for _ in range(20)]
        assert min(sizes) >= 1
        assert np.mean(sizes) < 20

    def test_min_available_enforced(self):
        sampler = ParticipationSampler(4, dropout_prob=0.9, min_available=2, seed=0)
        for _ in range(30):
            assert len(sampler.sample()) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticipationSampler(4, dropout_prob=1.0)
        with pytest.raises(ValueError):
            ParticipationSampler(4, min_available=5)

    def test_min_available_topup_unique_ids(self):
        # extreme dropout forces the top-up path every round; the single
        # choice() draw must stay fast and never duplicate a client id
        sampler = ParticipationSampler(
            8, dropout_prob=0.99, min_available=5, seed=3
        )
        for _ in range(200):
            ids = sampler.sample()
            assert len(ids) >= 5
            assert len(ids) == len(set(ids))
            assert ids == sorted(ids)
            assert all(0 <= cid < 8 for cid in ids)


class _CountingAlgorithm(FederatedAlgorithm):
    """Minimal algorithm that counts rounds and meters fake traffic."""

    name = "counting"

    def __init__(self, federation, seed=0):
        super().__init__(federation, seed=seed)
        self.rounds_run = 0

    def run_round(self, participants):
        self.rounds_run += 1
        for c in participants:
            self.channel.upload(c.client_id, np.zeros(10))
        return {"custom": 1.0}


class TestRoundEngine:
    def test_run_records_history(self, tiny_federation):
        algo = _CountingAlgorithm(tiny_federation)
        history = algo.run(rounds=3)
        assert algo.rounds_run == 3
        assert len(history) == 3
        assert history.records[0].extras == {"custom": 1.0}
        assert history.records[-1].comm_uplink_bytes == 3 * 3 * 40

    def test_eval_every(self, tiny_federation):
        algo = _CountingAlgorithm(tiny_federation)
        history = algo.run(rounds=4, eval_every=2)
        assert [r.round_index for r in history.records] == [2, 4]

    def test_final_round_always_evaluated_once(self, tiny_federation):
        algo = _CountingAlgorithm(tiny_federation)
        history = algo.run(rounds=5, eval_every=2)
        assert [r.round_index for r in history.records] == [2, 4, 5]

    def test_wall_time_accumulates_across_uneval_rounds(self, tiny_federation):
        class _Sleepy(_CountingAlgorithm):
            def run_round(self, participants):
                time.sleep(0.02)
                return super().run_round(participants)

        algo = _Sleepy(tiny_federation)
        history = algo.run(rounds=2, eval_every=2)
        assert len(history.records) == 1
        # both rounds' elapsed time lands on the single evaluated record
        assert history.records[0].wall_time_s >= 0.04

    def test_history_continuation(self, tiny_federation):
        algo = _CountingAlgorithm(tiny_federation)
        history = algo.run(rounds=2)
        algo.run(rounds=1, history=history)
        assert [r.round_index for r in history.records] == [1, 2, 3]

    def test_failure_injection_reduces_participants(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle, num_clients=6, dropout_prob=0.6, seed=1)
        algo = _CountingAlgorithm(fed)
        algo.run(rounds=5)
        # with 60% dropout some traffic must be below full participation
        assert fed.channel.snapshot().uplink < 5 * 6 * 40

    def test_base_run_round_abstract(self, tiny_federation):
        algo = FederatedAlgorithm(tiny_federation)
        with pytest.raises(NotImplementedError):
            algo.run_round([])
