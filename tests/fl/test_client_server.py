"""Tests for FLClient and FLServer behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.fl import FLClient, FLServer, TrainingConfig

IMG = (3, 6, 6)


def make_client(seed=0, classes=4, n=40, class_subset=None):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, classes, n)
    if class_subset is not None:
        y = rng.choice(class_subset, n)
    x = rng.normal(size=(n, *IMG))
    model = nn.build_model("mlp_small", classes, IMG, feature_dim=8, rng=seed)
    return FLClient(0, model, x, y, x[:10], y[:10], num_classes=classes, seed=seed)


class TestClientDataFacts:
    def test_num_samples(self):
        assert make_client(n=40).num_samples == 40

    def test_class_counts_sum(self):
        client = make_client()
        assert client.class_counts().sum() == client.num_samples

    def test_present_classes(self):
        client = make_client(class_subset=[1, 3])
        assert set(client.present_classes()) <= {1, 3}


class TestClientPrototypes:
    def test_shape_and_nan_rows(self):
        client = make_client(classes=5, class_subset=[0, 2])
        protos = client.compute_prototypes()
        assert protos.shape == (5, 8)
        present = set(client.present_classes())
        for cls in range(5):
            if cls in present:
                assert np.isfinite(protos[cls]).all()
            else:
                assert np.isnan(protos[cls]).all()

    def test_prototype_is_feature_mean(self):
        client = make_client(classes=3)
        protos = client.compute_prototypes()
        feats = client.model.extract_features(client.x_train)
        for cls in client.present_classes():
            np.testing.assert_allclose(
                protos[cls], feats[client.y_train == cls].mean(axis=0), atol=1e-10
            )


class TestClientTraining:
    def test_local_training_improves_fit(self):
        client = make_client(n=60)
        before = client.evaluate_on(client.x_train, client.y_train)
        client.train_local(TrainingConfig(epochs=10))
        after = client.evaluate_on(client.x_train, client.y_train)
        assert after >= before

    def test_logits_shape(self):
        client = make_client(classes=4)
        x = np.zeros((7, *IMG))
        assert client.logits_on(x).shape == (7, 4)

    def test_evaluate_bounds(self):
        acc = make_client().evaluate()
        assert 0.0 <= acc <= 1.0


class TestServer:
    def test_no_model_evaluate_nan(self):
        server = FLServer(None)
        assert np.isnan(server.evaluate(np.zeros((2, *IMG)), np.zeros(2)))

    def test_no_model_logits_raise(self):
        with pytest.raises(RuntimeError):
            FLServer(None).logits_on(np.zeros((2, *IMG)))

    def test_no_model_distill_raises(self):
        with pytest.raises(RuntimeError):
            FLServer(None).train_distill(
                np.zeros((2, *IMG)), np.zeros((2, 4)), TrainingConfig(epochs=1)
            )

    def test_distill_runs(self):
        model = nn.build_model("mlp_small", 4, IMG, feature_dim=8, rng=0)
        server = FLServer(model, seed=0)
        x = np.random.default_rng(0).normal(size=(20, *IMG))
        teacher = np.random.default_rng(1).normal(size=(20, 4))
        loss = server.train_distill(x, teacher, TrainingConfig(epochs=1))
        assert np.isfinite(loss)

    def test_evaluate_with_model(self):
        model = nn.build_model("mlp_small", 4, IMG, feature_dim=8, rng=0)
        server = FLServer(model)
        x = np.zeros((4, *IMG))
        y = np.zeros(4, dtype=int)
        assert 0.0 <= server.evaluate(x, y) <= 1.0
