"""Async round engine: degenerate equivalence, chaos, staleness, resume.

The load-bearing contract is ``test_degenerate_mode_bit_identical``: the
async engine with ``max_staleness=0``, a full buffer, and no fault plan
must reproduce the synchronous engine's history bit-for-bit (CI enforces
this).  Everything else — buffered aggregation, staleness discounts,
injected faults, exact resume mid-pipeline — builds on that baseline.
"""

import numpy as np
import pytest

from repro.core import FedPKD, FedPKDConfig
from repro.fl import (
    AsyncRoundEngine,
    CheckpointError,
    EngineStalledError,
    FaultPlan,
    TrainingConfig,
    load_checkpoint,
    load_history,
    save_checkpoint,
)
from repro.fl.simulation import FederatedAlgorithm

from ..conftest import make_tiny_federation


def fast_config(**overrides):
    defaults = dict(
        local=TrainingConfig(epochs=1, batch_size=16),
        public=TrainingConfig(epochs=1, batch_size=16),
        server=TrainingConfig(epochs=1, batch_size=16),
    )
    defaults.update(overrides)
    return FedPKDConfig(**defaults)


def make_fedpkd(bundle, num_clients=3, seed=0, **fed_kwargs):
    fed = make_tiny_federation(
        bundle,
        num_clients=num_clients,
        client_models="mlp_small",
        server_model="mlp_small",
        seed=seed,
        **fed_kwargs,
    )
    return FedPKD(fed, config=fast_config(), seed=seed)


def _deterministic_extras(record):
    """Record extras minus the wall-clock-dependent ``time/*`` keys."""
    return {k: v for k, v in record.extras.items() if not k.startswith("time/")}


def assert_histories_identical(a, b):
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.round_index == rb.round_index
        # server-model-free algorithms (e.g. FedProto) report NaN server_acc
        assert ra.server_acc == rb.server_acc or (
            np.isnan(ra.server_acc) and np.isnan(rb.server_acc)
        )
        assert ra.client_accs == rb.client_accs
        assert ra.comm_uplink_bytes == rb.comm_uplink_bytes
        assert ra.comm_downlink_bytes == rb.comm_downlink_bytes
        assert _deterministic_extras(ra) == _deterministic_extras(rb)


CHAOS_PLAN = {
    "seed": 3,
    "faults": [
        {"kind": "straggler", "client_id": 2, "factor": 10.0, "jitter": 0.1},
        {"kind": "crash", "client_id": 1, "round": 1},
        {
            "kind": "flaky",
            "client_id": 0,
            "fail_prob": 0.5,
            "from_round": 0,
            "until_round": 4,
        },
        {"kind": "leave", "client_id": 3, "round": 2},
        {"kind": "join", "client_id": 3, "round": 4},
    ],
}


class TestConstruction:
    def test_rejects_non_async_algorithm(self, tiny_federation):
        class _Sync(FederatedAlgorithm):
            name = "sync_only"

        with pytest.raises(ValueError, match="async"):
            AsyncRoundEngine(_Sync(tiny_federation))

    def test_validates_knobs(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle)
        with pytest.raises(ValueError):
            AsyncRoundEngine(algo, max_staleness=-1)
        with pytest.raises(ValueError):
            AsyncRoundEngine(algo, staleness_alpha=0.0)
        with pytest.raises(ValueError):
            AsyncRoundEngine(algo, buffer_size=0)

    def test_registers_on_algorithm(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle)
        engine = AsyncRoundEngine(algo)
        assert algo.async_engine is engine

    def test_from_config_reads_knobs(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle)

        class _Cfg:
            max_staleness = 2
            staleness_alpha = 0.9
            buffer_size = 2
            fault_plan = {"faults": [], "seed": 1}

        engine = AsyncRoundEngine.from_config(algo, _Cfg())
        assert engine.max_staleness == 2
        assert engine.staleness_alpha == 0.9
        assert engine.buffer_size == 2
        assert isinstance(engine.plan, FaultPlan)


class TestDegenerateEquivalence:
    """max_staleness=0 + full buffer + no faults == the sync engine."""

    def test_degenerate_mode_bit_identical(self, tiny_bundle):
        sync_algo = make_fedpkd(tiny_bundle)
        h_sync = sync_algo.run(3)
        sync_algo.federation.close()

        async_algo = make_fedpkd(tiny_bundle)
        h_async = AsyncRoundEngine(async_algo).run(3)
        async_algo.federation.close()

        assert_histories_identical(h_sync, h_async)
        # server version tracks completed rounds exactly
        assert async_algo.async_engine.version == 3
        np.testing.assert_array_equal(
            sync_algo.global_prototypes, async_algo.global_prototypes
        )

    def test_degenerate_mode_with_participation_dropout(self, tiny_bundle):
        # the engine draws the participation sampler once per wave — the
        # same RNG cadence as the sync loop's per-round active_clients()
        sync_algo = make_fedpkd(tiny_bundle, num_clients=4, dropout_prob=0.4)
        h_sync = sync_algo.run(3)
        sync_algo.federation.close()

        async_algo = make_fedpkd(tiny_bundle, num_clients=4, dropout_prob=0.4)
        h_async = AsyncRoundEngine(async_algo).run(3)
        async_algo.federation.close()

        assert_histories_identical(h_sync, h_async)

    def test_eval_every_matches_sync(self, tiny_bundle):
        sync_algo = make_fedpkd(tiny_bundle)
        h_sync = sync_algo.run(3, eval_every=2)
        sync_algo.federation.close()

        async_algo = make_fedpkd(tiny_bundle)
        h_async = AsyncRoundEngine(async_algo).run(3, eval_every=2)
        async_algo.federation.close()

        assert [r.round_index for r in h_async.records] == [2, 3]
        assert_histories_identical(h_sync, h_async)


class TestVirtualClock:
    def test_clock_advances_without_wall_time(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle)
        engine = AsyncRoundEngine(algo)
        engine.run(2)
        # nominal service time is 1.0 per dispatch; two full-barrier waves
        # arrive at virtual times 1.0 and 2.0
        assert engine.clock == pytest.approx(2.0)
        algo.federation.close()

    def test_straggler_arrives_late(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle, num_clients=3)
        plan = {"faults": [{"kind": "straggler", "client_id": 1, "factor": 10.0}]}
        engine = AsyncRoundEngine(
            algo, max_staleness=5, buffer_size=2, fault_plan=plan
        )
        engine.run(1)
        # the two fast clients aggregated at virtual time 1.0; the
        # straggler's dispatch is still in flight at t=11
        assert engine.clock == pytest.approx(1.0)
        assert engine.in_flight >= 1
        algo.federation.close()


class TestBufferAndStaleness:
    def test_buffer_size_triggers_early_aggregation(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle, num_clients=3)
        engine = AsyncRoundEngine(algo, max_staleness=3, buffer_size=2)
        history = engine.run(3)
        assert len(history.records) == 3
        assert all(np.isfinite(r.server_acc) for r in history.records)

    def test_stale_contribution_discounted_not_dropped(self, tiny_bundle, tmp_path):
        # straggler work lands one version late but within max_staleness:
        # it must be aggregated (with weight alpha**s), not discarded
        algo = make_fedpkd(
            tiny_bundle, num_clients=3, metrics_path=str(tmp_path / "m.jsonl")
        )
        plan = {"faults": [{"kind": "straggler", "client_id": 1, "factor": 1.6}]}
        engine = AsyncRoundEngine(
            algo, max_staleness=3, staleness_alpha=0.5, buffer_size=2,
            fault_plan=plan,
        )
        engine.run(4)
        snapshot = algo.metrics.snapshot()
        assert snapshot.get("engine/stale_contributions", 0) > 0
        algo.federation.close()

    def test_over_stale_contribution_dropped(self, tiny_bundle, tmp_path):
        algo = make_fedpkd(
            tiny_bundle, num_clients=3, metrics_path=str(tmp_path / "m.jsonl")
        )
        # factor 2.5 => the straggler's arrival pops during round 3 at
        # staleness 2 (a larger factor would leave it in-flight forever
        # behind the fast clients and nothing would ever be dropped)
        plan = {"faults": [{"kind": "straggler", "client_id": 1, "factor": 2.5}]}
        engine = AsyncRoundEngine(
            algo, max_staleness=0, buffer_size=2, fault_plan=plan
        )
        engine.run(4)
        snapshot = algo.metrics.snapshot()
        assert snapshot.get("engine/dropped_contributions", 0) > 0
        algo.federation.close()

    def test_alpha_one_keeps_full_weight(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle, num_clients=3)
        engine = AsyncRoundEngine(
            algo, max_staleness=4, staleness_alpha=1.0, buffer_size=2
        )
        history = engine.run(3)
        assert all(np.isfinite(r.server_acc) for r in history.records)
        algo.federation.close()


class TestFaultInjection:
    def test_chaos_run_completes_with_finite_accuracy(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle, num_clients=4)
        engine = AsyncRoundEngine(
            algo, max_staleness=2, buffer_size=2, fault_plan=CHAOS_PLAN
        )
        history = engine.run(5)
        assert len(history.records) == 5
        assert all(np.isfinite(r.server_acc) for r in history.records)
        algo.federation.close()

    def test_every_injected_fault_lands_in_dropout_log(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle, num_clients=4)
        engine = AsyncRoundEngine(
            algo, max_staleness=2, buffer_size=2, fault_plan=CHAOS_PLAN
        )
        engine.run(5)
        causes = {e.reason for e in algo.dropout_log.events}
        assert "injected_crash" in causes
        assert "injected_leave" in causes
        # every injected event names its cause and a valid client
        for event in algo.dropout_log.events:
            assert event.reason.startswith("injected_")
            assert 0 <= event.client_id < 4
            assert event.stage in ("async_dispatch", "async_work")
        algo.federation.close()

    def test_fault_plan_from_file(self, tiny_bundle, tmp_path):
        import json

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(CHAOS_PLAN))
        algo = make_fedpkd(tiny_bundle, num_clients=4)
        engine = AsyncRoundEngine(
            algo, max_staleness=2, buffer_size=2, fault_plan=str(plan_path)
        )
        history = engine.run(2)
        assert len(history.records) == 2
        algo.federation.close()

    def test_chaos_is_deterministic(self, tiny_bundle):
        def run_once():
            algo = make_fedpkd(tiny_bundle, num_clients=4)
            engine = AsyncRoundEngine(
                algo, max_staleness=2, buffer_size=2, fault_plan=CHAOS_PLAN
            )
            history = engine.run(4)
            events = [
                (e.round_index, e.client_id, e.stage, e.reason)
                for e in algo.dropout_log.events
            ]
            algo.federation.close()
            return history, events

        h1, e1 = run_once()
        h2, e2 = run_once()
        assert_histories_identical(h1, h2)
        assert e1 == e2

    def test_all_clients_leaving_stalls_engine(self, tiny_bundle):
        algo = make_fedpkd(tiny_bundle, num_clients=3)
        plan = {
            "faults": [
                {"kind": "leave", "client_id": cid, "round": 0}
                for cid in range(3)
            ]
        }
        engine = AsyncRoundEngine(algo, fault_plan=plan)
        with pytest.raises(EngineStalledError):
            engine.run(1)
        algo.federation.close()


class TestExactResume:
    def test_chaos_resume_is_bit_identical(self, tiny_bundle, tmp_path):
        ckpt = str(tmp_path / "async.ckpt.npz")

        def engine_for(algo):
            return AsyncRoundEngine(
                algo, max_staleness=2, buffer_size=2, fault_plan=CHAOS_PLAN
            )

        full_algo = make_fedpkd(tiny_bundle, num_clients=4)
        h_full = engine_for(full_algo).run(5)
        full_algo.federation.close()

        head_algo = make_fedpkd(tiny_bundle, num_clients=4)
        engine_for(head_algo).run(3, checkpoint_every=3, checkpoint_path=ckpt)
        head_algo.federation.close()

        tail_algo = make_fedpkd(tiny_bundle, num_clients=4)
        tail_engine = engine_for(tail_algo)
        done = load_checkpoint(tail_algo, ckpt)
        assert done == 3
        h_tail = tail_engine.run(5 - done, history=load_history(ckpt))
        tail_algo.federation.close()

        assert_histories_identical(h_full, h_tail)
        np.testing.assert_array_equal(
            full_algo.global_prototypes, tail_algo.global_prototypes
        )

    def test_in_flight_pipeline_survives_checkpoint(self, tiny_bundle, tmp_path):
        ckpt = str(tmp_path / "pipeline.ckpt.npz")
        plan = {"faults": [{"kind": "straggler", "client_id": 2, "factor": 10.0}]}
        algo = make_fedpkd(tiny_bundle, num_clients=3)
        engine = AsyncRoundEngine(
            algo, max_staleness=5, buffer_size=2, fault_plan=plan
        )
        engine.run(2)
        assert engine.in_flight > 0  # the straggler is mid-flight
        save_checkpoint(algo, ckpt)
        algo.federation.close()

        algo2 = make_fedpkd(tiny_bundle, num_clients=3)
        engine2 = AsyncRoundEngine(
            algo2, max_staleness=5, buffer_size=2, fault_plan=plan
        )
        load_checkpoint(algo2, ckpt)
        assert engine2.in_flight == engine.in_flight
        assert engine2.clock == engine.clock
        assert engine2.version == engine.version
        algo2.federation.close()

    def test_async_checkpoint_refused_by_sync_load(self, tiny_bundle, tmp_path):
        ckpt = str(tmp_path / "async.ckpt.npz")
        algo = make_fedpkd(tiny_bundle)
        AsyncRoundEngine(algo).run(1, checkpoint_every=1, checkpoint_path=ckpt)
        algo.federation.close()

        sync_algo = make_fedpkd(tiny_bundle)
        with pytest.raises(CheckpointError, match="async-engine state"):
            load_checkpoint(sync_algo, ckpt)
        sync_algo.federation.close()

    def test_sync_checkpoint_loads_into_async_engine(self, tiny_bundle, tmp_path):
        # the converse direction is exact: the engine starts with an empty
        # pipeline at the checkpoint's version (degenerate sync state)
        ckpt = str(tmp_path / "sync.ckpt.npz")
        sync_algo = make_fedpkd(tiny_bundle)
        h_sync = sync_algo.run(3)
        sync_algo.federation.close()

        head_algo = make_fedpkd(tiny_bundle)
        head_algo.run(2, checkpoint_every=2, checkpoint_path=ckpt)
        head_algo.federation.close()

        async_algo = make_fedpkd(tiny_bundle)
        engine = AsyncRoundEngine(async_algo)
        done = load_checkpoint(async_algo, ckpt)
        assert done == 2
        assert engine.version == 2
        h_async = engine.run(1, history=load_history(ckpt))
        async_algo.federation.close()
        assert_histories_identical(h_sync, h_async)

    def test_engine_knob_mismatch_refused(self, tiny_bundle, tmp_path):
        ckpt = str(tmp_path / "knobs.ckpt.npz")
        algo = make_fedpkd(tiny_bundle)
        AsyncRoundEngine(algo, staleness_alpha=0.5).run(
            1, checkpoint_every=1, checkpoint_path=ckpt
        )
        algo.federation.close()

        algo2 = make_fedpkd(tiny_bundle)
        AsyncRoundEngine(algo2, staleness_alpha=0.9)
        with pytest.raises(CheckpointError, match="staleness_alpha"):
            load_checkpoint(algo2, ckpt)
        algo2.federation.close()


FAST_SETTING = dict(
    scale="tiny",
    scale_overrides={
        "n_train": 240, "n_test": 80, "n_public": 60,
        "num_clients": 2, "rounds": 2, "epoch_scale": 0.05,
    },
)


class TestHarnessIntegration:
    def test_run_algorithm_async_engine(self):
        from repro.experiments.harness import ExperimentSetting, run_algorithm

        setting = ExperimentSetting(
            engine="async",
            max_staleness=2,
            buffer_size=2,
            fault_plan={
                "faults": [
                    {"kind": "straggler", "client_id": 1, "factor": 4.0}
                ]
            },
            **FAST_SETTING,
        )
        history = run_algorithm(setting, "fedpkd", rounds=2)
        assert len(history.records) == 2
        assert all(np.isfinite(r.server_acc) for r in history.records)

    def test_run_algorithm_async_degenerate_matches_sync(self):
        from repro.experiments.harness import ExperimentSetting, run_algorithm

        h_sync = run_algorithm(
            ExperimentSetting(**FAST_SETTING), "fedpkd", rounds=2
        )
        h_async = run_algorithm(
            ExperimentSetting(engine="async", **FAST_SETTING), "fedpkd", rounds=2
        )
        assert_histories_identical(h_sync, h_async)


class TestFedProtoAsync:
    """FedProto is the second real supports_async implementor."""

    def _make(self, bundle, seed=0):
        from repro.baselines import FedProto, FedProtoConfig
        from repro.fl import TrainingConfig

        fed = make_tiny_federation(bundle, server_model=None, seed=seed)
        return FedProto(
            fed,
            config=FedProtoConfig(local=TrainingConfig(epochs=1, batch_size=16)),
            seed=seed,
        )

    def test_degenerate_mode_bit_identical(self, tiny_bundle):
        sync_algo = self._make(tiny_bundle)
        h_sync = sync_algo.run(3)
        sync_algo.federation.close()

        async_algo = self._make(tiny_bundle)
        h_async = AsyncRoundEngine(async_algo).run(3)
        async_algo.federation.close()

        assert_histories_identical(h_sync, h_async)
        assert async_algo.async_engine.version == 3
        np.testing.assert_array_equal(
            sync_algo.global_prototypes, async_algo.global_prototypes
        )

    def test_staleness_discounts_change_prototypes(self, tiny_bundle):
        from repro.fl.async_engine import FaultPlan

        reference = self._make(tiny_bundle)
        h_ref = reference.run(3)
        reference.federation.close()

        delayed = self._make(tiny_bundle)
        plan = FaultPlan.from_dict(
            {
                "seed": 1,
                "faults": [
                    {"kind": "straggler", "client_id": 0, "factor": 8.0}
                ],
            }
        )
        engine = AsyncRoundEngine(
            delayed, max_staleness=3, staleness_alpha=0.5, fault_plan=plan
        )
        h_delayed = engine.run(3)
        delayed.federation.close()

        assert len(h_delayed.records) == len(h_ref.records)
        assert delayed.global_prototypes is not None
