"""Tests for the device-heterogeneity timing model."""

import numpy as np
import pytest

from repro.fl.timing import (
    DEVICE_CLASSES,
    DeviceProfile,
    RoundTiming,
    TimingModel,
    estimate_training_steps,
)


class TestDeviceProfile:
    def test_classes_ordered_by_compute(self):
        rates = [DEVICE_CLASSES[n].compute_rate for n in ("iot", "mobile", "laptop", "edge")]
        assert rates == sorted(rates)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", compute_rate=0, uplink_bps=1, downlink_bps=1)


class TestEstimateSteps:
    def test_exact_division(self):
        assert estimate_training_steps(100, epochs=2, batch_size=10) == 20

    def test_ceiling(self):
        assert estimate_training_steps(101, epochs=1, batch_size=10) == 11

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            estimate_training_steps(10, 1, 0)


class TestTimingModel:
    def make_model(self):
        return TimingModel(
            [DEVICE_CLASSES["iot"], DEVICE_CLASSES["edge"]],
            server_compute_rate=100e6,
        )

    def test_training_time_scales_with_work(self):
        tm = self.make_model()
        tm.record_training(0, parameter_steps=2e6)  # iot: 2e6/2e6 = 1s
        tm.record_training(1, parameter_steps=2e6)  # edge: 2e6/60e6
        timing = tm.close_round()
        assert timing.per_client_compute[0] == pytest.approx(1.0)
        assert timing.per_client_compute[1] == pytest.approx(2e6 / 60e6)

    def test_transfer_times(self):
        tm = self.make_model()
        tm.record_upload(0, 250_000)  # iot uplink 0.25e6 B/s -> 1s
        tm.record_download(0, 1_000_000)  # iot downlink 1e6 B/s -> 1s
        timing = tm.close_round()
        assert timing.per_client_comm[0] == pytest.approx(2.0)

    def test_round_duration_is_slowest_plus_server(self):
        tm = self.make_model()
        tm.record_training(0, 2e6)  # 1s on iot
        tm.record_training(1, 6e6)  # 0.1s on edge
        tm.record_server_training(100e6)  # 1s on server
        timing = tm.close_round()
        assert timing.slowest_client == 0
        assert timing.round_duration == pytest.approx(2.0)

    def test_round_profile_cycling(self):
        tm = self.make_model()
        assert tm.profile(0).name == "iot"
        assert tm.profile(1).name == "edge"
        assert tm.profile(2).name == "iot"  # cycles

    def test_close_round_resets(self):
        tm = self.make_model()
        tm.record_training(0, 2e6)
        tm.close_round()
        second = tm.close_round()
        assert second.per_client_compute == {}
        assert second.round_duration == 0.0
        assert len(tm.round_history) == 2

    def test_total_time_accumulates(self):
        tm = self.make_model()
        tm.record_training(0, 2e6)
        tm.close_round()
        tm.record_training(0, 4e6)
        tm.close_round()
        assert tm.total_time == pytest.approx(1.0 + 2.0)

    def test_straggler_gap_balanced_vs_skewed(self):
        balanced = self.make_model()
        balanced.record_training(0, 2e6)   # 1s
        balanced.record_training(1, 60e6)  # 1s
        balanced.close_round()
        assert balanced.straggler_gap() == pytest.approx(1.0)

        skewed = self.make_model()
        skewed.record_training(0, 20e6)  # 10s on iot
        skewed.record_training(1, 60e6)  # 1s on edge
        skewed.close_round()
        # slowest / median of [1, 10] = 10 / 5.5
        assert skewed.straggler_gap() == pytest.approx(10.0 / 5.5)
        assert skewed.straggler_gap() > balanced.straggler_gap()

    def test_empty_round_gap_is_one(self):
        tm = self.make_model()
        tm.close_round()
        assert tm.straggler_gap() == 1.0

    def test_invalid_server_rate(self):
        with pytest.raises(ValueError):
            TimingModel([DEVICE_CLASSES["iot"]], server_compute_rate=0)


class TestHeterogeneousModelAssignment:
    def test_small_models_on_slow_devices_shrink_straggler_gap(self):
        """The paper's system-heterogeneity argument, quantified: giving the
        weak device a proportionally smaller model balances round time."""
        profiles = [DEVICE_CLASSES["iot"], DEVICE_CLASSES["edge"]]
        steps = 100  # same number of SGD steps everywhere

        homogeneous = TimingModel(profiles)
        for cid in (0, 1):
            homogeneous.record_training(cid, parameter_steps=70_000 * steps)
        homogeneous.close_round()

        heterogeneous = TimingModel(profiles)
        heterogeneous.record_training(0, parameter_steps=15_000 * steps)  # small model
        heterogeneous.record_training(1, parameter_steps=70_000 * steps)  # big model
        heterogeneous.close_round()

        assert heterogeneous.straggler_gap() < homogeneous.straggler_gap()
        assert (
            heterogeneous.round_history[0].round_duration
            < homogeneous.round_history[0].round_duration
        )
