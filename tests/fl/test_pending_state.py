"""Pending record extras survive checkpoint/resume.

Stage times, wall time, and runtime dropouts accumulate between
``eval_every`` boundaries.  A checkpoint written between two boundaries
must carry that partial accumulation: without it, a resumed run silently
drops the stage times and dropouts of the rounds since the last record.
"""

from repro.algorithms import build_algorithm
from repro.fl.checkpoint import load_checkpoint, read_checkpoint_meta, save_checkpoint

from ..conftest import make_tiny_federation


def make_algo(bundle, seed=0, **fed_kwargs):
    fed = make_tiny_federation(
        bundle, server_model="mlp_medium", seed=seed, **fed_kwargs
    )
    return build_algorithm("fedpkd", fed, seed=seed, epoch_scale=0.1)


PENDING = {
    "wall_time_s": 3.25,
    "stage_times": {"local_train": 1.5, "public_train": 0.75},
    "dropouts": 2,
}


class TestPendingState:
    def test_fresh_algorithm_has_empty_pending(self, tiny_bundle):
        algo = make_algo(tiny_bundle)
        assert algo.pending_state() == {
            "wall_time_s": 0.0,
            "stage_times": {},
            "dropouts": 0,
        }

    def test_load_pending_state_none_resets(self, tiny_bundle):
        algo = make_algo(tiny_bundle)
        algo.load_pending_state(PENDING)
        algo.load_pending_state(None)  # legacy checkpoint without the key
        assert algo.pending_state()["stage_times"] == {}

    def test_roundtrips_through_checkpoint(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "c.npz")
        algo = make_algo(tiny_bundle)
        algo.load_pending_state(PENDING)
        save_checkpoint(algo, path)
        assert read_checkpoint_meta(path)["pending"] == PENDING

        fresh = make_algo(tiny_bundle)
        load_checkpoint(fresh, path)
        assert fresh.pending_state() == PENDING

    def test_restored_pending_merges_into_next_record(self, tiny_bundle, tmp_path):
        """The first record after a mid-interval resume covers the rounds
        before the save too, not just the post-resume rounds."""
        path = str(tmp_path / "c.npz")
        algo = make_algo(tiny_bundle)
        algo.load_pending_state(PENDING)
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle)
        load_checkpoint(fresh, path)
        history = fresh.run(1, eval_every=1)
        record = history.records[-1]
        # inherited pending amounts are lower bounds: the resumed round
        # adds its own wall time and stage times on top
        assert record.wall_time_s >= 3.25
        assert record.extras["time/local_train"] >= 1.5
        assert record.extras["time/public_train"] >= 0.75
        assert record.extras["runtime_dropouts"] == 2.0
        # the pending ledger is consumed by the record
        assert fresh.pending_state()["stage_times"] == {}

    def test_pending_cleared_at_record_boundary(self, tiny_bundle):
        algo = make_algo(tiny_bundle)
        algo.run(2, eval_every=1)
        assert algo.pending_state() == {
            "wall_time_s": 0.0,
            "stage_times": {},
            "dropouts": 0,
        }

    def test_interrupted_mid_interval_run_keeps_round_timings(
        self, tiny_bundle, tmp_path
    ):
        """The regression this feature exists for: eval_every=2 with
        checkpoint_every=1, interrupted during round 2.  The round-1
        autosave sits between record boundaries; resuming from it must
        produce a round-2 record whose stage times cover round 1 too."""
        import pytest

        path = str(tmp_path / "c.npz")
        algo = make_algo(tiny_bundle)
        original = algo.run_round
        calls = {"n": 0}

        def interrupted(participants):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return original(participants)

        algo.run_round = interrupted
        with pytest.raises(KeyboardInterrupt):
            algo.run(2, eval_every=2, checkpoint_every=1, checkpoint_path=path)

        pending = read_checkpoint_meta(path)["pending"]
        assert pending["stage_times"]  # round 1's timings made the save
        assert pending["wall_time_s"] > 0.0

        resumed = make_algo(tiny_bundle)
        assert load_checkpoint(resumed, path) == 1
        history = resumed.run(1, eval_every=2)
        record = history.records[-1]
        assert record.round_index == 2
        # the single record spans both rounds: round 1's checkpointed
        # timings are a floor for what it reports
        for stage, seconds in pending["stage_times"].items():
            assert record.extras[f"time/{stage}"] >= seconds
        assert record.wall_time_s >= pending["wall_time_s"]
