"""Lazy client registry, spill store, cohort sampling, NaN-aware metrics.

The registry replaced eager client materialisation in
``build_federation``; its load-bearing contract is that the *degenerate*
configuration (no ``max_live_clients``, full participation) is
bit-identical to the historical eager path, and that a bounded registry
with spill-to-disk produces the same run as an unbounded one.  CI
enforces both here.
"""

import math
import os

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.data import Dataset, FederatedDataBundle
from repro.data.partition import split_local_train_test
from repro.fl import (
    ClientModelStore,
    ClientRegistry,
    FederationConfig,
    FLClient,
    ParticipationSampler,
    nan_mean,
)
from repro.fl.checkpoint import load_checkpoint, load_history
from repro.nn import build_model

from ..conftest import make_tiny_federation
from .test_exact_resume import assert_bit_identical

FEATURE_DIM = 16


def make_registry(bundle, num_clients=4, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(bundle.train))
    parts = np.array_split(order, num_clients)
    return ClientRegistry(
        bundle,
        parts,
        ["mlp_small"],
        feature_dim=FEATURE_DIM,
        test_fraction=0.2,
        base_seed=seed,
        **kwargs,
    )


class TestClientModelStore:
    def _state(self, rng):
        return {
            "layer.weight": rng.normal(size=(4, 3)).astype(np.float64),
            "layer.bias": rng.normal(size=4).astype(np.float32),
        }

    def test_round_trip_preserves_dtypes_and_values(self, tmp_path):
        store = ClientModelStore(str(tmp_path / "store"))
        rng = np.random.default_rng(0)
        state = self._state(rng)
        rng_state = {"bit_generator": "PCG64", "state": {"state": 123, "inc": 45}}
        store.save(7, state, rng_state)
        loaded, loaded_rng = store.load(7)
        assert set(loaded) == set(state)
        for key in state:
            assert loaded[key].dtype == state[key].dtype
            np.testing.assert_array_equal(loaded[key], state[key])
        assert loaded_rng == rng_state

    def test_has_and_clear(self, tmp_path):
        store = ClientModelStore(str(tmp_path / "store"))
        assert not store.has(0)
        store.save(0, self._state(np.random.default_rng(1)), {"s": 1})
        assert store.has(0)
        store.clear()
        assert not store.has(0)

    def test_owned_tempdir_removed_on_close(self):
        store = ClientModelStore()
        store.save(0, self._state(np.random.default_rng(2)), {"s": 1})
        root = store.root
        assert root is not None and os.path.isdir(root)
        store.close()
        assert not os.path.exists(root)

    def test_explicit_root_left_in_place(self, tmp_path):
        root = str(tmp_path / "store")
        store = ClientModelStore(root)
        store.save(0, self._state(np.random.default_rng(3)), {"s": 1})
        store.close()
        assert os.path.isdir(root)


class TestClientRegistry:
    def test_derived_client_matches_eager_recipe(self, tiny_bundle):
        reg = make_registry(tiny_bundle, seed=5)
        try:
            cid = 2
            train_idx, test_idx = split_local_train_test(
                reg._parts[cid], test_fraction=0.2, seed=5 + 1000 + cid
            )
            model = build_model(
                "mlp_small",
                tiny_bundle.num_classes,
                tiny_bundle.image_shape,
                feature_dim=FEATURE_DIM,
                rng=5 + 2000 + cid,
            )
            eager = FLClient(
                client_id=cid,
                model=model,
                x_train=tiny_bundle.train.x[train_idx],
                y_train=tiny_bundle.train.y[train_idx],
                x_test=tiny_bundle.train.x[test_idx],
                y_test=tiny_bundle.train.y[test_idx],
                num_classes=tiny_bundle.num_classes,
                seed=5 + 3000 + cid,
                model_name="mlp_small",
            )
            derived = reg[cid]
            np.testing.assert_array_equal(derived.x_train, eager.x_train)
            np.testing.assert_array_equal(derived.y_test, eager.y_test)
            for key, value in eager.model.state_dict().items():
                np.testing.assert_array_equal(
                    derived.model.state_dict()[key], value
                )
            assert derived.rng_state() == eager.rng_state()
        finally:
            reg.close()

    def test_train_size_matches_materialised_split(self, tiny_bundle):
        # odd shard sizes, including the n=1 and n=0 degenerate cases
        parts = [
            np.arange(0, 1),
            np.arange(1, 3),
            np.arange(3, 10),
            np.arange(10, 10),
            np.arange(10, 63),
        ]
        reg = ClientRegistry(
            tiny_bundle, parts, ["mlp_small"],
            feature_dim=FEATURE_DIM, test_fraction=0.2, base_seed=0,
        )
        try:
            for cid in range(len(reg)):
                assert reg.train_size(cid) == reg.peek(cid).num_samples
        finally:
            reg.close()

    def test_peek_stays_clean_getitem_marks_dirty(self, tiny_bundle):
        reg = make_registry(tiny_bundle)
        try:
            reg.peek(0)
            assert reg.dirty_ids() == []
            reg[1]
            assert reg.dirty_ids() == [1]
        finally:
            reg.close()

    def test_settle_enforces_max_live_lru(self, tiny_bundle):
        reg = make_registry(tiny_bundle, max_live=2)
        try:
            for cid in range(4):
                reg.peek(cid)
            assert reg.stats()["live"] == 4  # no mid-round eviction
            reg.settle()
            stats = reg.stats()
            assert stats["live"] == 2
            assert stats["evictions"] == 2
            assert stats["spills"] == 0  # clean clients are dropped, not spilled
            # the two most recently used survive
            assert set(reg._live) == {2, 3}
        finally:
            reg.close()

    def test_dirty_eviction_spills_and_hydrates_mutated_state(self, tiny_bundle):
        reg = make_registry(tiny_bundle, max_live=1)
        try:
            client = reg[0]
            state = client.model.state_dict()
            key = next(iter(state))
            state[key] = state[key] + 1.0
            mutated = state[key]
            client.model.load_state_dict(state)
            reg.peek(1)  # push client 0 to LRU position
            reg.settle()
            assert reg.stats()["spills"] == 1
            assert 0 not in reg._live
            rehydrated = reg[0]
            np.testing.assert_array_equal(
                rehydrated.model.state_dict()[key], mutated
            )
            assert reg.stats()["hydrations"] == 1
        finally:
            reg.close()

    def test_clean_eviction_rebuilds_identically(self, tiny_bundle):
        reg = make_registry(tiny_bundle, max_live=1)
        try:
            before = {
                k: v.copy() for k, v in reg.peek(0).model.state_dict().items()
            }
            reg.peek(1)
            reg.settle()
            after = reg.peek(0).model.state_dict()
            for key, value in before.items():
                np.testing.assert_array_equal(after[key], value)
        finally:
            reg.close()

    def test_max_live_validation(self, tiny_bundle):
        with pytest.raises(ValueError):
            make_registry(tiny_bundle, max_live=0)


class TestBoundedRunEquivalence:
    """A bounded registry (spill/evict/hydrate every round) must produce
    the exact run an unbounded one does — the tentpole's correctness
    claim, CI-enforced."""

    def _run(self, bundle, **fed_kwargs):
        fed = make_tiny_federation(
            bundle, num_clients=4, server_model=None, **fed_kwargs
        )
        algo = build_algorithm("fedproto", fed, seed=0, epoch_scale=0.1)
        try:
            return algo.run(3, eval_every=1)
        finally:
            fed.close()

    def test_bounded_registry_bit_identical_to_unbounded(self, tiny_bundle):
        unbounded = self._run(tiny_bundle)
        bounded = self._run(tiny_bundle, max_live_clients=1)
        assert_bit_identical(unbounded, bounded)

    def test_bounded_resume_bit_identical(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "bounded.ckpt.npz")
        full = self._run(tiny_bundle, max_live_clients=1)

        fed = make_tiny_federation(
            tiny_bundle, num_clients=4, server_model=None, max_live_clients=1
        )
        algo = build_algorithm("fedproto", fed, seed=0, epoch_scale=0.1)
        try:
            algo.run(2, eval_every=1, checkpoint_every=2, checkpoint_path=path)
        finally:
            fed.close()

        fed = make_tiny_federation(
            tiny_bundle, num_clients=4, server_model=None, max_live_clients=1
        )
        algo = build_algorithm("fedproto", fed, seed=0, epoch_scale=0.1)
        try:
            done = load_checkpoint(algo, path)
            assert done == 2
            history = load_history(path)
            resumed = algo.run(3 - done, eval_every=1, history=history)
        finally:
            fed.close()

        assert_bit_identical(full, resumed)

    def test_parallel_executor_rejected_with_bounded_registry(self):
        with pytest.raises(ValueError, match="parallel"):
            FederationConfig(
                num_clients=4,
                client_models="mlp_small",
                max_live_clients=2,
                executor="parallel",
            )


class TestCohortSampling:
    def _reference_sample(self, rng, num_clients, dropout_prob, min_available):
        """The historical per-client scalar loop, verbatim."""
        available = []
        for cid in range(num_clients):
            if rng.random() >= dropout_prob:
                available.append(cid)
        shortfall = min_available - len(available)
        if shortfall > 0:
            dropped = np.setdiff1d(
                np.arange(num_clients), np.asarray(available, dtype=np.int64)
            )
            extra = rng.choice(dropped, size=shortfall, replace=False)
            available.extend(int(cid) for cid in extra)
        return sorted(available)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("dropout_prob,min_available", [(0.3, 1), (0.9, 5)])
    def test_vectorised_draws_bit_identical_to_loop(
        self, seed, dropout_prob, min_available
    ):
        sampler = ParticipationSampler(
            12, dropout_prob=dropout_prob, min_available=min_available, seed=seed
        )
        reference_rng = np.random.default_rng(seed)
        for _ in range(50):
            assert sampler.sample() == self._reference_sample(
                reference_rng, 12, dropout_prob, min_available
            )

    def test_cohort_is_sorted_subset_of_requested_size(self):
        sampler = ParticipationSampler(100, clients_per_round=8, seed=3)
        for _ in range(20):
            ids = sampler.sample()
            assert len(ids) == 8
            assert ids == sorted(ids)
            assert len(set(ids)) == 8
            assert all(0 <= cid < 100 for cid in ids)

    def test_cohort_varies_across_rounds_and_is_seed_deterministic(self):
        a = [ParticipationSampler(50, clients_per_round=5, seed=4).sample()
             for _ in range(1)]
        sampler_b = ParticipationSampler(50, clients_per_round=5, seed=4)
        assert sampler_b.sample() == a[0]
        assert sampler_b.sample() != a[0] or True  # stream advances
        rounds = [sampler_b.sample() for _ in range(10)]
        assert len({tuple(r) for r in rounds}) > 1

    def test_cohort_with_dropout_stays_within_cohort(self):
        sampler = ParticipationSampler(
            40, clients_per_round=10, dropout_prob=0.5, min_available=2, seed=0
        )
        for _ in range(30):
            ids = sampler.sample()
            assert 2 <= len(ids) <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticipationSampler(4, clients_per_round=0)
        with pytest.raises(ValueError):
            ParticipationSampler(4, clients_per_round=5)
        with pytest.raises(ValueError):
            # min_available is checked against the cohort, not the population
            ParticipationSampler(10, clients_per_round=3, min_available=4)


class TestSampledEvaluation:
    def test_full_evaluation_when_unset(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle, num_clients=4)
        try:
            assert list(fed.eval_client_ids(0)) == [0, 1, 2, 3]
        finally:
            fed.close()

    def test_sampled_evaluation_is_stateless_and_round_keyed(self, tiny_bundle):
        fed = make_tiny_federation(tiny_bundle, num_clients=4, eval_clients=2)
        try:
            ids_r0 = fed.eval_client_ids(0)
            assert len(ids_r0) == 2 and list(ids_r0) == sorted(ids_r0)
            # stateless: same round replays the same sample (resume safety)
            assert fed.eval_client_ids(0) == ids_r0
            samples = {tuple(fed.eval_client_ids(r)) for r in range(20)}
            assert len(samples) > 1  # round-keyed, not frozen
        finally:
            fed.close()


def singleton_class_bundle(bundle, singleton_class=5):
    """Rebuild ``bundle`` so ``singleton_class`` has exactly one train
    sample (or zero with ``keep=0`` via ``drop_class_bundle``)."""
    y = bundle.train.y
    keep = np.flatnonzero(y != singleton_class)
    one = np.flatnonzero(y == singleton_class)[:1]
    idx = np.sort(np.concatenate([keep, one]))
    train = Dataset(
        bundle.train.x[idx], y[idx], bundle.num_classes, name="singleton"
    )
    return FederatedDataBundle(
        train=train,
        test=bundle.test,
        public=bundle.public,
        public_true_labels=bundle.public_true_labels,
        num_classes=bundle.num_classes,
        name="singleton",
    )


def drop_class_bundle(bundle, dropped_class=5):
    y = bundle.train.y
    idx = np.flatnonzero(y != dropped_class)
    train = Dataset(
        bundle.train.x[idx], y[idx], bundle.num_classes, name="dropped"
    )
    return FederatedDataBundle(
        train=train,
        test=bundle.test,
        public=bundle.public,
        public_true_labels=bundle.public_true_labels,
        num_classes=bundle.num_classes,
        name="dropped",
    )


GROUPS = [[0, 1], [2, 3], [4], [5]]


class TestSmallShardRegressions:
    """Satellites 1 and 4: singleton and empty shards must not poison a
    run — NaN-aware accuracy for empty local test sets, logged dropout
    for empty train shards."""

    def test_by_classes_singleton_shard_run_is_nan_aware(self, tiny_bundle):
        bundle = singleton_class_bundle(tiny_bundle)
        fed = make_tiny_federation(
            bundle,
            num_clients=len(GROUPS),
            server_model=None,
            partition=("by_classes", {"class_groups": GROUPS}),
        )
        algo = build_algorithm("fedproto", fed, seed=0, epoch_scale=0.1)
        try:
            # the singleton client trains on its 1 sample, has no local test
            assert fed.client_train_size(3) == 1
            assert len(fed.peek_client(3).x_test) == 0
            history = algo.run(2, eval_every=1)
        finally:
            fed.close()
        record = history.records[-1]
        assert math.isnan(record.client_accs[3])
        assert all(not math.isnan(a) for a in record.client_accs[:3])
        # the NaN-aware mean reflects the measurable clients only
        assert record.mean_client_acc == nan_mean(record.client_accs[:3])
        assert not math.isnan(record.mean_client_acc)

    def test_empty_shard_degrades_to_logged_dropout(self, tiny_bundle):
        bundle = drop_class_bundle(tiny_bundle)
        fed = make_tiny_federation(
            bundle,
            num_clients=len(GROUPS),
            server_model=None,
            partition=("by_classes", {"class_groups": GROUPS}),
        )
        algo = build_algorithm("fedproto", fed, seed=0, epoch_scale=0.1)
        try:
            assert fed.client_train_size(3) == 0
            history = algo.run(2, eval_every=1)
        finally:
            fed.close()
        assert len(history.records) == 2
        empties = [
            e for e in algo.dropout_log.events if e.reason == "empty_shard"
        ]
        assert {e.client_id for e in empties} == {3}
        assert {e.round_index for e in empties} == {1, 2}

    def test_nan_mean(self):
        nan = float("nan")
        assert nan_mean([1.0, 3.0]) == 2.0
        assert nan_mean([1.0, nan, 3.0]) == 2.0
        assert math.isnan(nan_mean([nan, nan]))
        assert math.isnan(nan_mean([]))
