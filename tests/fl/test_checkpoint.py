"""Tests for checkpoint save/resume."""

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.core import FedPKD
from repro.fl.checkpoint import load_checkpoint, save_checkpoint

from ..conftest import make_tiny_federation


def make_algo(bundle, seed=0):
    fed = make_tiny_federation(bundle, server_model="mlp_medium", seed=seed)
    return build_algorithm("fedpkd", fed, seed=seed, epoch_scale=0.1)


class TestCheckpoint:
    def test_roundtrip_restores_weights_and_round(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=2)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        assert fresh.round_index == 0
        restored_round = load_checkpoint(fresh, path)
        assert restored_round == 2
        assert fresh.round_index == 2

        np.testing.assert_allclose(
            fresh.server.model.classifier.weight.data,
            algo.server.model.classifier.weight.data,
            atol=1e-6,
        )
        for a, b in zip(fresh.clients, algo.clients):
            np.testing.assert_allclose(
                a.model.classifier.weight.data,
                b.model.classifier.weight.data,
                atol=1e-6,
            )

    def test_algorithm_state_restored(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        load_checkpoint(fresh, path)
        assert fresh.global_prototypes is not None
        finite = ~np.isnan(algo.global_prototypes)
        np.testing.assert_allclose(
            fresh.global_prototypes[finite], algo.global_prototypes[finite], atol=1e-6
        )

    def test_resumed_run_continues(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        history = algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        load_checkpoint(fresh, path)
        resumed = fresh.run(rounds=1)
        assert resumed.records[-1].round_index == 2

    def test_client_count_mismatch_rejected(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fed = make_tiny_federation(
            tiny_bundle, num_clients=4, server_model="mlp_medium"
        )
        other = build_algorithm("fedpkd", fed, epoch_scale=0.1)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_missing_file(self, tiny_bundle):
        algo = make_algo(tiny_bundle)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(algo, "/nonexistent/ckpt.npz")

    def test_no_server_model_algorithms(self, tiny_bundle, tmp_path):
        fed = make_tiny_federation(tiny_bundle, server_model=None)
        algo = build_algorithm("fedmd", fed, epoch_scale=0.1)
        algo.run(rounds=1)
        path = str(tmp_path / "fedmd.npz")
        save_checkpoint(algo, path)

        fresh_fed = make_tiny_federation(tiny_bundle, server_model=None)
        fresh = build_algorithm("fedmd", fresh_fed, epoch_scale=0.1)
        assert load_checkpoint(fresh, path) == 1
