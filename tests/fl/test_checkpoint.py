"""Tests for checkpoint save/resume: state coverage, validation, crash safety."""

import json
import os

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.core import FedPKD
from repro.fl.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    load_history,
    read_checkpoint_meta,
    save_checkpoint,
)

from ..conftest import make_tiny_federation


def make_algo(bundle, seed=0, **fed_kwargs):
    fed = make_tiny_federation(bundle, server_model="mlp_medium", seed=seed, **fed_kwargs)
    return build_algorithm("fedpkd", fed, seed=seed, epoch_scale=0.1)


class TestCheckpoint:
    def test_roundtrip_restores_weights_and_round(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=2)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        assert fresh.round_index == 0
        restored_round = load_checkpoint(fresh, path)
        assert restored_round == 2
        assert fresh.round_index == 2

        np.testing.assert_allclose(
            fresh.server.model.classifier.weight.data,
            algo.server.model.classifier.weight.data,
            atol=1e-6,
        )
        for a, b in zip(fresh.clients, algo.clients):
            np.testing.assert_allclose(
                a.model.classifier.weight.data,
                b.model.classifier.weight.data,
                atol=1e-6,
            )

    def test_algorithm_state_restored(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        load_checkpoint(fresh, path)
        assert fresh.global_prototypes is not None
        finite = ~np.isnan(algo.global_prototypes)
        np.testing.assert_allclose(
            fresh.global_prototypes[finite], algo.global_prototypes[finite], atol=1e-6
        )

    def test_rng_streams_restored(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle, dropout_prob=0.3)
        algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0, dropout_prob=0.3)
        load_checkpoint(fresh, path)
        assert fresh.rng.bit_generator.state == algo.rng.bit_generator.state
        assert (
            fresh.server.rng.bit_generator.state
            == algo.server.rng.bit_generator.state
        )
        assert (
            fresh.federation.participation.rng.bit_generator.state
            == algo.federation.participation.rng.bit_generator.state
        )
        for a, b in zip(fresh.clients, algo.clients):
            assert a.rng_state() == b.rng_state()

    def test_channel_ledger_restored(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        assert fresh.channel.total_bytes == 0
        load_checkpoint(fresh, path)
        assert fresh.channel.total_bytes == algo.channel.total_bytes > 0
        assert fresh.channel.per_client_mb() == algo.channel.per_client_mb()
        assert [
            (s.uplink, s.downlink) for s in fresh.channel.round_marks
        ] == [(s.uplink, s.downlink) for s in algo.channel.round_marks]

    def test_history_roundtrips_through_checkpoint(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        history = algo.run(rounds=2)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path, history=history)

        restored = load_history(path)
        assert restored is not None
        assert restored.to_dict() == history.to_dict()

    def test_load_history_none_when_absent(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)
        assert load_history(path) is None

    def test_read_checkpoint_meta(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)
        meta = read_checkpoint_meta(path)
        assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert meta["round_index"] == 1
        assert meta["fingerprint"]["algorithm"] == "fedpkd"

    def test_resumed_run_continues(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        history = algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fresh = make_algo(tiny_bundle, seed=0)
        load_checkpoint(fresh, path)
        resumed = fresh.run(rounds=1)
        assert resumed.records[-1].round_index == 2

    def test_missing_file(self, tiny_bundle):
        algo = make_algo(tiny_bundle)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(algo, "/nonexistent/ckpt.npz")

    def test_no_server_model_algorithms(self, tiny_bundle, tmp_path):
        fed = make_tiny_federation(tiny_bundle, server_model=None)
        algo = build_algorithm("fedmd", fed, epoch_scale=0.1)
        algo.run(rounds=1)
        path = str(tmp_path / "fedmd.npz")
        save_checkpoint(algo, path)

        fresh_fed = make_tiny_federation(tiny_bundle, server_model=None)
        fresh = build_algorithm("fedmd", fresh_fed, epoch_scale=0.1)
        assert load_checkpoint(fresh, path) == 1


class TestFingerprintValidation:
    def test_client_count_mismatch_rejected(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fed = make_tiny_federation(
            tiny_bundle, num_clients=4, server_model="mlp_medium"
        )
        other = build_algorithm("fedpkd", fed, epoch_scale=0.1)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_architecture_mismatch_names_client_and_param(
        self, tiny_bundle, tmp_path
    ):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        # heterogeneous assignment: client 1 now runs mlp_medium instead of
        # the checkpoint's mlp_small — must be rejected up front, naming the
        # client, not deep inside load_state_dict
        hetero = make_tiny_federation(
            tiny_bundle,
            client_models=["mlp_small", "mlp_medium", "mlp_small"],
            server_model="mlp_medium",
        )
        other = build_algorithm("fedpkd", hetero, epoch_scale=0.1)
        with pytest.raises(CheckpointError, match="client 1"):
            load_checkpoint(other, path)
        # validation happens before mutation: client 0 weights untouched
        fresh = make_algo(tiny_bundle, seed=0)
        np.testing.assert_array_equal(
            other.clients[0].model.classifier.weight.data.shape,
            fresh.clients[0].model.classifier.weight.data.shape,
        )

    def test_algorithm_mismatch_rejected(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        fed = make_tiny_federation(tiny_bundle, server_model="mlp_medium")
        other = build_algorithm("naive_kd", fed, epoch_scale=0.1)
        with pytest.raises(CheckpointError, match="fedpkd"):
            load_checkpoint(other, path)

    def test_server_presence_mismatch_rejected(self, tiny_bundle, tmp_path):
        fed = make_tiny_federation(tiny_bundle, server_model=None)
        algo = build_algorithm("fedproto", fed, epoch_scale=0.1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)

        # fedproto never has a server model, so fake one structurally: load a
        # with-server fedpkd checkpoint into a serverless fedproto is already
        # covered by the algorithm check; here check the server direction via
        # meta inspection
        meta = read_checkpoint_meta(path)
        assert meta["fingerprint"]["server"] is None


class TestCrashSafety:
    def test_interrupted_save_preserves_previous_checkpoint(
        self, tiny_bundle, tmp_path, monkeypatch
    ):
        algo = make_algo(tiny_bundle)
        algo.run(rounds=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)
        good_bytes = open(path, "rb").read()

        algo.run(rounds=1)

        real_savez = np.savez

        def dying_savez(file, **arrays):
            # write a partial archive, then die mid-save
            real_savez(file, **arrays)
            file.flush()
            file.truncate(128)
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", dying_savez)
        with pytest.raises(OSError):
            save_checkpoint(algo, path)
        monkeypatch.undo()

        # the previous checkpoint is byte-identical and loadable; no tmp
        # litter remains
        assert open(path, "rb").read() == good_bytes
        assert [p for p in os.listdir(tmp_path) if ".tmp." in p] == []
        fresh = make_algo(tiny_bundle, seed=0)
        assert load_checkpoint(fresh, path) == 1

    def test_truncated_file_raises_checkpoint_error(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(blob[: len(blob) // 3])

        fresh = make_algo(tiny_bundle, seed=0)
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(fresh, path)

    def test_garbage_file_raises_checkpoint_error(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as f:
            f.write(b"this is not a checkpoint at all")
        algo = make_algo(tiny_bundle)
        with pytest.raises(CheckpointError):
            load_checkpoint(algo, path)

    def test_unversioned_npz_rejected(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, **{"client0::w": np.zeros(3)})
        algo = make_algo(tiny_bundle)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(algo, path)

    def test_future_version_rejected(self, tiny_bundle, tmp_path):
        algo = make_algo(tiny_bundle)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(algo, path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        arrays["__meta__format_version"] = np.array(
            CHECKPOINT_FORMAT_VERSION + 1, dtype=np.int64
        )
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(algo, path)


class TestAutosave:
    def test_run_autosaves_at_cadence(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "auto.npz")
        algo = make_algo(tiny_bundle)
        history = algo.run(rounds=2, checkpoint_every=2, checkpoint_path=path)
        meta = read_checkpoint_meta(path)
        assert meta["round_index"] == 2
        restored = load_history(path)
        assert len(restored.records) == len(history.records)

    def test_autosave_fires_on_final_round(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "auto.npz")
        algo = make_algo(tiny_bundle)
        algo.run(rounds=3, checkpoint_every=2, checkpoint_path=path)
        assert read_checkpoint_meta(path)["round_index"] == 3

    def test_federation_config_threads_autosave(self, tiny_bundle, tmp_path):
        path = str(tmp_path / "auto.npz")
        fed = make_tiny_federation(
            tiny_bundle,
            server_model="mlp_medium",
            checkpoint_every=1,
            checkpoint_path=path,
        )
        algo = build_algorithm("fedpkd", fed, epoch_scale=0.1)
        algo.run(rounds=1)
        assert os.path.exists(path)
        assert read_checkpoint_meta(path)["round_index"] == 1
