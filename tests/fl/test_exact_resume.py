"""Exact-resume equivalence: resumed runs are bit-identical to uninterrupted.

The paper's headline numbers are cumulative (MB-to-target-accuracy), so a
resume that zeroes the comm ledger or resets an RNG stream silently
corrupts results.  These tests enforce the contract end to end: run N
rounds uninterrupted vs. autosave a checkpoint at N/2, rebuild a *fresh*
federation, resume — the finished histories must match bit for bit
(accuracies, per-client accuracies, comm bytes, extras) under both the
serial and the parallel executor.
"""

import math

import pytest

from repro.algorithms import build_algorithm
from repro.fl.checkpoint import load_checkpoint, load_history

from ..conftest import make_tiny_federation

ROUNDS = 4

# FedPKD plus two baselines, one of which (FedProto) carries cross-round
# algorithm state outside the models (its global prototypes)
CASES = [
    ("fedpkd", "mlp_medium"),
    ("fedproto", None),
    ("fedmd", None),
]


def _make_algo(bundle, algorithm, server_model, executor, **fed_kwargs):
    fed = make_tiny_federation(
        bundle,
        server_model=server_model,
        executor=executor,
        max_workers=2 if executor == "parallel" else None,
        **fed_kwargs,
    )
    return build_algorithm(algorithm, fed, seed=0, epoch_scale=0.1), fed


def _deterministic_extras(record):
    """Extras minus wall-clock noise (``time/*`` stage timings)."""
    return {k: v for k, v in record.extras.items() if not k.startswith("time/")}


def assert_bit_identical(full, resumed):
    assert len(full.records) == len(resumed.records)
    for a, b in zip(full.records, resumed.records):
        assert a.round_index == b.round_index
        assert a.server_acc == b.server_acc or (
            math.isnan(a.server_acc) and math.isnan(b.server_acc)
        )
        assert a.client_accs == b.client_accs
        assert a.comm_uplink_bytes == b.comm_uplink_bytes
        assert a.comm_downlink_bytes == b.comm_downlink_bytes
        assert _deterministic_extras(a) == _deterministic_extras(b)


@pytest.mark.parametrize("algorithm,server_model", CASES)
@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_resume_is_bit_identical(
    tiny_bundle, tmp_path, algorithm, server_model, executor
):
    path = str(tmp_path / f"{algorithm}-{executor}.ckpt.npz")

    # uninterrupted reference run
    algo, fed = _make_algo(tiny_bundle, algorithm, server_model, executor)
    try:
        full = algo.run(ROUNDS, eval_every=1)
    finally:
        fed.close()

    # first half, autosaving at the midpoint
    algo, fed = _make_algo(tiny_bundle, algorithm, server_model, executor)
    try:
        algo.run(
            ROUNDS // 2,
            eval_every=1,
            checkpoint_every=ROUNDS // 2,
            checkpoint_path=path,
        )
    finally:
        fed.close()

    # fresh federation + resume for the second half
    algo, fed = _make_algo(tiny_bundle, algorithm, server_model, executor)
    try:
        done = load_checkpoint(algo, path)
        assert done == ROUNDS // 2
        history = load_history(path)
        assert history is not None and len(history.records) == ROUNDS // 2
        resumed = algo.run(ROUNDS - done, eval_every=1, history=history)
    finally:
        fed.close()

    assert_bit_identical(full, resumed)


def test_resume_with_participation_dropout(tiny_bundle, tmp_path):
    """The ParticipationSampler RNG stream must survive the checkpoint."""
    path = str(tmp_path / "dropout.ckpt.npz")

    algo, _ = _make_algo(
        tiny_bundle, "fedproto", None, "serial", dropout_prob=0.4
    )
    full = algo.run(ROUNDS, eval_every=1)

    algo, _ = _make_algo(
        tiny_bundle, "fedproto", None, "serial", dropout_prob=0.4
    )
    algo.run(ROUNDS // 2, eval_every=1, checkpoint_every=ROUNDS // 2,
             checkpoint_path=path)

    algo, _ = _make_algo(
        tiny_bundle, "fedproto", None, "serial", dropout_prob=0.4
    )
    done = load_checkpoint(algo, path)
    resumed = algo.run(ROUNDS - done, eval_every=1, history=load_history(path))

    assert_bit_identical(full, resumed)


def test_harness_resume_flow(tiny_bundle, tmp_path):
    """run_algorithm(resume=True) restores and finishes an interrupted run."""
    from repro.experiments.harness import ExperimentSetting, run_algorithm

    path = str(tmp_path / "harness.ckpt.npz")
    base = dict(dataset="cifar10", scale="tiny", seed=0)

    full = run_algorithm(
        ExperimentSetting(**base), "fedproto", rounds=ROUNDS, eval_every=1
    )

    setting = ExperimentSetting(
        **base, checkpoint_every=ROUNDS // 2, checkpoint_path=path
    )
    run_algorithm(setting, "fedproto", rounds=ROUNDS // 2, eval_every=1)
    resumed = run_algorithm(
        setting, "fedproto", rounds=ROUNDS, eval_every=1, resume=True
    )

    assert_bit_identical(full, resumed)

    # resuming an already-finished run is a no-op returning the history
    again = run_algorithm(
        setting, "fedproto", rounds=ROUNDS, eval_every=1, resume=True
    )
    assert_bit_identical(full, again)
