"""Observability survives async-engine resume.

The tracer appends to an existing trace behind a ``resume`` marker (it
must never truncate), the restored run stays bit-identical to an
uninterrupted one, and mid-eval-interval pending state (round timings
accumulated between eval records) makes it through the checkpoint.
These are the async-engine counterparts of tests/fl/test_exact_resume.py
and tests/fl/test_pending_state.py.
"""

import json

import pytest

from repro.algorithms import build_algorithm
from repro.experiments.harness import ExperimentSetting, run_algorithm
from repro.fl.async_engine import AsyncRoundEngine
from repro.fl.checkpoint import load_checkpoint, read_checkpoint_meta
from repro.obs import validate_trace_file

from ..conftest import make_tiny_federation
from .test_exact_resume import assert_bit_identical

ROUNDS = 4


def _async_setting(tmp_path, **extra):
    return ExperimentSetting(
        dataset="cifar10",
        scale="tiny",
        seed=0,
        engine="async",
        max_staleness=1,
        buffer_size=2,
        **extra,
    )


def _load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        return [json.loads(line) for line in f if line.strip()]


def test_async_resume_appends_to_trace(tmp_path):
    """Resuming reopens the trace in append mode behind a resume marker."""
    ckpt = str(tmp_path / "async.ckpt.npz")
    trace = str(tmp_path / "async.trace.jsonl")

    setting = _async_setting(
        tmp_path, checkpoint_every=ROUNDS // 2, checkpoint_path=ckpt,
        trace_path=trace,
    )
    run_algorithm(setting, "fedpkd", rounds=ROUNDS // 2, eval_every=1)
    first_half = _load_events(trace)
    assert first_half[0]["name"] == "run_start"

    run_algorithm(setting, "fedpkd", rounds=ROUNDS, eval_every=1, resume=True)

    # the whole file — old half plus appended half — still validates
    count = validate_trace_file(trace)
    events = _load_events(trace)
    assert count == len(events)
    # the first half survived verbatim, then the resume marker
    assert events[: len(first_half)] == first_half
    marker = events[len(first_half)]
    assert marker["name"] == "resume"
    assert marker["attrs"]["round_index"] == ROUNDS // 2
    # the appended half holds the remaining rounds' spans
    resumed_rounds = [
        e for e in events[len(first_half):]
        if e.get("scope") == "round" and e.get("name") == "round"
    ]
    assert len(resumed_rounds) == ROUNDS - ROUNDS // 2


def test_async_resume_is_bit_identical(tmp_path):
    """Checkpoint/restore under the async engine changes no history bits."""
    ckpt = str(tmp_path / "bits.ckpt.npz")

    full = run_algorithm(
        _async_setting(tmp_path), "fedpkd", rounds=ROUNDS, eval_every=1
    )

    setting = _async_setting(
        tmp_path, checkpoint_every=ROUNDS // 2, checkpoint_path=ckpt
    )
    run_algorithm(setting, "fedpkd", rounds=ROUNDS // 2, eval_every=1)
    resumed = run_algorithm(
        setting, "fedpkd", rounds=ROUNDS, eval_every=1, resume=True
    )

    assert_bit_identical(full, resumed)


def _make_async(bundle):
    fed = make_tiny_federation(bundle, server_model="mlp_small")
    algo = build_algorithm("fedpkd", fed, seed=0, epoch_scale=0.1)
    return AsyncRoundEngine(algo, max_staleness=1, buffer_size=2), fed


def test_async_resume_restores_pending_state(tiny_bundle, tmp_path):
    """A checkpoint mid-eval-interval keeps the interval's pending extras.

    With ``eval_every=2`` and ``checkpoint_every=1``, interrupting during
    round 2 leaves round 1's timings only in the checkpoint's pending
    ledger; resuming must fold them into the eventual round-2 record.
    """
    path = str(tmp_path / "pending.ckpt.npz")
    engine, fed = _make_async(tiny_bundle)
    original = engine._run_engine_round
    calls = {"n": 0}

    def interrupted():
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return original()

    engine._run_engine_round = interrupted
    try:
        with pytest.raises(KeyboardInterrupt):
            engine.run(
                2, eval_every=2, checkpoint_every=1, checkpoint_path=path
            )
    finally:
        fed.close()

    pending = read_checkpoint_meta(path)["pending"]
    assert pending["stage_times"]  # round 1's timings made the save
    assert pending["wall_time_s"] > 0.0

    engine, fed = _make_async(tiny_bundle)
    try:
        assert load_checkpoint(engine.algo, path) == 1
        history = engine.run(1, eval_every=2)
    finally:
        fed.close()
    record = history.records[-1]
    assert record.round_index == 2
    # the single record spans both rounds: round 1's checkpointed
    # timings are a floor for what it reports
    for stage, seconds in pending["stage_times"].items():
        assert record.extras[f"time/{stage}"] >= seconds
    assert record.wall_time_s >= pending["wall_time_s"]
