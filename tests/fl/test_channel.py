"""Tests for communication accounting."""

import numpy as np
import pytest

from repro.fl import CommChannel


class TestChannel:
    def test_upload_download_separation(self):
        ch = CommChannel()
        ch.upload(0, np.zeros(10))
        ch.download(0, np.zeros(5))
        snap = ch.snapshot()
        assert snap.uplink == 40
        assert snap.downlink == 20
        assert snap.total == 60

    def test_per_client_accounting(self):
        ch = CommChannel()
        ch.upload(0, np.zeros(10))
        ch.upload(1, np.zeros(20))
        assert ch.client_bytes(0) == 40
        assert ch.client_bytes(1) == 80
        assert ch.client_bytes(99) == 0

    def test_broadcast(self):
        ch = CommChannel()
        total = ch.broadcast([0, 1, 2], np.zeros(10))
        assert total == 120
        assert ch.snapshot().downlink == 120

    def test_mb_conversion(self):
        ch = CommChannel()
        ch.upload(0, np.zeros(1024 * 1024 // 4))
        assert abs(ch.total_mb - 1.0) < 1e-12

    def test_round_marks_are_cumulative(self):
        ch = CommChannel()
        ch.upload(0, np.zeros(10))
        first = ch.mark_round()
        ch.upload(0, np.zeros(10))
        second = ch.mark_round()
        assert first.uplink == 40
        assert second.uplink == 80
        assert len(ch.round_marks) == 2

    def test_nested_payload(self):
        ch = CommChannel()
        ch.upload(0, {"logits": np.zeros((5, 3)), "protos": [np.zeros(4)]})
        assert ch.snapshot().uplink == (15 + 4) * 4

    def test_reset(self):
        ch = CommChannel()
        ch.upload(0, np.zeros(10))
        ch.mark_round()
        ch.reset()
        assert ch.total_bytes == 0
        assert ch.round_marks == []

    def test_per_client_mb_map(self):
        ch = CommChannel()
        ch.upload(2, np.zeros(10))
        ch.download(1, np.zeros(10))
        mb = ch.per_client_mb()
        assert set(mb) == {1, 2}
