"""Tests for lossy payload compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fl.compression import SCHEMES, dequantize, quantize, roundtrip
from repro.nn import payload_num_bytes


class TestFloat32:
    def test_lossless_at_float32(self):
        arr = np.random.default_rng(0).normal(size=(5, 4)).astype(np.float32)
        restored = dequantize(quantize(arr, "float32"))
        np.testing.assert_array_equal(restored, arr.astype(np.float64))

    def test_bytes(self):
        qt = quantize(np.zeros((10, 10)), "float32")
        assert qt.num_bytes == 400


class TestFloat16:
    def test_halves_bytes(self):
        qt = quantize(np.zeros((10, 10)), "float16")
        assert qt.num_bytes == 200

    def test_small_error(self):
        arr = np.random.default_rng(1).normal(size=(20, 10))
        restored = dequantize(quantize(arr, "float16"))
        assert np.abs(restored - arr).max() < 1e-2


class TestInt8:
    def test_quarter_bytes_plus_meta(self):
        qt = quantize(np.random.default_rng(2).normal(size=(10, 10)), "int8")
        # 100 bytes of data + 10 rows * (scale + zero) * 4 bytes
        assert qt.num_bytes == 100 + 10 * 8

    def test_bounded_error(self):
        arr = np.random.default_rng(3).normal(size=(50, 10)) * 5
        restored = dequantize(quantize(arr, "int8"))
        # max error is half a quantisation step per row
        steps = (arr.max(axis=1) - arr.min(axis=1)) / 255.0
        assert (np.abs(restored - arr).max(axis=1) <= steps + 1e-9).all()

    def test_argmax_usually_preserved(self):
        """Pseudo-labels (argmax) survive int8 quantisation for peaked logits."""
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(200, 10))
        logits[np.arange(200), rng.integers(0, 10, 200)] += 3.0
        restored = dequantize(quantize(logits, "int8"))
        agreement = (restored.argmax(axis=1) == logits.argmax(axis=1)).mean()
        assert agreement == 1.0

    def test_constant_rows_survive(self):
        arr = np.ones((3, 5)) * 7.0
        restored = dequantize(quantize(arr, "int8"))
        np.testing.assert_allclose(restored, arr, atol=1e-6)

    def test_1d_array(self):
        arr = np.linspace(-2, 2, 17)
        restored = dequantize(quantize(arr, "int8"))
        assert restored.shape == arr.shape
        assert np.abs(restored - arr).max() < 0.02


class TestPlumbing:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), "int4")

    def test_roundtrip_returns_both(self):
        arr = np.random.default_rng(5).normal(size=(4, 3))
        received, wire = roundtrip(arr, "int8")
        assert received.shape == arr.shape
        assert wire.num_bytes < arr.size * 4

    def test_payload_accounting_uses_wire_size(self):
        arr = np.zeros((10, 10))
        qt = quantize(arr, "int8")
        assert payload_num_bytes({"logits": qt}) == qt.num_bytes
        assert payload_num_bytes(qt) < payload_num_bytes(arr)


@given(
    arr=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(2, 8)),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    scheme=st.sampled_from(SCHEMES),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_error_bounded_by_scheme(arr, scheme):
    restored = dequantize(quantize(arr, scheme))
    assert restored.shape == arr.shape
    span = arr.max() - arr.min()
    # int8 stores its affine params as float32, adding representation error
    float32_err = 1e-6 * max(1.0, np.abs(arr).max())
    tolerance = {"float32": float32_err, "float16": 0.05 * max(1.0, np.abs(arr).max()),
                 "int8": span / 255.0 + float32_err}[scheme]
    assert np.abs(restored - arr).max() <= tolerance


class TestFedPKDIntegration:
    def test_int8_reduces_traffic_and_still_learns(self, tiny_bundle):
        from repro.core import FedPKD, FedPKDConfig
        from repro.fl import TrainingConfig

        from ..conftest import make_tiny_federation

        def run(scheme):
            fed = make_tiny_federation(tiny_bundle, server_model="mlp_medium")
            cfg = FedPKDConfig(
                local=TrainingConfig(epochs=2, batch_size=16),
                public=TrainingConfig(epochs=1, batch_size=16),
                server=TrainingConfig(epochs=3, batch_size=16),
                logit_compression=scheme,
            )
            algo = FedPKD(fed, config=cfg, seed=0)
            history = algo.run(rounds=2)
            return history.best_server_acc, fed.channel.total_bytes

        acc32, bytes32 = run("float32")
        acc8, bytes8 = run("int8")
        # logits shrink 4x; prototypes/indices stay float32, so at this tiny
        # public-set size the overall saving is smaller but still strict
        assert bytes8 < 0.75 * bytes32
        assert acc8 > 1.0 / tiny_bundle.num_classes  # still beats chance

    def test_bad_scheme_rejected(self):
        from repro.core import FedPKDConfig

        with pytest.raises(ValueError):
            FedPKDConfig(logit_compression="int2")


class TestEmptyArrays:
    """Regression: prototype-based filtering can reject *every* public
    sample for a client, producing zero-row logit matrices; quantisation
    must return a valid empty wire tensor instead of crashing."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shape", [(0,), (0, 5), (5, 0)])
    def test_empty_roundtrip_all_schemes(self, scheme, shape):
        arr = np.zeros(shape)
        restored, wire = roundtrip(arr, scheme)
        assert restored.shape == shape
        assert restored.size == 0
        assert wire.shape == shape
        assert wire.num_bytes == 0
        assert wire.data == b""

    def test_empty_int8_payload_accounting(self):
        qt = quantize(np.zeros((0, 8)), "int8")
        assert payload_num_bytes({"logits": qt}) == 0
