"""Tests for configuration validation."""

import pytest

from repro.fl import FederationConfig, TrainingConfig


class TestTrainingConfig:
    def test_defaults_valid(self):
        cfg = TrainingConfig()
        assert cfg.optimizer == "adam"

    def test_negative_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=-1)

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_bad_optimizer(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lbfgs")


class TestFederationConfig:
    def test_defaults(self):
        cfg = FederationConfig()
        assert cfg.client_model_names() == ["resnet20"] * cfg.num_clients

    def test_heterogeneous_cycling(self):
        cfg = FederationConfig(num_clients=5, client_models=["a", "b"])
        assert cfg.client_model_names() == ["a", "b", "a", "b", "a"]

    def test_empty_model_list(self):
        cfg = FederationConfig(client_models=[])
        with pytest.raises(ValueError):
            cfg.client_model_names()

    def test_bad_partition_kind(self):
        with pytest.raises(ValueError):
            FederationConfig(partition=("zipf", {}))

    def test_bad_num_clients(self):
        with pytest.raises(ValueError):
            FederationConfig(num_clients=0)

    def test_bad_dropout(self):
        with pytest.raises(ValueError):
            FederationConfig(dropout_prob=1.0)
