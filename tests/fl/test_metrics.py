"""Tests for RoundRecord / RunHistory metrics."""

import math

import pytest

from repro.fl import RoundRecord, RunHistory

MB = 1024 * 1024


def record(i, s_acc, c_accs, up=MB, down=MB):
    return RoundRecord(
        round_index=i,
        server_acc=s_acc,
        client_accs=c_accs,
        comm_uplink_bytes=up,
        comm_downlink_bytes=down,
    )


class TestRoundRecord:
    def test_mean_client_acc(self):
        assert record(1, 0.5, [0.2, 0.4]).mean_client_acc == pytest.approx(0.3)

    def test_empty_client_accs_nan(self):
        assert math.isnan(record(1, 0.5, []).mean_client_acc)

    def test_comm_mb(self):
        assert record(1, 0.5, [0.1], up=MB, down=MB).comm_total_mb == pytest.approx(2.0)


class TestRunHistory:
    def make_history(self):
        h = RunHistory("algo", dataset="ds")
        h.append(record(1, 0.2, [0.1], up=1 * MB, down=0))
        h.append(record(2, 0.5, [0.3], up=2 * MB, down=0))
        h.append(record(3, 0.4, [0.6], up=3 * MB, down=0))
        return h

    def test_final_and_best(self):
        h = self.make_history()
        assert h.final_server_acc == 0.4
        assert h.best_server_acc == 0.5
        assert h.final_client_acc == 0.6
        assert h.best_client_acc == 0.6

    def test_empty_history_nan(self):
        h = RunHistory("algo")
        assert math.isnan(h.final_server_acc)
        assert math.isnan(h.best_server_acc)

    def test_curves(self):
        h = self.make_history()
        assert h.server_acc_curve() == [0.2, 0.5, 0.4]
        assert h.comm_curve_mb() == [1.0, 2.0, 3.0]

    def test_comm_to_reach(self):
        h = self.make_history()
        assert h.comm_to_reach(0.5, metric="server") == pytest.approx(2.0)
        assert h.comm_to_reach(0.6, metric="client") == pytest.approx(3.0)
        assert h.comm_to_reach(0.99) is None

    def test_rounds_to_reach(self):
        h = self.make_history()
        assert h.rounds_to_reach(0.5) == 2
        assert h.rounds_to_reach(0.9) is None

    def test_nan_server_acc_skipped(self):
        h = RunHistory("fedmd")
        h.append(record(1, float("nan"), [0.9]))
        assert h.comm_to_reach(0.5, metric="server") is None
        assert h.comm_to_reach(0.5, metric="client") is not None
        assert math.isnan(h.best_server_acc) or h.best_server_acc is None

    def test_dict_roundtrip(self):
        h = self.make_history()
        restored = RunHistory.from_dict(h.to_dict())
        assert restored.algorithm == "algo"
        assert restored.dataset == "ds"
        assert len(restored) == 3
        assert restored.best_server_acc == 0.5

    def test_json_serialises(self):
        payload = self.make_history().to_json()
        assert '"algorithm": "algo"' in payload

    def test_iteration(self):
        assert [r.round_index for r in self.make_history()] == [1, 2, 3]
