"""Tests for RoundRecord / RunHistory metrics."""

import math

import pytest

from repro.fl import RoundRecord, RunHistory

MB = 1024 * 1024


def record(i, s_acc, c_accs, up=MB, down=MB):
    return RoundRecord(
        round_index=i,
        server_acc=s_acc,
        client_accs=c_accs,
        comm_uplink_bytes=up,
        comm_downlink_bytes=down,
    )


class TestRoundRecord:
    def test_mean_client_acc(self):
        assert record(1, 0.5, [0.2, 0.4]).mean_client_acc == pytest.approx(0.3)

    def test_empty_client_accs_nan(self):
        assert math.isnan(record(1, 0.5, []).mean_client_acc)

    def test_comm_mb(self):
        assert record(1, 0.5, [0.1], up=MB, down=MB).comm_total_mb == pytest.approx(2.0)


class TestRunHistory:
    def make_history(self):
        h = RunHistory("algo", dataset="ds")
        h.append(record(1, 0.2, [0.1], up=1 * MB, down=0))
        h.append(record(2, 0.5, [0.3], up=2 * MB, down=0))
        h.append(record(3, 0.4, [0.6], up=3 * MB, down=0))
        return h

    def test_final_and_best(self):
        h = self.make_history()
        assert h.final_server_acc == 0.4
        assert h.best_server_acc == 0.5
        assert h.final_client_acc == 0.6
        assert h.best_client_acc == 0.6

    def test_empty_history_nan(self):
        h = RunHistory("algo")
        assert math.isnan(h.final_server_acc)
        assert math.isnan(h.best_server_acc)

    def test_curves(self):
        h = self.make_history()
        assert h.server_acc_curve() == [0.2, 0.5, 0.4]
        assert h.comm_curve_mb() == [1.0, 2.0, 3.0]

    def test_comm_to_reach(self):
        h = self.make_history()
        assert h.comm_to_reach(0.5, metric="server") == pytest.approx(2.0)
        assert h.comm_to_reach(0.6, metric="client") == pytest.approx(3.0)
        assert h.comm_to_reach(0.99) is None

    def test_rounds_to_reach(self):
        h = self.make_history()
        assert h.rounds_to_reach(0.5) == 2
        assert h.rounds_to_reach(0.9) is None

    def test_nan_server_acc_skipped(self):
        h = RunHistory("fedmd")
        h.append(record(1, float("nan"), [0.9]))
        assert h.comm_to_reach(0.5, metric="server") is None
        assert h.comm_to_reach(0.5, metric="client") is not None
        assert math.isnan(h.best_server_acc) or h.best_server_acc is None

    def test_dict_roundtrip(self):
        h = self.make_history()
        restored = RunHistory.from_dict(h.to_dict())
        assert restored.algorithm == "algo"
        assert restored.dataset == "ds"
        assert len(restored) == 3
        assert restored.best_server_acc == 0.5

    def test_json_serialises(self):
        payload = self.make_history().to_json()
        assert '"algorithm": "algo"' in payload

    def test_iteration(self):
        assert [r.round_index for r in self.make_history()] == [1, 2, 3]


class TestPersistence:
    """RunHistory survives a save/load cycle with everything the resume
    path depends on: extras, NaN accuracies, and the derived
    comm/rounds-to-reach queries on the restored object."""

    def make_history(self):
        h = RunHistory("fedpkd", dataset="cifar10")
        h.append(
            RoundRecord(
                round_index=1,
                server_acc=float("nan"),
                client_accs=[0.1, 0.2],
                comm_uplink_bytes=1 * MB,
                comm_downlink_bytes=MB // 2,
                extras={"kd/loss": 1.25, "dropouts": 1.0},
            )
        )
        h.append(
            RoundRecord(
                round_index=2,
                server_acc=0.55,
                client_accs=[0.4, 0.5],
                comm_uplink_bytes=2 * MB,
                comm_downlink_bytes=MB,
                extras={"kd/loss": 0.75, "dropouts": 0.0},
            )
        )
        return h

    def test_json_roundtrip_with_extras_and_nan(self):
        h = self.make_history()
        restored = RunHistory.from_json(h.to_json())
        assert restored.algorithm == "fedpkd"
        assert restored.dataset == "cifar10"
        assert len(restored) == 2
        assert math.isnan(restored.records[0].server_acc)
        assert restored.records[0].extras == {"kd/loss": 1.25, "dropouts": 1.0}
        assert restored.records[1].extras == {"kd/loss": 0.75, "dropouts": 0.0}
        assert restored.records[1].client_accs == [0.4, 0.5]

    def test_dict_roundtrip_is_exact(self):
        h = self.make_history()
        restored = RunHistory.from_dict(h.to_dict())
        assert restored.to_dict() == h.to_dict()

    def test_queries_on_restored_object(self):
        restored = RunHistory.from_json(self.make_history().to_json())
        assert restored.rounds_to_reach(0.5, metric="server") == 2
        assert restored.comm_to_reach(0.5, metric="server") == pytest.approx(3.0)
        assert restored.comm_to_reach(0.15, metric="client") == pytest.approx(1.5)
        assert restored.comm_to_reach(0.99) is None
        assert restored.rounds_to_reach(0.99) is None

    def test_restored_history_keeps_appending(self):
        restored = RunHistory.from_json(self.make_history().to_json())
        restored.append(
            RoundRecord(
                round_index=3,
                server_acc=0.6,
                client_accs=[0.6, 0.6],
                comm_uplink_bytes=MB,
                comm_downlink_bytes=MB,
            )
        )
        assert len(restored) == 3
        assert restored.final_server_acc == 0.6


class TestToCsv:
    def make_history(self):
        h = RunHistory("algo", dataset="ds")
        r1 = record(1, 0.3, [0.2, 0.4])
        r1.extras = {"time/local_train": 1.5}
        r2 = record(2, float("nan"), [0.3, 0.5], up=2 * MB)
        r2.extras = {"time/local_train": 1.0, "runtime_dropouts": 2.0}
        h.append(r1)
        h.append(r2)
        return h

    def test_header_has_fixed_columns_then_sorted_extras(self):
        lines = self.make_history().to_csv().strip().splitlines()
        header = lines[0].split(",")
        assert header[:7] == [
            "round_index",
            "server_acc",
            "mean_client_acc",
            "comm_uplink_bytes",
            "comm_downlink_bytes",
            "comm_total_mb",
            "wall_time_s",
        ]
        # union of extras keys, sorted; records missing a key leave a gap
        assert header[7:] == ["runtime_dropouts", "time/local_train"]

    def test_rows_align_with_records(self):
        lines = self.make_history().to_csv().strip().splitlines()
        row1 = lines[1].split(",")
        row2 = lines[2].split(",")
        assert row1[0] == "1" and row2[0] == "2"
        assert float(row1[1]) == pytest.approx(0.3)
        assert row2[1] == ""  # NaN renders as an empty cell
        assert row1[7] == ""  # no runtime_dropouts in round 1
        assert float(row2[7]) == pytest.approx(2.0)
        assert float(row2[8]) == pytest.approx(1.0)

    def test_empty_history(self):
        lines = RunHistory("algo").to_csv().strip().splitlines()
        assert len(lines) == 1  # header only
