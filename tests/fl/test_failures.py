"""Fault plans, the dropout log index, and participation-sampler state."""

import json

import numpy as np
import pytest

from repro.fl import FaultPlan, FaultPlanError, FaultSpec
from repro.fl.failures import DropoutLog, ParticipationSampler


class TestFaultSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="meteor", client_id=0)

    def test_negative_client(self):
        with pytest.raises(FaultPlanError, match="client_id"):
            FaultSpec(kind="crash", client_id=-1)

    def test_nonpositive_straggler_factor(self):
        with pytest.raises(FaultPlanError, match="factor"):
            FaultSpec(kind="straggler", client_id=0, factor=0.0)

    def test_bad_fail_prob(self):
        with pytest.raises(FaultPlanError, match="fail_prob"):
            FaultSpec(kind="flaky", client_id=0, fail_prob=1.5)

    def test_empty_window(self):
        with pytest.raises(FaultPlanError, match="until_round"):
            FaultSpec(kind="flaky", client_id=0, from_round=3, until_round=3)

    def test_window_membership(self):
        spec = FaultSpec(kind="flaky", client_id=0, from_round=2, until_round=5)
        assert not spec.in_window(1)
        assert spec.in_window(2)
        assert spec.in_window(4)
        assert not spec.in_window(5)

    def test_open_ended_window(self):
        spec = FaultSpec(kind="straggler", client_id=0, from_round=1)
        assert spec.in_window(10_000)


class TestFaultPlanConstruction:
    def test_unknown_top_level_key(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"faults": [], "chaos_level": 11})

    def test_unknown_fault_key(self):
        with pytest.raises(FaultPlanError, match="unknown keys"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "crash", "client_id": 0, "when": 3}]}
            )

    def test_faults_must_be_list(self):
        with pytest.raises(FaultPlanError, match="'faults' must be a list"):
            FaultPlan.from_dict({"faults": {"kind": "crash"}})

    def test_missing_required_field(self):
        with pytest.raises(FaultPlanError, match=r"faults\[0\]"):
            FaultPlan.from_dict({"faults": [{"kind": "crash"}]})

    def test_negative_delay_jitter(self):
        with pytest.raises(FaultPlanError, match="delay_jitter"):
            FaultPlan(delay_jitter=-0.1)

    def test_from_file_and_bad_json(self, tmp_path):
        good = tmp_path / "plan.json"
        good.write_text(
            json.dumps({"faults": [{"kind": "crash", "client_id": 1, "round": 2}]})
        )
        plan = FaultPlan.from_file(str(good))
        assert len(plan) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_file(str(bad))
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file(str(tmp_path / "missing.json"))

    def test_resolve_coercions(self, tmp_path):
        assert FaultPlan.resolve(None) is None
        plan = FaultPlan()
        assert FaultPlan.resolve(plan) is plan
        from_dict = FaultPlan.resolve({"faults": [], "seed": 5})
        assert isinstance(from_dict, FaultPlan)
        assert from_dict.seed == 5
        path = tmp_path / "p.json"
        path.write_text(json.dumps({"faults": []}))
        assert isinstance(FaultPlan.resolve(str(path)), FaultPlan)
        with pytest.raises(FaultPlanError, match="must be a path"):
            FaultPlan.resolve(42)

    def test_to_dict_round_trip(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 9,
                "delay_jitter": 0.2,
                "faults": [
                    {"kind": "straggler", "client_id": 2, "factor": 10.0,
                     "jitter": 0.3},
                    {"kind": "leave", "client_id": 1, "round": 4},
                ],
            }
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.seed == 9
        assert clone.delay_jitter == 0.2

    def test_describe(self):
        plan = FaultPlan.from_dict(
            {
                "delay_jitter": 0.1,
                "faults": [
                    {"kind": "crash", "client_id": 0, "round": 1},
                    {"kind": "crash", "client_id": 1, "round": 2},
                    {"kind": "leave", "client_id": 2, "round": 1},
                ],
            }
        )
        assert plan.describe() == "2xcrash,1xleave,jitter=0.1"
        assert FaultPlan().describe() == "empty"


class TestFaultPlanQueries:
    def test_delay_factor_straggler_window(self):
        plan = FaultPlan(
            [FaultSpec(kind="straggler", client_id=1, factor=10.0,
                       from_round=2, until_round=4)]
        )
        assert plan.delay_factor(1, 1) == 1.0
        assert plan.delay_factor(1, 2) == 10.0
        assert plan.delay_factor(1, 4) == 1.0
        assert plan.delay_factor(0, 2) == 1.0  # other clients unaffected

    def test_queries_are_stateless_and_deterministic(self):
        def build():
            return FaultPlan.from_dict(
                {
                    "seed": 13,
                    "delay_jitter": 0.25,
                    "faults": [
                        {"kind": "straggler", "client_id": 0, "factor": 3.0,
                         "jitter": 0.5},
                        {"kind": "flaky", "client_id": 1, "fail_prob": 0.5},
                    ],
                }
            )

        a, b = build(), build()
        for cid in range(3):
            for version in range(6):
                # identical across instances AND across repeated calls on
                # the same instance (no hidden RNG state advances)
                assert a.delay_factor(cid, version) == b.delay_factor(cid, version)
                assert a.delay_factor(cid, version) == a.delay_factor(cid, version)
                assert a.crash_cause(cid, version) == b.crash_cause(cid, version)
                assert a.crash_cause(cid, version) == a.crash_cause(cid, version)

    def test_flaky_fires_sometimes_not_always(self):
        plan = FaultPlan(
            [FaultSpec(kind="flaky", client_id=0, fail_prob=0.5)], seed=0
        )
        causes = {plan.crash_cause(0, v) for v in range(32)}
        assert causes == {None, "injected_flaky"}

    def test_crash_is_single_shot(self):
        plan = FaultPlan([FaultSpec(kind="crash", client_id=2, round=3)])
        assert plan.crash_cause(2, 3) == "injected_crash"
        assert plan.crash_cause(2, 2) is None
        assert plan.crash_cause(2, 4) is None

    def test_churn_latest_event_wins(self):
        plan = FaultPlan(
            [
                FaultSpec(kind="leave", client_id=0, round=2),
                FaultSpec(kind="join", client_id=0, round=5),
            ]
        )
        assert plan.available(0, 0)
        assert plan.available(0, 1)
        assert not plan.available(0, 2)
        assert not plan.available(0, 4)
        assert plan.available(0, 5)
        assert plan.available(1, 3)  # untouched client is always available


class TestDropoutLogIndex:
    def test_per_round_index_matches_events(self):
        log = DropoutLog()
        log.record(1, 0, "local_train", "timeout")
        log.record(1, 0, "uplink", "timeout")  # same client, same round
        log.record(1, 2, "local_train", "worker_death")
        log.record(3, 1, "async_work", "injected_crash")
        assert log.clients_for_round(1) == [0, 2]
        assert log.count_for_round(1) == 2
        assert log.count_for_round(2) == 0
        assert log.clients_for_round(3) == [1]
        assert len(log) == 4

    def test_index_survives_state_round_trip(self):
        log = DropoutLog()
        log.record(1, 0, "local_train", "timeout")
        log.record(2, 1, "async_work", "injected_flaky")
        clone = DropoutLog()
        clone.load_state_dict(log.state_dict())
        assert clone.state_dict() == log.state_dict()
        assert clone.clients_for_round(1) == [0]
        assert clone.count_for_round(2) == 1


class TestParticipationSamplerState:
    def test_state_round_trip_is_bit_identical(self):
        sampler = ParticipationSampler(10, dropout_prob=0.4, seed=3)
        for _ in range(5):
            sampler.sample()  # advance the stream past its initial state
        state = sampler.state_dict()
        expected = [sampler.sample() for _ in range(20)]

        resumed = ParticipationSampler(10, dropout_prob=0.4, seed=999)
        resumed.load_state_dict(state)
        assert [resumed.sample() for _ in range(20)] == expected

    def test_state_dict_is_deep_copied(self):
        sampler = ParticipationSampler(10, dropout_prob=0.4, seed=3)
        state = sampler.state_dict()
        sampler.sample()  # must not mutate the captured state
        resumed = ParticipationSampler(10, dropout_prob=0.4, seed=0)
        resumed.load_state_dict(state)
        other = ParticipationSampler(10, dropout_prob=0.4, seed=3)
        assert resumed.sample() == other.sample()

    def test_extreme_dropout_topup_is_deterministic(self):
        draws = []
        for _ in range(2):
            sampler = ParticipationSampler(
                20, dropout_prob=0.99, min_available=5, seed=7
            )
            draws.append([sampler.sample() for _ in range(50)])
        assert draws[0] == draws[1]
        for round_sample in draws[0]:
            assert len(round_sample) >= 5
            assert len(set(round_sample)) == len(round_sample)  # no dupes
            assert round_sample == sorted(round_sample)
            assert all(0 <= cid < 20 for cid in round_sample)
