"""End-to-end integration tests across the whole stack.

These cover cross-module behaviour the unit tests can't: all algorithms
learning on the same federation, fairness of the shared bundle, failure
injection during full runs, and reproducibility of complete runs.
"""

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, algorithm_supports, build_algorithm
from repro.data import SyntheticImageTask
from repro.fl import FederationConfig, build_federation

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def bundle():
    task = SyntheticImageTask(
        num_classes=5,
        image_shape=(3, 6, 6),
        latent_dim=8,
        class_separation=1.2,
        noise_scale=1.0,
        seed=21,
        name="e2e",
    )
    return task.make_bundle(n_train=500, n_test=200, n_public=120, seed=22)


def build_fed(bundle, name, seed=0, **kwargs):
    server = None if not algorithm_supports(name, "server_model") else kwargs.pop(
        "server_model", "mlp_medium"
    )
    if name in ("fedavg", "fedprox", "feddf"):
        server = kwargs.pop("client_models", "mlp_small")
        kwargs["client_models"] = server
    config = FederationConfig(
        num_clients=kwargs.pop("num_clients", 4),
        partition=kwargs.pop("partition", ("dirichlet", {"alpha": 0.5})),
        client_models=kwargs.pop("client_models", "mlp_small"),
        server_model=server,
        feature_dim=16,
        seed=seed,
        **kwargs,
    )
    return build_federation(bundle, config)


class TestAllAlgorithmsLearn:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_beats_chance_after_training(self, bundle, name):
        fed = build_fed(bundle, name)
        algo = build_algorithm(name, fed, seed=0, epoch_scale=0.3)
        history = algo.run(rounds=3)
        chance = 1.0 / bundle.num_classes
        assert history.best_client_acc > chance, f"{name} clients never beat chance"
        if algorithm_supports(name, "server_model"):
            assert history.best_server_acc > chance, f"{name} server never beat chance"

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_communication_recorded(self, bundle, name):
        fed = build_fed(bundle, name)
        algo = build_algorithm(name, fed, seed=0, epoch_scale=0.1)
        history = algo.run(rounds=1)
        assert history.records[-1].comm_uplink_bytes > 0


class TestHeterogeneousEndToEnd:
    @pytest.mark.parametrize("name", ["fedpkd", "fedmd", "dsfl", "fedet"])
    def test_hetero_architectures(self, bundle, name):
        fed = build_fed(
            bundle,
            name,
            client_models=["mlp_small", "mlp_medium", "mlp_large"],
        )
        algo = build_algorithm(name, fed, seed=0, epoch_scale=0.15)
        history = algo.run(rounds=2)
        assert len(history) == 2


class TestFailureInjection:
    @pytest.mark.parametrize("name", ["fedpkd", "fedavg", "fedmd"])
    def test_survives_client_dropout(self, bundle, name):
        fed = build_fed(bundle, name, dropout_prob=0.5, num_clients=5)
        algo = build_algorithm(name, fed, seed=3, epoch_scale=0.1)
        history = algo.run(rounds=4)
        assert len(history) == 4
        assert np.isfinite(history.final_client_acc)


class TestReproducibility:
    def test_full_run_is_deterministic(self, bundle):
        def run_once():
            fed = build_fed(bundle, "fedpkd", seed=7)
            algo = build_algorithm("fedpkd", fed, seed=7, epoch_scale=0.1)
            history = algo.run(rounds=2)
            return (
                history.server_acc_curve(),
                history.client_acc_curve(),
                fed.channel.total_bytes,
            )

        first = run_once()
        second = run_once()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_different_seeds_differ(self, bundle):
        def run_once(seed):
            fed = build_fed(bundle, "fedpkd", seed=seed)
            algo = build_algorithm("fedpkd", fed, seed=seed, epoch_scale=0.1)
            return algo.run(rounds=1).final_server_acc

        # different seed -> different partitions/weights; accuracy may tie,
        # so compare the underlying model weights instead
        fed_a = build_fed(bundle, "fedpkd", seed=1)
        fed_b = build_fed(bundle, "fedpkd", seed=2)
        wa = fed_a.server.model.classifier.weight.data
        wb = fed_b.server.model.classifier.weight.data
        assert not np.allclose(wa, wb)


class TestFedPKDBeatsNaiveKD:
    def test_fedpkd_at_least_matches_naive_kd_under_skew(self, bundle):
        """The paper's central claim, at integration-test scale: FedPKD's
        server should do at least as well as the naive KD pipeline under a
        skewed partition, given the same budget."""
        partition = ("dirichlet", {"alpha": 0.15})
        fed_pkd = build_fed(bundle, "fedpkd", partition=partition, seed=5)
        pkd = build_algorithm("fedpkd", fed_pkd, seed=5, epoch_scale=0.3)
        pkd_hist = pkd.run(rounds=3)

        fed_kd = build_fed(bundle, "naive_kd", partition=partition, seed=5)
        kd = build_algorithm("naive_kd", fed_kd, seed=5, epoch_scale=0.3)
        kd_hist = kd.run(rounds=3)

        assert pkd_hist.best_server_acc >= kd_hist.best_server_acc - 0.05
