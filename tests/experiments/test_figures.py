"""Structural tests for every figure/table runner (micro scale).

These verify that each experiment module runs end to end and returns the
documented structure; trend-level assertions live in the benchmarks and
EXPERIMENTS.md, since at micro scale the learning signal is too noisy to
assert orderings reliably.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_motivation,
    fig2_logit_quality,
    fig3_comm_vs_publicsize,
    fig5_homogeneous,
    fig6_curves,
    fig7_heterogeneous,
    fig8_ablation,
    fig9_theta,
    fig10_delta,
    table1_comm,
)

pytestmark = pytest.mark.slow

SCALE = "tiny"


class TestFig1:
    def test_structure(self):
        results = fig1_motivation.run(scale=SCALE, datasets=("cifar10",))
        assert set(results["cifar10"]) == {"iid", "dir0.3"}
        for accs in results["cifar10"].values():
            assert set(accs) == {"fedavg", "naive_kd"}
            assert all(0 <= a <= 1 for a in accs.values())

    def test_table_renders(self):
        results = fig1_motivation.run(scale=SCALE, datasets=("cifar10",))
        assert "FedAvg" in fig1_motivation.as_table(results)


class TestFig2:
    def test_structure(self):
        results = fig2_logit_quality.run(scale=SCALE)
        assert results["class_counts"].shape == (2, 10)
        assert results["client_acc"].shape == (2, 10)
        assert results["aggregated_acc"].shape == (10,)

    def test_clients_specialise(self):
        results = fig2_logit_quality.run(scale=SCALE, local_epochs=40)
        acc = results["client_acc"]
        # client 1 trained on classes 0-4 must beat client 2 there on average
        own = np.nanmean(acc[0, :5])
        other = np.nanmean(acc[1, :5])
        assert own > other

    def test_class_disjoint_counts(self):
        results = fig2_logit_quality.run(scale=SCALE)
        counts = results["class_counts"]
        assert counts[0, 5:].sum() == 0
        assert counts[1, :5].sum() == 0


class TestFig3:
    def test_monotone_comm(self):
        results = fig3_comm_vs_publicsize.run(
            scale=SCALE, public_sizes=(60, 120, 240)
        )
        comm = [p["uplink_mb_per_client_round"] for p in results["sweep"]]
        assert comm[0] < comm[1] < comm[2]

    def test_linear_in_public_size(self):
        results = fig3_comm_vs_publicsize.run(scale=SCALE, public_sizes=(60, 120))
        c = results["sweep"]
        ratio = c[1]["uplink_mb_per_client_round"] / c[0]["uplink_mb_per_client_round"]
        assert abs(ratio - 2.0) < 0.01

    def test_model_update_reference_positive(self):
        results = fig3_comm_vs_publicsize.run(scale=SCALE, public_sizes=(60,))
        assert results["model_update_mb"] > 0


class TestFig5:
    def test_structure(self):
        results = fig5_homogeneous.run(
            scale=SCALE,
            datasets=("cifar10",),
            partitions=("dir0.5",),
            algorithms=("fedpkd", "fedavg", "fedmd"),
        )
        cell = results["cifar10"]["dir0.5"]
        assert cell["fedmd"][0] is None  # no server model
        assert cell["fedavg"][0] is not None
        assert 0 <= cell["fedpkd"][1] <= 1


class TestFig6:
    def test_curves_lengths(self):
        results = fig6_curves.run(
            scale=SCALE, algorithms=("fedpkd", "fedavg"), rounds=2
        )
        for curves in results.values():
            assert len(curves["rounds"]) == 2
            assert len(curves["server"]) == 2
            assert len(curves["client"]) == 2


class TestFig7:
    def test_structure(self):
        results = fig7_heterogeneous.run(
            scale=SCALE,
            partitions=("dir0.5",),
            algorithms=("fedpkd", "fedmd"),
        )
        cell = results["cifar10"]["dir0.5"]
        assert set(cell) == {"fedpkd", "fedmd"}


class TestTable1:
    def test_structure(self):
        results = table1_comm.run(
            scale=SCALE, algorithms=("fedavg", "fedpkd"), target_fraction=0.5
        )
        cell = results["cifar10"]["dir0.5"]
        assert "targets" in cell and "mb" in cell
        assert set(cell["mb"]) == {"fedavg", "fedpkd"}

    def test_na_for_unsupported_metrics(self):
        results = table1_comm.run(
            scale=SCALE, algorithms=("feddf", "fedmd", "fedpkd"), target_fraction=0.5
        )
        mb = results["cifar10"]["dir0.5"]["mb"]
        assert mb["feddf"]["client"] is None  # not client-focused
        assert mb["fedmd"]["server"] is None  # no server model

    def test_table_renders(self):
        results = table1_comm.run(
            scale=SCALE, algorithms=("fedpkd",), target_fraction=0.5
        )
        assert "Table I" in table1_comm.as_table(results)


class TestFig8:
    def test_all_arms_present(self):
        results = fig8_ablation.run(scale=SCALE)
        cell = results["cifar10"]["dir0.1"]
        assert set(cell) == {"fedpkd", "w/o Pro", "w/o D.F."}

    def test_extended_arms(self):
        results = fig8_ablation.run(
            scale=SCALE, arms={"equal-agg": {"aggregation": "equal"}}
        )
        assert "equal-agg" in results["cifar10"]["dir0.1"]


class TestFig9:
    def test_theta_sweep(self):
        results = fig9_theta.run(scale=SCALE, thetas=(0.4, 0.8))
        assert set(results["cifar10"]) == {0.4, 0.8}
        assert all(0 <= v <= 1 for v in results["cifar10"].values())


class TestFig10:
    def test_delta_sweep(self):
        results = fig10_delta.run(scale=SCALE, deltas=(0.2, 0.8))
        assert set(results["cifar10"]) == {0.2, 0.8}
