"""The paper-faithful ResNet pathway: verify the `paper` scale's model
family works end to end (at micro size, so the test stays fast)."""

import numpy as np
import pytest

from repro.experiments import ExperimentSetting, federation_for, run_algorithm

pytestmark = pytest.mark.slow

MICRO_RESNET = dict(
    scale="tiny",
    scale_overrides={
        "n_train": 160,
        "n_test": 60,
        "n_public": 40,
        "num_clients": 3,
        "rounds": 1,
        "epoch_scale": 0.05,
        "model_family": "resnet",
    },
)


class TestResNetFamily:
    def test_homogeneous_roles(self):
        setting = ExperimentSetting(**MICRO_RESNET)
        fed = federation_for(setting, "fedavg")
        # paper: clients and FedAvg server all run resnet20
        sizes = {c.model.num_parameters() for c in fed.clients}
        assert len(sizes) == 1
        assert fed.server.model.num_parameters() in sizes

    def test_heterogeneous_roles(self):
        setting = ExperimentSetting(heterogeneous=True, **MICRO_RESNET)
        fed = federation_for(setting, "fedpkd")
        # resnet11 / resnet20 / resnet29 roles, resnet56 server
        client_sizes = sorted({c.model.num_parameters() for c in fed.clients})
        assert len(client_sizes) == 3
        assert fed.server.model.num_parameters() > max(client_sizes)

    def test_fedpkd_round_with_resnets(self):
        setting = ExperimentSetting(heterogeneous=True, **MICRO_RESNET)
        history = run_algorithm(setting, "fedpkd")
        assert len(history) == 1
        assert np.isfinite(history.final_server_acc)
        assert history.records[-1].comm_total_mb > 0

    def test_fedavg_round_with_resnets(self):
        setting = ExperimentSetting(**MICRO_RESNET)
        history = run_algorithm(setting, "fedavg")
        assert len(history) == 1
        assert np.isfinite(history.final_server_acc)
