"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.experiments import (
    PARTITIONS,
    SCALES,
    ExperimentSetting,
    compare_algorithms,
    federation_for,
    format_table,
    make_bundle,
    model_roles,
    run_algorithm,
)

FAST = dict(scale="tiny", scale_overrides={
    "n_train": 240, "n_test": 80, "n_public": 60,
    "num_clients": 3, "rounds": 1, "epoch_scale": 0.05,
})


class TestScales:
    def test_presets_exist(self):
        assert {"tiny", "small", "paper"} <= set(SCALES)

    def test_cifar100_gets_more_data(self):
        sc = SCALES["tiny"]
        assert sc.sized_for("cifar100").n_train > sc.n_train
        assert sc.sized_for("cifar10").n_train == sc.n_train

    def test_scale_overrides(self):
        setting = ExperimentSetting(scale="tiny", scale_overrides={"rounds": 99})
        assert setting.scale_config().rounds == 99


class TestModelRoles:
    def test_mlp_homogeneous(self):
        roles = model_roles("mlp", heterogeneous=False)
        assert roles["client_models"] == roles["peer_server"]

    def test_resnet_heterogeneous(self):
        roles = model_roles("resnet", heterogeneous=True)
        assert isinstance(roles["client_models"], list)
        assert roles["peer_server"] is None

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            model_roles("transformer", False)


class TestFederationFor:
    def test_fedmd_gets_no_server(self):
        setting = ExperimentSetting(**FAST)
        fed = federation_for(setting, "fedmd")
        assert not fed.server.has_model

    def test_fedavg_gets_peer_server(self):
        setting = ExperimentSetting(**FAST)
        fed = federation_for(setting, "fedavg")
        assert (
            fed.server.model.num_parameters()
            == fed.clients[0].model.num_parameters()
        )

    def test_fedpkd_gets_big_server(self):
        setting = ExperimentSetting(**FAST)
        fed = federation_for(setting, "fedpkd")
        assert (
            fed.server.model.num_parameters()
            > fed.clients[0].model.num_parameters()
        )

    def test_hetero_rejects_fedavg(self):
        setting = ExperimentSetting(heterogeneous=True, **FAST)
        with pytest.raises(ValueError):
            federation_for(setting, "fedavg")


class TestRunners:
    def test_run_algorithm_history(self):
        setting = ExperimentSetting(**FAST)
        history = run_algorithm(setting, "fedpkd")
        assert len(history) == 1
        assert history.config["partition"] == setting.partition

    def test_compare_shares_bundle(self):
        setting = ExperimentSetting(**FAST)
        results = compare_algorithms(setting, ("fedavg", "fedpkd"))
        assert set(results) == {"fedavg", "fedpkd"}

    def test_partition_shorthand_complete(self):
        for key in ("iid", "dir0.1", "dir0.5", "shards3", "shards30"):
            assert key in PARTITIONS


class TestFormatTable:
    def test_alignment_and_na(self):
        table = format_table(
            ["name", "value"],
            [["a", 0.5], ["b", None], ["c", float("nan")]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "N/A" in table
        assert "0.500" in table
