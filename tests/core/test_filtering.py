"""Tests for prototype-based data filtering (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import prototype_filter, random_filter


def logits_for(labels, num_classes):
    out = np.zeros((len(labels), num_classes))
    out[np.arange(len(labels)), labels] = 5.0
    return out


class TestPrototypeFilter:
    def test_keeps_closest_per_class(self):
        # 4 samples of pseudo-class 0 at distances 0,1,2,3 from prototype
        prototypes = np.zeros((2, 2))
        feats = np.array([[0.0, 0], [1.0, 0], [2.0, 0], [3.0, 0]])
        logits = logits_for([0, 0, 0, 0], 2)
        result = prototype_filter(feats, logits, prototypes, select_ratio=0.5)
        np.testing.assert_array_equal(result.selected, [0, 1])

    def test_per_class_quotas(self):
        prototypes = np.zeros((2, 1))
        prototypes[1] = 10.0
        feats = np.array([[0.0], [1.0], [10.0], [11.0]])
        logits = logits_for([0, 0, 1, 1], 2)
        result = prototype_filter(feats, logits, prototypes, select_ratio=0.5)
        assert set(result.selected) == {0, 2}

    def test_pseudo_labels_match_selection(self):
        prototypes = np.zeros((3, 1))
        feats = np.zeros((6, 1))
        labels = [0, 1, 2, 0, 1, 2]
        logits = logits_for(labels, 3)
        result = prototype_filter(feats, logits, prototypes, select_ratio=1.0)
        np.testing.assert_array_equal(result.pseudo_labels, np.array(labels)[result.selected])

    def test_missing_prototype_keeps_class(self):
        prototypes = np.full((2, 1), np.nan)
        prototypes[0] = 0.0
        feats = np.array([[0.0], [1.0], [5.0], [6.0]])
        logits = logits_for([0, 0, 1, 1], 2)
        result = prototype_filter(feats, logits, prototypes, select_ratio=0.5)
        # class 0 filtered to 1 sample, class 1 (no prototype) fully kept
        assert 2 in result.selected and 3 in result.selected
        assert (result.selected < 2).sum() == 1

    def test_at_least_one_per_class(self):
        prototypes = np.zeros((1, 1))
        feats = np.array([[0.0], [1.0]])
        logits = logits_for([0, 0], 1)
        result = prototype_filter(feats, logits, prototypes, select_ratio=0.01)
        assert result.num_selected == 1

    def test_full_ratio_keeps_everything(self):
        prototypes = np.zeros((2, 1))
        feats = np.random.default_rng(0).normal(size=(10, 1))
        logits = np.random.default_rng(1).normal(size=(10, 2))
        result = prototype_filter(feats, logits, prototypes, select_ratio=1.0)
        assert result.num_selected == 10

    def test_distances_reported_for_all(self):
        prototypes = np.zeros((2, 1))
        feats = np.ones((5, 1))
        logits = logits_for([0, 1, 0, 1, 0], 2)
        result = prototype_filter(feats, logits, prototypes, select_ratio=0.5)
        assert result.distances.shape == (5,)
        np.testing.assert_allclose(result.distances, np.ones(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            prototype_filter(np.zeros((2, 1)), np.zeros((2, 2)), np.zeros((2, 1)), 0.0)
        with pytest.raises(ValueError):
            prototype_filter(np.zeros((2, 1)), np.zeros((3, 2)), np.zeros((2, 1)), 0.5)

    def test_selected_sorted(self):
        rng = np.random.default_rng(2)
        prototypes = rng.normal(size=(3, 4))
        feats = rng.normal(size=(30, 4))
        logits = rng.normal(size=(30, 3))
        result = prototype_filter(feats, logits, prototypes, select_ratio=0.6)
        assert (np.diff(result.selected) > 0).all()


class TestRandomFilter:
    def test_count(self):
        rng = np.random.default_rng(0)
        result = random_filter(20, np.zeros((20, 3)), 0.5, rng)
        assert result.num_selected == 10
        assert len(np.unique(result.selected)) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            random_filter(10, np.zeros((10, 2)), 1.5, np.random.default_rng(0))


@given(
    n=st.integers(4, 60),
    num_classes=st.integers(2, 5),
    ratio=st.floats(0.1, 1.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_filter_respects_ratio_bounds(n, num_classes, ratio, seed):
    """Selected count never exceeds the quota by more than one per class,
    indices are unique, in range, and pseudo-labels align."""
    rng = np.random.default_rng(seed)
    feats = rng.normal(size=(n, 3))
    logits = rng.normal(size=(n, num_classes))
    prototypes = rng.normal(size=(num_classes, 3))
    result = prototype_filter(feats, logits, prototypes, select_ratio=ratio)
    assert len(np.unique(result.selected)) == result.num_selected
    assert result.selected.min() >= 0 and result.selected.max() < n
    # per-class: at most floor(ratio * class_size) but at least 1
    pseudo_all = logits.argmax(axis=1)
    for cls in np.unique(pseudo_all):
        cls_total = (pseudo_all == cls).sum()
        cls_kept = (result.pseudo_labels == cls).sum()
        assert cls_kept <= max(1, int(np.floor(ratio * cls_total)))
        assert cls_kept >= 1
