"""Faithfulness tests: the implementation computes the paper's equations.

Each test evaluates one paper equation by hand with numpy and checks the
library produces the same number.  Training-loss compositions are checked
by running exactly one epoch with a full batch: ``train_with_loss`` returns
the mean loss of that epoch, i.e. the loss of the initial weights, which we
can recompute independently.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import weighted_average_states
from repro.core import (
    aggregate_prototypes,
    prototype_distances,
    prototype_ensemble_distill,
    prototype_filter,
    variance_weighted_aggregate,
)
from repro.fl import TrainingConfig, train_distill, train_supervised
from repro.nn import Tensor

IMG = (3, 6, 6)


def softmax(z):
    e = np.exp(z - z.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


def kl_mean(teacher_logits, student_logits):
    p = softmax(teacher_logits)
    q = softmax(student_logits)
    return float((p * (np.log(p + 1e-12) - np.log(q + 1e-12))).sum(axis=1).mean())


def ce_mean(logits, labels):
    logp = np.log(softmax(logits) + 1e-12)
    return float(-logp[np.arange(len(labels)), labels].mean())


class TestEq1FedAvg:
    def test_weighted_model_average(self):
        """Eq. 1: w_G = sum(|D_c| w_c) / sum(|D_c|)."""
        s1 = {"w": np.array([1.0])}
        s2 = {"w": np.array([5.0])}
        avg = weighted_average_states([s1, s2], [30, 10])
        assert avg["w"][0] == pytest.approx((30 * 1 + 10 * 5) / 40)


class TestEq6Eq7Aggregation:
    def test_variance_weights_match_manual(self):
        rng = np.random.default_rng(0)
        l1, l2 = rng.normal(size=(4, 5)), rng.normal(size=(4, 5))
        out = variance_weighted_aggregate([l1, l2])
        v1, v2 = l1.var(axis=1), l2.var(axis=1)
        beta1 = v1 / (v1 + v2)  # Eq. 7
        beta2 = v2 / (v1 + v2)
        expected = beta1[:, None] * l1 + beta2[:, None] * l2  # Eq. 6
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestEq8Prototypes:
    def test_data_weighted_mean(self):
        """Eq. 8 (with the |C_j| typo corrected): data-size-weighted mean."""
        p1 = np.full((2, 3), np.nan)
        p1[0] = [1.0, 2.0, 3.0]
        p2 = np.full((2, 3), np.nan)
        p2[0] = [5.0, 6.0, 7.0]
        agg = aggregate_prototypes([p1, p2], [np.array([3, 0]), np.array([1, 0])])
        expected = (3 * p1[0] + 1 * p2[0]) / 4
        np.testing.assert_allclose(agg[0], expected)


class TestEq9Eq10Filtering:
    def test_pseudo_label_is_argmax_and_distance_is_l2(self):
        feats = np.array([[1.0, 0.0], [0.0, 2.0]])
        logits = np.array([[5.0, 0.0], [0.0, 5.0]])  # pseudo labels 0, 1
        protos = np.array([[0.0, 0.0], [0.0, 0.0]])
        result = prototype_filter(feats, logits, protos, select_ratio=1.0)
        np.testing.assert_array_equal(result.pseudo_labels, [0, 1])
        d = prototype_distances(feats, protos, result.pseudo_labels)
        np.testing.assert_allclose(d, [1.0, 2.0])  # Eq. 10


class TestEq11ToEq13ServerLoss:
    def test_loss_composition(self):
        """F(w_G) = delta*(KL + CE) + (1-delta)*MSE(R(x), P^{y~})."""
        rng = np.random.default_rng(1)
        model = nn.build_model("mlp_small", 3, IMG, feature_dim=8, rng=1)
        n = 10
        x = rng.normal(size=(n, *IMG))
        agg_logits = rng.normal(size=(n, 3)) * 2
        pseudo = agg_logits.argmax(axis=1)
        protos = rng.normal(size=(3, 8))
        delta = 0.3

        student_logits = model.predict_logits(x)
        feats = model.extract_features(x)
        expected = delta * (
            kl_mean(agg_logits, student_logits) + ce_mean(student_logits, pseudo)
        ) + (1 - delta) * float(((feats - protos[pseudo]) ** 2).mean())

        got = prototype_ensemble_distill(
            model, x, agg_logits, pseudo, protos, delta,
            config=TrainingConfig(epochs=1, batch_size=n),
            rng=np.random.default_rng(0),
        )
        assert got == pytest.approx(expected, rel=1e-6)


class TestEq15ClientPublicLoss:
    def test_loss_composition(self):
        """gamma*KL(server || client) + (1-gamma)*CE(client, y~^s)."""
        rng = np.random.default_rng(2)
        model = nn.build_model("mlp_small", 3, IMG, feature_dim=8, rng=2)
        n = 8
        x = rng.normal(size=(n, *IMG))
        server_logits = rng.normal(size=(n, 3)) * 2
        pseudo = server_logits.argmax(axis=1)  # Eq. 14
        gamma = 0.6

        client_logits = model.predict_logits(x)
        expected = gamma * kl_mean(server_logits, client_logits) + (
            1 - gamma
        ) * ce_mean(client_logits, pseudo)

        got = train_distill(
            model, x, server_logits,
            TrainingConfig(epochs=1, batch_size=n),
            np.random.default_rng(0),
            kd_weight=gamma, pseudo_labels=pseudo,
        )
        assert got == pytest.approx(expected, rel=1e-6)


class TestEq16ClientLocalLoss:
    def test_loss_composition(self):
        """CE(local) + epsilon * MSE(R(x), P^{y})."""
        rng = np.random.default_rng(3)
        model = nn.build_model("mlp_small", 3, IMG, feature_dim=8, rng=3)
        n = 8
        x = rng.normal(size=(n, *IMG))
        y = rng.integers(0, 3, n)
        protos = rng.normal(size=(3, 8))
        epsilon = 0.4

        logits = model.predict_logits(x)
        feats = model.extract_features(x)
        expected = ce_mean(logits, y) + epsilon * float(
            ((feats - protos[y]) ** 2).mean()
        )

        got = train_supervised(
            model, x, y,
            TrainingConfig(epochs=1, batch_size=n),
            np.random.default_rng(0),
            prototypes=protos, prototype_weight=epsilon,
        )
        assert got == pytest.approx(expected, rel=1e-6)


class TestEq5ClientPrototypes:
    def test_prototype_is_class_feature_mean(self):
        from repro.fl import FLClient

        rng = np.random.default_rng(4)
        model = nn.build_model("mlp_small", 3, IMG, feature_dim=8, rng=4)
        x = rng.normal(size=(12, *IMG))
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
        client = FLClient(0, model, x, y, x[:2], y[:2], num_classes=3)
        protos = client.compute_prototypes()
        feats = model.extract_features(x)
        for cls in range(3):
            np.testing.assert_allclose(
                protos[cls], feats[y == cls].mean(axis=0), atol=1e-12
            )
